//! The generational trade-off (paper §2.2): minor collections are fast
//! but check no assertions, so a violation waits for the next major.
//!
//! ```text
//! cargo run --example generational
//! ```

use gc_assertions::{Vm, VmConfig};

fn main() -> Result<(), gc_assertions::VmError> {
    let mut vm = Vm::new(
        VmConfig::builder()
            .heap_budget(4_096)
            .grow_on_oom(true)
            .generational(8)
            .build(), // a major only every 8 minors
    );
    let c = vm.register_class("Node", &["next", "pinned"]);
    let m = vm.main();

    // Plant a violation: `victim` is asserted dead but stays referenced.
    let holder = vm.alloc(m, c, 2, 0)?;
    vm.add_root(m, holder)?;
    let victim = vm.alloc(m, c, 2, 0)?;
    vm.set_field(holder, 1, victim)?;
    vm.assert_dead(victim)?;

    // Churn: allocation pressure triggers collections automatically.
    let mut reported_at: Option<(u64, u64)> = None;
    for _ in 0..4_000 {
        vm.alloc(m, c, 2, 4)?;
        if reported_at.is_none() && !vm.violation_log().is_empty() {
            reported_at = Some((vm.minor_collections(), vm.collections()));
        }
    }
    if reported_at.is_none() {
        vm.collect()?; // force the major
        reported_at = Some((vm.minor_collections(), vm.collections()));
    }

    let (minors, majors) = reported_at.unwrap();
    println!(
        "collections before the violation was reported: {minors} minors (unchecked) + {majors} major(s)"
    );
    println!(
        "total so far: {} minors ({:?}), {} majors ({:?})",
        vm.minor_collections(),
        vm.minor_gc_time(),
        vm.collections(),
        vm.gc_stats().total_gc_time
    );
    println!(
        "\nWith the paper's full-heap MarkSweep (VmConfig::builder().build(), no .generational()),\n\
         the very first collection would have reported it."
    );
    for v in vm.violation_log().iter().take(1) {
        println!("\n{}", v.render(vm.registry()));
    }
    Ok(())
}
