//! Reproduces the paper's Figure 1 and the §3.2.1 SPEC JBB2000 case
//! study: dead `Order` objects kept reachable through the orderTable
//! B-tree and through `Customer.lastOrder`.
//!
//! ```text
//! cargo run --example jbb_order_leak
//! ```

use gc_assertions::{ViolationKind, Vm, VmConfig};
use gca_workloads::pseudojbb::{JbbAssertions, JbbBugs, PseudoJbb};
use gca_workloads::runner::Workload;

fn main() -> Result<(), gc_assertions::VmError> {
    // All three SPEC JBB2000 bugs present, assert-dead instrumentation in
    // the destructors — exactly the paper's debugging session.
    let jbb = PseudoJbb::buggy_with_dead_asserts();
    let mut vm = Vm::new(VmConfig::builder().heap_budget(jbb.heap_budget()).build());
    jbb.run(&mut vm, true)?;
    vm.collect()?;

    let log = vm.take_violation_log();
    println!("pseudojbb (buggy) produced {} violation(s)\n", log.len());

    // Figure 1: a dead Order reachable through the District's orderTable.
    if let Some(v) = log.iter().find(|v| {
        matches!(&v.kind, ViolationKind::DeadReachable { class_name, .. } if class_name == "Order")
            && v.path.passes_through(vm.registry(), "longBTreeNode")
    }) {
        println!("--- Figure 1: order leaked in the orderTable B-tree ---");
        println!("{}\n", v.render(vm.registry()));
    }

    // The Customer.lastOrder leak: same orders, different path.
    if let Some(v) = log.iter().find(|v| {
        matches!(&v.kind, ViolationKind::DeadReachable { class_name, .. } if class_name == "Order")
            && v.path.passes_through(vm.registry(), "Customer")
    }) {
        println!("--- Customer.lastOrder keeps destroyed orders alive ---");
        println!("{}\n", v.render(vm.registry()));
    }

    // After applying the fixes the paper derives from these reports, the
    // same instrumentation runs clean.
    let fixed = PseudoJbb {
        bugs: JbbBugs::all_fixed(),
        style: JbbAssertions::Dead,
        ..jbb.clone()
    };
    let mut vm2 = Vm::new(VmConfig::builder().heap_budget(fixed.heap_budget()).build());
    fixed.run(&mut vm2, true)?;
    vm2.collect()?;
    println!(
        "pseudojbb (fixed) produced {} violation(s)",
        vm2.violation_log().len()
    );
    Ok(())
}
