//! Quickstart: catch a memory leak with `assert_dead` and read the
//! full-path report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gc_assertions::{ObjRef, Vm, VmConfig};

fn main() -> Result<(), gc_assertions::VmError> {
    // A VM with default settings: instrumented collector, path tracking,
    // log-and-continue reactions.
    let mut vm = Vm::new(VmConfig::builder().build());
    let m = vm.main();

    // Register some classes and build a tiny object graph:
    //   registry (rooted) --entries--> Object[] --> Session
    //   cache    (rooted) --hit------> Session        (the forgotten alias)
    let registry_class = vm.register_class("SessionRegistry", &["entries"]);
    let array_class = vm.register_class("Object[]", &[]);
    let session_class = vm.register_class("Session", &["user"]);
    let cache_class = vm.register_class("Cache", &["hit"]);

    let registry = vm.alloc(m, registry_class, 1, 0)?;
    vm.add_root(m, registry)?;
    let cache = vm.alloc(m, cache_class, 1, 0)?;
    vm.add_root(m, cache)?;

    let entries = vm.alloc(m, array_class, 4, 0)?;
    vm.set_field(registry, 0, entries)?;
    let session = vm.alloc(m, session_class, 1, 8)?;
    vm.set_field(entries, 0, session)?;
    vm.set_field(cache, 0, session)?; // someone cached the session

    // The program logs the user out: it removes the session from the
    // registry and *believes* the session is now garbage.
    vm.set_field(entries, 0, ObjRef::NULL)?;
    vm.assert_dead(session)?;

    // The next collection checks the assertion for free.
    let report = vm.collect()?;
    println!("collection: {report}");
    for violation in &report.violations {
        println!("\n{}", violation.render(vm.registry()));
    }

    // The path names the Cache.hit reference — clear it and the session
    // really dies.
    vm.set_field(cache, 0, ObjRef::NULL)?;
    let report = vm.collect()?;
    assert!(report.is_clean());
    assert!(!vm.is_live(session));
    println!("\nafter clearing Cache.hit: session reclaimed, no violations");
    Ok(())
}
