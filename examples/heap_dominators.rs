//! Offline leak diagnosis with heap snapshots and dominator trees — the
//! LeakBot/heap-differencing tool family the paper compares against.
//! Where a GC assertion reports the exact violating object with a path,
//! the snapshot analysis gives an aggregate view: which objects *retain*
//! the most memory.
//!
//! ```text
//! cargo run --example heap_dominators
//! ```

use gc_assertions::{Vm, VmConfig};
use gca_detectors::{top_retainers, Dominators, HeapSnapshot};
use gca_workloads::pseudojbb::PseudoJbb;
use gca_workloads::runner::Workload;

fn main() -> Result<(), gc_assertions::VmError> {
    // Run the buggy benchmark (orders leak into the orderTable B-trees).
    let jbb = PseudoJbb::buggy_with_dead_asserts();
    let mut vm = Vm::new(VmConfig::builder().heap_budget(jbb.heap_budget()).build());
    jbb.run(&mut vm, false)?;

    // Snapshot the live heap as an offline tool would.
    let roots = vm.roots();
    let snap = HeapSnapshot::capture(vm.heap(), &roots);
    println!(
        "snapshot: {} live objects, {} words",
        snap.node_count(),
        snap.total_words()
    );

    println!("\nclass histogram (top 8 by shallow size):");
    for (class, count, words) in snap.class_histogram().into_iter().take(8) {
        println!("  {class:<16} {count:>6} objects {words:>8} words");
    }

    let dom = Dominators::compute(&snap);
    println!("\ntop retainers (by retained size):");
    for r in top_retainers(&snap, &dom, 8) {
        println!(
            "  {:<16} node {:>5}  retained {:>8} words (shallow {})",
            r.class_name, r.node, r.retained_words, r.shallow_words
        );
    }

    println!(
        "\nThe longBTree/longBTreeNode retainers hold the leaked Orders — the\n\
         aggregate view points at the structure, while the GC assertion\n\
         (see `cargo run --example jbb_order_leak`) pinpoints the object\n\
         and the exact path keeping it alive."
    );
    Ok(())
}
