//! Record in "production", replay in the lab — the deployment story the
//! paper's ~3% overhead enables, made concrete.
//!
//! ```text
//! cargo run -p gca-replay --example record_replay
//! ```

use gc_assertions::VmConfig;
use gca_replay::{decode, encode, replay, Recorder};

fn main() -> Result<(), gc_assertions::VmError> {
    // --- production: path tracking OFF (cheapest configuration) -------
    let mut rec = Recorder::new(VmConfig::builder().path_tracking(false).build());
    let registry = rec.register_class("SessionRegistry", &["head"]);
    let session = rec.register_class("Session", &["next"]);

    let reg = rec.alloc(registry, 1, 0)?;
    rec.add_root(reg)?;
    // Sessions come and go; one "logged-out" session stays linked.
    let mut prev = rec.alloc(session, 1, 8)?;
    rec.set_field(reg, 0, prev)?;
    for _ in 0..5 {
        let s = rec.alloc(session, 1, 8)?;
        rec.set_field(s, 0, prev)?;
        rec.set_field(reg, 0, s)?;
        prev = s;
    }
    let leaked = prev; // the handler believes this one is gone
    rec.assert_dead(leaked)?;
    rec.collect()?;

    let (prod_vm, log) = rec.finish();
    println!(
        "production run: {} violation(s)",
        prod_vm.violation_log().len()
    );
    for v in prod_vm.violation_log() {
        println!("  (no path recorded) {}", v.summary());
    }

    // Ship the compact log home.
    let wire = encode(&log);
    println!(
        "\nevent log: {} events, {} bytes on the wire",
        log.len(),
        wire.len()
    );

    // --- lab: identical history, full forensics -----------------------
    let events = decode(&wire).expect("wire format intact");
    let lab_vm = replay(&events, VmConfig::builder().path_tracking(true).build())?;
    println!(
        "\nlab replay: {} violation(s), now with paths:",
        lab_vm.violation_log().len()
    );
    for v in lab_vm.violation_log() {
        println!("\n{}", v.render(lab_vm.registry()));
    }
    Ok(())
}
