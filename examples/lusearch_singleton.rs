//! Reproduces the §3.2.2 lusearch case study: `assert_instances` reveals
//! 32 live `IndexSearcher`s where the Lucene documentation recommends one.
//!
//! ```text
//! cargo run --example lusearch_singleton
//! ```

use gc_assertions::{ViolationKind, Vm, VmConfig};
use gca_workloads::lusearch_app::Lusearch;
use gca_workloads::runner::Workload;

fn main() -> Result<(), gc_assertions::VmError> {
    let app = Lusearch::default(); // one IndexSearcher per search thread
    let mut vm = Vm::new(VmConfig::builder().heap_budget(app.heap_budget()).build());
    app.run(&mut vm, true)?;
    vm.collect()?;

    let log = vm.take_violation_log();
    let max_count = log
        .iter()
        .filter_map(|v| match &v.kind {
            ViolationKind::InstanceLimit { count, .. } => Some(*count),
            _ => None,
        })
        .max();
    match max_count {
        Some(count) => {
            println!("assert_instances(IndexSearcher, 1) fired: {count} live instances at GC");
            println!("(the paper observed 32 — one per search thread)");
            if let Some(v) = log
                .iter()
                .find(|v| matches!(v.kind, ViolationKind::InstanceLimit { .. }))
            {
                println!("\n{}", v.render(vm.registry()));
            }
        }
        None => println!("no violation (unexpected for the buggy variant)"),
    }

    // The documented fix: share one searcher across all threads.
    let fixed = Lusearch::fixed();
    let mut vm2 = Vm::new(VmConfig::builder().heap_budget(fixed.heap_budget()).build());
    fixed.run(&mut vm2, true)?;
    vm2.collect()?;
    println!(
        "\nshared-searcher variant: {} violation(s)",
        vm2.violation_log().len()
    );
    Ok(())
}
