//! Reproduces the §3.2.3 SwapLeak case study: a non-static inner class's
//! hidden `this$0` reference keeps "discarded" objects alive, explained
//! by the GC-assertion path report:
//!
//! ```text
//! SArray -> SObject -> SObject$Rep -> SObject
//! ```
//!
//! ```text
//! cargo run --example swapleak
//! ```

use gc_assertions::{ViolationKind, Vm, VmConfig};
use gca_workloads::runner::Workload;
use gca_workloads::swapleak::SwapLeak;

fn main() -> Result<(), gc_assertions::VmError> {
    let buggy = SwapLeak::default();
    let mut vm = Vm::new(VmConfig::builder().heap_budget(buggy.heap_budget()).build());
    buggy.run(&mut vm, true)?;
    vm.collect()?;

    let log = vm.take_violation_log();
    println!(
        "swap loop with non-static inner class: {} violation(s)\n",
        log.len()
    );
    if let Some(v) = log
        .iter()
        .find(|v| matches!(v.kind, ViolationKind::DeadReachable { .. }))
    {
        println!("{}", v.render(vm.registry()));
        println!("\nThe hidden SObject$Rep.this$0 reference explains the leak.");
    }

    // The fix: make Rep a static inner class (no outer reference).
    let fixed = SwapLeak::fixed();
    let mut vm2 = Vm::new(VmConfig::builder().heap_budget(fixed.heap_budget()).build());
    fixed.run(&mut vm2, true)?;
    vm2.collect()?;
    println!(
        "\nstatic-inner-class variant: {} violation(s)",
        vm2.violation_log().len()
    );
    Ok(())
}
