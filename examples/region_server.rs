//! Region assertions on a simulated server (§2.3.2): each connection's
//! handler is bracketed with `start_region` / `assert_alldead`, verifying
//! that servicing a connection is memory-stable. One handler variant
//! stashes a request in a global list — the leak the region catches.
//!
//! ```text
//! cargo run --example region_server
//! ```

use gc_assertions::{MutatorId, ObjRef, Vm, VmConfig};
use gca_workloads::structures::HList;

fn handle_connection(
    vm: &mut Vm,
    worker: MutatorId,
    request_class: gc_assertions::ClassId,
    buffer_class: gc_assertions::ClassId,
    leak_into: Option<&HList>,
) -> Result<(), gc_assertions::VmError> {
    // Bracket the servicing code with the region assertions.
    vm.start_region(worker)?;
    vm.push_frame(worker)?;

    // Parse the request, allocate working buffers, build the response.
    let request = vm.alloc_rooted(worker, request_class, 1, 6)?;
    for _ in 0..8 {
        let buf = vm.alloc_rooted(worker, buffer_class, 0, 32)?;
        let _ = buf;
    }
    if let Some(list) = leak_into {
        // The bug: "audit logging" keeps the whole request object.
        list.push_front(vm, worker, request)?;
    }

    // Connection done: locals die with the frame...
    vm.pop_frame(worker)?;
    // ...and the region asserts everything allocated above is dead.
    vm.assert_alldead(worker)?;
    Ok(())
}

fn main() -> Result<(), gc_assertions::VmError> {
    let mut vm = Vm::new(VmConfig::builder().heap_budget(64 * 1024).build());
    let request_class = vm.register_class("Request", &["body"]);
    let buffer_class = vm.register_class("Buffer", &[]);

    // The audit list some "clever" handler leaks into.
    let main = vm.main();
    let audit = HList::new(&mut vm, main)?;
    vm.add_root(main, audit.handle())?;

    // Two worker threads: a clean one and a leaky one.
    let clean_worker = vm.spawn_mutator();
    let leaky_worker = vm.spawn_mutator();

    for _ in 0..50 {
        handle_connection(&mut vm, clean_worker, request_class, buffer_class, None)?;
    }
    for _ in 0..5 {
        handle_connection(
            &mut vm,
            leaky_worker,
            request_class,
            buffer_class,
            Some(&audit),
        )?;
    }

    let report = vm.collect()?;
    println!(
        "after 55 connections: {} violation(s) ({} region objects asserted dead)",
        report.violations.len(),
        vm.assertion_calls().region_objects
    );
    for v in report.violations.iter().take(2) {
        println!("\n{}", v.render(vm.registry()));
    }
    println!("\nthe clean worker's 50 connections were memory-stable;");
    println!("the leaky worker's 5 requests are pinned by the audit list (LinkedList).");

    // Fix: stop leaking; regions run clean.
    audit.clear(&mut vm)?;
    let mut violations = 0;
    for _ in 0..10 {
        handle_connection(&mut vm, leaky_worker, request_class, buffer_class, None)?;
        violations += vm.collect()?.violations.len();
    }
    println!("after the fix: {violations} violation(s) in 10 more connections");
    let _ = ObjRef::NULL;
    Ok(())
}
