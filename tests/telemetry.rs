//! Differential and acceptance tests for the telemetry subsystem.
//!
//! The central claim is that telemetry is *observation, never
//! participation*: enabling it must not change a single collector
//! decision. The differential tests run every suite workload twice —
//! telemetry on vs off, same seed, same configuration otherwise — and
//! demand identical live sets, violation logs, and (non-timing) GC
//! reports. The acceptance tests pin the ISSUE's observable guarantees:
//! non-zero per-phase spans, per-worker mark timings when `gc_threads
//! > 1`, per-assertion-kind overhead counters, and parseable exporters.

use gc_assertions::{parse_jsonl, GcPhase, GcReport, Mode, Vm, VmConfig};
use gca_workloads::db::Db209;
use gca_workloads::pseudojbb::PseudoJbb;
use gca_workloads::runner::Workload;
use gca_workloads::suite;

/// Everything a run produces that telemetry must not perturb: the final
/// live set (handle, class, shape), the violation log, the collection
/// count, and the final cycle's non-timing report fields.
#[derive(Debug, PartialEq)]
struct Outcome {
    live: Vec<String>,
    violations: Vec<gc_assertions::Violation>,
    collections: u64,
    final_cycle: String,
    counters: gc_assertions::CheckCounters,
    halted: bool,
}

fn non_timing_cycle_key(report: &GcReport) -> String {
    let c = &report.cycle;
    format!(
        "marked={} edges={} pre_root_edges={} swept={} words={}",
        c.objects_marked, c.edges_traced, c.pre_root_edges, c.objects_swept, c.words_swept
    )
}

/// Runs `workload` to completion (plus one final collection) and distils
/// the outcome. `telemetry` is the only knob that varies between the two
/// runs of a differential pair.
fn run_outcome(workload: &dyn Workload, assertions: bool, telemetry: bool) -> (Outcome, Vm) {
    let config = VmConfig::builder()
        .heap_budget(workload.heap_budget())
        .grow_on_oom(true)
        .mode(Mode::Instrumented)
        .telemetry(telemetry)
        .build();
    let mut vm = Vm::new(config);
    workload.run(&mut vm, assertions).unwrap();
    let report = vm.collect().unwrap();
    let mut live: Vec<String> = vm
        .heap()
        .iter()
        .map(|(r, o)| format!("{r}:{:?}:{}", o.class(), o.ref_count()))
        .collect();
    live.sort();
    let outcome = Outcome {
        live,
        violations: vm.violation_log().to_vec(),
        collections: vm.gc_stats().collections,
        final_cycle: non_timing_cycle_key(&report),
        counters: report.counters,
        halted: report.halted,
    };
    (outcome, vm)
}

/// The tentpole differential: for every benchmark in the suite, a
/// telemetry-on run is bit-identical (live set, violations, reports) to a
/// telemetry-off run.
#[test]
fn telemetry_does_not_perturb_suite_workloads() {
    for mut w in suite::full_suite() {
        w.iterations = (w.iterations / 10).max(3);
        let (off, _) = run_outcome(&w, false, false);
        let (on, vm) = run_outcome(&w, false, true);
        assert_eq!(off, on, "{}: telemetry changed the outcome", w.name);
        // And the run actually recorded something.
        let t = vm.telemetry();
        assert!(t.enabled());
        assert_eq!(
            t.cycles(),
            on.collections,
            "{}: every major cycle gets a record",
            w.name
        );
    }
}

/// The same differential over the assertion-rich case studies, where the
/// engine does real checking work (ownership phase, dead asserts).
#[test]
fn telemetry_does_not_perturb_assertion_workloads() {
    let db = Db209 {
        operations: 400,
        initial_entries: 200,
        ..Default::default()
    };
    let jbb = PseudoJbb::buggy_with_dead_asserts();
    for w in [&db as &dyn Workload, &jbb as &dyn Workload] {
        let (off, _) = run_outcome(w, true, false);
        let (on, _) = run_outcome(w, true, true);
        assert_eq!(off, on, "{}: telemetry changed the outcome", w.name());
    }
}

/// ISSUE acceptance: non-zero per-phase spans and per-worker mark
/// timings when `gc_threads > 1`.
#[test]
fn phase_spans_and_worker_timings_are_observable() {
    let mut w = suite::full_suite().remove(0);
    w.iterations = (w.iterations / 10).max(3);
    for workers in [1usize, 2, 4] {
        let config = VmConfig::builder()
            .heap_budget(w.heap_budget())
            .grow_on_oom(true)
            .gc_threads(workers)
            .telemetry(true)
            .build();
        let mut vm = Vm::new(config);
        w.run(&mut vm, false).unwrap();
        vm.collect().unwrap();
        let t = vm.telemetry();
        assert!(t.cycles() > 0);
        assert!(!t.total_pause().is_zero(), "total pause must be observable");
        assert!(
            !t.phase_total(GcPhase::Mark).is_zero(),
            "mark span must be non-zero"
        );
        assert!(
            !t.phase_total(GcPhase::Sweep).is_zero(),
            "sweep span must be non-zero"
        );
        assert_eq!(
            t.worker_mark_ns().len(),
            workers,
            "one cumulative mark timing per worker"
        );
        assert!(
            t.worker_mark_ns().iter().any(|&ns| ns > 0),
            "at least one worker did observable mark work"
        );
        for r in t.records() {
            assert_eq!(r.worker_mark_ns.len(), workers);
        }
    }
}

/// ISSUE acceptance: per-assertion-kind overhead counters are populated
/// by a workload with real assertions (`_209_db` registers ownership,
/// buggy pseudojbb registers dead asserts), and the pre-root (ownership)
/// phase span becomes non-zero exactly when ownership work exists.
#[test]
fn assertion_kind_counters_are_attributed() {
    let db = Db209 {
        operations: 400,
        initial_entries: 200,
        ..Default::default()
    };
    let (_, vm) = run_outcome(&db, true, true);
    let t = vm.telemetry();
    let owned = &t.overhead().owned_by;
    assert!(owned.registered > 0, "db registers owned-by assertions");
    assert!(
        owned.phase_work > 0,
        "ownership phase scanned owners/ownees"
    );
    assert!(
        !t.phase_total(GcPhase::PreRoot).is_zero(),
        "ownership work makes the pre-root span observable"
    );
    assert!(
        t.records().iter().any(|r| r.pre_root_edges > 0),
        "ownership scans trace extra edges before the root scan"
    );

    let jbb = PseudoJbb::buggy_with_dead_asserts();
    let (_, vm) = run_outcome(&jbb, true, true);
    let t = vm.telemetry();
    assert!(
        t.overhead().dead.registered > 0,
        "buggy pseudojbb registers assert-dead"
    );
    assert!(
        t.overhead().dead.header_bit_checks > 0,
        "dead checks inspect header bits during the sweep"
    );
    assert!(t.violations() > 0, "the planted leak is reported");
}

/// ISSUE acceptance: both exporters stay parseable on real runs — JSONL
/// round-trips through the hardened parser and the Prometheus text
/// contains every metric family.
#[test]
fn exporters_are_parseable_on_real_runs() {
    let mut w = suite::full_suite().remove(1); // bloat: GC-heavy
    w.iterations = (w.iterations / 10).max(3);
    let (_, vm) = run_outcome(&w, false, true);
    let t = vm.telemetry();

    let jsonl = t.to_jsonl(Some(w.name));
    let parsed = parse_jsonl(&jsonl).unwrap();
    assert_eq!(parsed.len(), t.records().len());
    for (line, original) in parsed.iter().zip(t.records()) {
        assert_eq!(line.bench.as_deref(), Some("bloat"));
        assert_eq!(&line.record, original);
    }

    let prom = t.to_prometheus();
    for family in [
        "gca_gc_cycles_total",
        "gca_gc_violations_total",
        "gca_gc_phase_seconds_total",
        "gca_gc_worker_mark_seconds_total",
        "gca_assertion_overhead_total",
        "gca_gc_pause_seconds_bucket",
    ] {
        assert!(prom.contains(family), "missing metric family {family}");
    }
    for line in prom.lines() {
        assert!(
            line.starts_with('#') || line.contains(' '),
            "malformed exposition line: {line}"
        );
    }
}

/// Telemetry off is the default, and the snapshot from a disabled VM is
/// empty no matter how much work ran (the knob is observably dark).
#[test]
fn disabled_by_default_and_empty_when_disabled() {
    assert!(!VmConfig::default().telemetry);
    let mut w = suite::full_suite().remove(0);
    w.iterations = 3;
    let (outcome, vm) = run_outcome(&w, false, false);
    assert!(outcome.collections > 0);
    let t = vm.telemetry();
    assert!(!t.enabled());
    assert_eq!(t.cycles(), 0);
    assert!(t.records().is_empty());
    assert!(t.to_jsonl(None).is_empty());
}
