//! End-to-end region-assertion scenario: a multi-worker server whose
//! request handlers are bracketed with `start_region` / `assert_alldead`
//! (§2.3.2's Apache-style use case).

use gc_assertions::{ClassId, MutatorId, ViolationKind, Vm, VmConfig};
use gca_workloads::structures::{HHashMap, HList};

struct Server {
    vm: Vm,
    request_class: ClassId,
    buffer_class: ClassId,
    session_class: ClassId,
    sessions: HHashMap,
    audit: HList,
    workers: Vec<MutatorId>,
}

impl Server {
    fn new(workers: usize) -> Server {
        let mut vm = Vm::new(VmConfig::builder().heap_budget(48 * 1024).build());
        let request_class = vm.register_class("Request", &["session"]);
        let buffer_class = vm.register_class("Buffer", &[]);
        let session_class = vm.register_class("Session", &[]);
        let main = vm.main();
        let sessions = HHashMap::new(&mut vm, main, 16).unwrap();
        vm.add_root(main, sessions.handle()).unwrap();
        let audit = HList::new(&mut vm, main).unwrap();
        vm.add_root(main, audit.handle()).unwrap();
        let workers = (0..workers).map(|_| vm.spawn_mutator()).collect();
        Server {
            vm,
            request_class,
            buffer_class,
            session_class,
            sessions,
            audit,
            workers,
        }
    }

    /// Serves one request on `worker`. `session_id` attaches the request
    /// to a long-lived session (legitimately allocated *outside* the
    /// region via the main thread). `leak` stashes the request in the
    /// audit list.
    fn serve(&mut self, worker: usize, session_id: u64, leak: bool) {
        let w = self.workers[worker];
        let vm = &mut self.vm;
        vm.start_region(w).unwrap();
        vm.push_frame(w).unwrap();

        let req = vm.alloc_rooted(w, self.request_class, 1, 4).unwrap();
        for _ in 0..4 {
            vm.alloc_rooted(w, self.buffer_class, 0, 16).unwrap();
        }
        // Look up (or create) the session. Sessions are created by the
        // *main* mutator, outside any region: long-lived state is allowed.
        let session = match self.sessions.get(vm, session_id).unwrap() {
            Some(s) => s,
            None => {
                let main = vm.main();
                let s = vm.alloc(main, self.session_class, 0, 4).unwrap();
                self.sessions.put(vm, main, session_id, s).unwrap();
                s
            }
        };
        vm.set_field(req, 0, session).unwrap();
        if leak {
            self.audit.push_front(vm, w, req).unwrap();
        }

        vm.pop_frame(w).unwrap();
        vm.assert_alldead(w).unwrap();
    }
}

#[test]
fn clean_server_is_memory_stable() {
    let mut server = Server::new(3);
    for i in 0..120 {
        server.serve(i % 3, (i % 10) as u64, false);
    }
    let report = server.vm.collect().unwrap();
    assert!(report.is_clean(), "{report}");
    // Sessions persist (they are not region-allocated).
    assert_eq!(server.sessions.len(&server.vm).unwrap(), 10);
    assert!(server.vm.assertion_calls().region_objects > 100);
}

#[test]
fn leaky_handler_pinpointed() {
    let mut server = Server::new(2);
    for i in 0..40 {
        server.serve(i % 2, (i % 5) as u64, false);
    }
    // Three leaky requests.
    for i in 0..3 {
        server.serve(0, i, true);
    }
    let report = server.vm.collect().unwrap();
    // The region also catches the audit list's own ListNode allocations
    // (they were allocated inside the region by the leaky handler), so
    // both the requests and their list nodes are reported.
    let dead_requests: Vec<_> = report
        .violations
        .iter()
        .filter(|v| matches!(&v.kind, ViolationKind::DeadReachable { class_name, .. } if class_name == "Request"))
        .collect();
    let dead_nodes = report
        .violations
        .iter()
        .filter(|v| matches!(&v.kind, ViolationKind::DeadReachable { class_name, .. } if class_name == "ListNode"))
        .count();
    assert_eq!(
        dead_requests.len(),
        3,
        "exactly the leaked requests: {report}"
    );
    assert_eq!(dead_nodes, 3, "plus the in-region list nodes: {report}");
    for v in &dead_requests {
        assert!(
            v.path.passes_through(server.vm.registry(), "LinkedList"),
            "path must name the audit list"
        );
    }
}

#[test]
fn regions_survive_collections_inside_the_region() {
    // Allocation pressure inside a request triggers collections; the
    // region machinery (weak queue entries) must stay consistent.
    let mut server = Server::new(1);
    let w = server.workers[0];
    let vm = &mut server.vm;
    vm.start_region(w).unwrap();
    for _ in 0..3_000 {
        vm.alloc(w, server.buffer_class, 0, 16).unwrap(); // dropped immediately
    }
    assert!(vm.gc_stats().collections > 0, "pressure inside the region");
    let asserted = vm.assert_alldead(w).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
    // Only the tail of the queue was still live at region end.
    assert!(asserted < 3_000);
}

#[test]
fn interleaved_worker_regions_do_not_interfere() {
    let mut server = Server::new(4);
    // Start all four regions, allocate on each, close them in reverse.
    for &w in &server.workers.clone() {
        server.vm.start_region(w).unwrap();
        server.vm.push_frame(w).unwrap();
        server
            .vm
            .alloc_rooted(w, server.buffer_class, 0, 8)
            .unwrap();
    }
    for &w in server.workers.clone().iter().rev() {
        server.vm.pop_frame(w).unwrap();
        let n = server.vm.assert_alldead(w).unwrap();
        assert_eq!(n, 1);
    }
    assert!(server.vm.collect().unwrap().is_clean());
}
