//! Whole-system soak test: a seeded random program exercises every
//! feature together — classes, mutators, frames, regions, all five
//! assertions, probes, implicit and explicit collections, both collector
//! modes — while cross-checking VM state against a shadow model after
//! every collection.

use gc_assertions::{Mode, ObjRef, ViolationKind, Vm, VmConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

struct Torture {
    vm: Vm,
    rng: SmallRng,
    classes: Vec<gc_assertions::ClassId>,
    /// Rooted handles (per mutator): these must stay live.
    rooted: Vec<Vec<ObjRef>>,
    /// Objects we deliberately leaked while asserted dead: each must
    /// eventually be reported.
    expected_leaks: HashSet<ObjRef>,
    mutators: Vec<gc_assertions::MutatorId>,
}

impl Torture {
    fn new(seed: u64, generational: bool) -> Torture {
        Torture::new_with(seed, generational, 1, false)
    }

    fn new_with(seed: u64, generational: bool, gc_threads: usize, telemetry: bool) -> Torture {
        let mut config = VmConfig::builder()
            .heap_budget(6_000)
            .grow_on_oom(true)
            .report_once(true)
            .gc_threads(gc_threads)
            .telemetry(telemetry)
            .build();
        if generational {
            config = config.generational(4);
        }
        let mut vm = Vm::new(config);
        let classes = vec![
            vm.register_class("A", &["x", "y"]),
            vm.register_class("B", &["x"]),
            vm.register_class("C", &["x", "y", "z"]),
        ];
        let mutators = vec![vm.main(), vm.spawn_mutator(), vm.spawn_mutator()];
        Torture {
            vm,
            rng: SmallRng::seed_from_u64(seed),
            classes,
            rooted: vec![Vec::new(); 3],
            expected_leaks: HashSet::new(),
            mutators,
        }
    }

    fn random_rooted(&mut self) -> Option<(usize, ObjRef)> {
        let m = self.rng.gen_range(0..self.rooted.len());
        if self.rooted[m].is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.rooted[m].len());
        Some((m, self.rooted[m][i]))
    }

    fn step(&mut self) {
        let op = self.rng.gen_range(0..100);
        match op {
            // Allocate, sometimes rooted.
            0..=39 => {
                let mi = self.rng.gen_range(0..self.mutators.len());
                let class = self.classes[self.rng.gen_range(0..self.classes.len())];
                let nrefs = self.rng.gen_range(0..4);
                let data = self.rng.gen_range(0..8);
                let obj = self
                    .vm
                    .alloc(self.mutators[mi], class, nrefs, data)
                    .unwrap();
                if self.rng.gen_bool(0.4) && self.rooted[mi].len() < 60 {
                    self.vm.add_root(self.mutators[mi], obj).unwrap();
                    self.rooted[mi].push(obj);
                }
            }
            // Link two rooted objects.
            40..=59 => {
                if let (Some((_, a)), Some((_, b))) = (self.random_rooted(), self.random_rooted()) {
                    let nrefs = self.vm.heap().get(a).map(|o| o.ref_count()).unwrap_or(0);
                    if nrefs > 0 {
                        let f = self.rng.gen_range(0..nrefs);
                        self.vm.set_field(a, f, b).unwrap();
                    }
                }
            }
            // Clear a field.
            60..=64 => {
                if let Some((_, a)) = self.random_rooted() {
                    let nrefs = self.vm.heap().get(a).map(|o| o.ref_count()).unwrap_or(0);
                    if nrefs > 0 {
                        let f = self.rng.gen_range(0..nrefs);
                        self.vm.set_field(a, f, ObjRef::NULL).unwrap();
                    }
                }
            }
            // Assert a rooted object dead (a deliberate, detectable leak).
            65..=69 => {
                if let Some((_, a)) = self.random_rooted() {
                    if !self.expected_leaks.contains(&a) {
                        self.vm.assert_dead(a).unwrap();
                        self.expected_leaks.insert(a);
                    }
                }
            }
            // Allocate garbage asserted dead (must pass silently).
            70..=79 => {
                let class = self.classes[0];
                let obj = self.vm.alloc(self.mutators[0], class, 1, 2).unwrap();
                self.vm.assert_dead(obj).unwrap();
            }
            // A clean region on a random mutator.
            80..=87 => {
                let mi = self.rng.gen_range(0..self.mutators.len());
                let m = self.mutators[mi];
                self.vm.start_region(m).unwrap();
                self.vm.push_frame(m).unwrap();
                for _ in 0..self.rng.gen_range(1..6) {
                    let class = self.classes[1];
                    self.vm.alloc_rooted(m, class, 1, 3).unwrap();
                }
                self.vm.pop_frame(m).unwrap();
                self.vm.assert_alldead(m).unwrap();
            }
            // Unshared assertion on a fresh chain (clean).
            88..=92 => {
                let m = self.mutators[0];
                self.vm.push_frame(m).unwrap();
                let head = self.vm.alloc_rooted(m, self.classes[1], 1, 0).unwrap();
                let tail = self.vm.alloc(m, self.classes[1], 1, 0).unwrap();
                self.vm.set_field(head, 0, tail).unwrap();
                self.vm.assert_unshared(tail).unwrap();
                self.vm.pop_frame(m).unwrap();
            }
            // Probe a rooted object: must be reachable.
            93..=95 => {
                if let Some((_, a)) = self.random_rooted() {
                    assert!(self.vm.probe_reachable(a).unwrap());
                }
            }
            // Explicit collection + invariant check.
            _ => {
                self.vm.collect().unwrap();
                self.check_invariants();
            }
        }
    }

    fn check_invariants(&mut self) {
        // Every rooted object is live and probe-reachable.
        for m in &self.rooted {
            for &r in m {
                assert!(self.vm.is_live(r), "rooted object died");
            }
        }
        // Every reported dead-reachable violation is one we planted.
        for v in self.vm.violation_log() {
            if let ViolationKind::DeadReachable { object, .. } = &v.kind {
                assert!(
                    self.expected_leaks.contains(object),
                    "unexpected violation: {}",
                    v.summary()
                );
            }
        }
        // Full structural verification: free list, accounting, no
        // dangling references.
        let problems = self.vm.heap().verify();
        assert!(problems.is_empty(), "heap corruption: {problems:?}");
    }

    fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
        // Final collection: every planted leak must have been reported
        // (report-once, so exactly once).
        self.vm.collect().unwrap();
        self.check_invariants();
        let reported: HashSet<ObjRef> = self
            .vm
            .violation_log()
            .iter()
            .filter_map(|v| match &v.kind {
                ViolationKind::DeadReachable { object, .. } => Some(*object),
                _ => None,
            })
            .collect();
        for leak in &self.expected_leaks {
            assert!(
                reported.contains(leak),
                "planted leak {leak} never reported"
            );
        }
    }
}

#[test]
fn torture_marksweep() {
    for seed in [1, 42, 0xDEAD] {
        Torture::new(seed, false).run(1_500);
    }
}

#[test]
fn torture_generational() {
    for seed in [7, 99, 0xBEEF] {
        Torture::new(seed, true).run(1_500);
    }
}

/// Runs the soak program at `seed` with `gc_threads` workers and
/// telemetry recording on, returning the sorted violation kinds and the
/// telemetry snapshot. The kinds (object refs + class names, no paths)
/// are deterministic for a seed, so sequential and parallel marking must
/// produce identical sets.
fn violations_with_workers(
    seed: u64,
    gc_threads: usize,
) -> (Vec<String>, gc_assertions::GcTelemetry) {
    let mut t = Torture::new_with(seed, false, gc_threads, true);
    t.run(800);
    let mut kinds: Vec<String> =
        t.vm.violation_log()
            .iter()
            .map(|v| format!("{:?}", v.kind))
            .collect();
    kinds.sort();
    (kinds, t.vm.telemetry())
}

#[test]
fn torture_parallel_violation_parity_with_telemetry() {
    for seed in [42, 0xFEED] {
        let (seq_kinds, seq_tel) = violations_with_workers(seed, 1);
        for workers in [2usize, 4] {
            let (par_kinds, par_tel) = violations_with_workers(seed, workers);
            assert_eq!(
                seq_kinds, par_kinds,
                "seed {seed}: {workers}-worker marking changed the violation set"
            );
            // Telemetry observed the parallel mark: every major cycle
            // carries one mark span per worker.
            assert!(par_tel.cycles() > 0);
            assert_eq!(par_tel.worker_mark_ns().len(), workers);
            for r in par_tel.records() {
                assert_eq!(r.worker_mark_ns.len(), workers, "seed {seed}");
            }
            // Roll-ups agree with the sequential run on what happened,
            // even though timings differ.
            assert_eq!(par_tel.cycles(), seq_tel.cycles());
            assert_eq!(par_tel.violations(), seq_tel.violations());
        }
    }
}

#[test]
fn torture_base_mode_collects_correctly() {
    // Base mode (no assertion engine): the same random mutation pattern
    // must keep rooted objects alive and accounting consistent.
    let mut vm = Vm::new(
        VmConfig::builder()
            .heap_budget(4_000)
            .grow_on_oom(true)
            .mode(Mode::Base)
            .build(),
    );
    let c = vm.register_class("T", &["a", "b"]);
    let m = vm.main();
    let mut rng = SmallRng::seed_from_u64(77);
    let mut rooted = Vec::new();
    for _ in 0..3_000 {
        let obj = vm.alloc(m, c, 2, rng.gen_range(0..6)).unwrap();
        if rng.gen_bool(0.2) && rooted.len() < 50 {
            vm.add_root(m, obj).unwrap();
            rooted.push(obj);
        }
        if rng.gen_bool(0.3) && rooted.len() >= 2 {
            let a = rooted[rng.gen_range(0..rooted.len())];
            let b = rooted[rng.gen_range(0..rooted.len())];
            vm.set_field(a, rng.gen_range(0..2), b).unwrap();
        }
    }
    vm.collect().unwrap();
    for r in &rooted {
        assert!(vm.is_live(*r));
    }
}
