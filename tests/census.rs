//! Differential and acceptance tests for the heap-census subsystem.
//!
//! The census inherits telemetry's contract — *observation, never
//! participation* — and its differential tests are correspondingly
//! stricter: enabling the census must not change a single collector
//! decision under any engine (sequential, parallel, generational). On
//! top sit the ISSUE's acceptance guarantees: census-enabled JSONL
//! records carry per-class live tallies and top allocation sites; the
//! drift detector flags the leaking class in SwapLeak and stays silent
//! on steady-state pseudojbb; and `Vm::census()` serves heap diffs and
//! Prometheus metrics.

use gc_assertions::{
    parse_jsonl, CycleKind, DriftScope, GcReport, Mode, Vm, VmConfig, VmConfigBuilder,
};
use gca_workloads::pseudojbb::PseudoJbb;
use gca_workloads::runner::Workload;
use gca_workloads::suite;
use gca_workloads::swapleak::SwapLeak;

/// Everything a run produces that the census must not perturb (the same
/// distillation the telemetry differential uses).
#[derive(Debug, PartialEq)]
struct Outcome {
    live: Vec<String>,
    violations: Vec<gc_assertions::Violation>,
    collections: u64,
    minor_collections: u64,
    final_cycle: String,
    counters: gc_assertions::CheckCounters,
    halted: bool,
}

fn non_timing_cycle_key(report: &GcReport) -> String {
    let c = &report.cycle;
    format!(
        "marked={} edges={} pre_root_edges={} swept={} words={}",
        c.objects_marked, c.edges_traced, c.pre_root_edges, c.objects_swept, c.words_swept
    )
}

/// Runs `workload` to completion (plus one final collection) under the
/// given config and distils the outcome. The caller varies only the
/// census knob between the two runs of a differential pair.
fn run_outcome(
    workload: &dyn Workload,
    assertions: bool,
    builder: VmConfigBuilder,
) -> (Outcome, Vm) {
    let mut vm = Vm::new(builder.build());
    workload.run(&mut vm, assertions).unwrap();
    let report = vm.collect().unwrap();
    let mut live: Vec<String> = vm
        .heap()
        .iter()
        .map(|(r, o)| format!("{r}:{:?}:{}", o.class(), o.ref_count()))
        .collect();
    live.sort();
    let outcome = Outcome {
        live,
        violations: vm.violation_log().to_vec(),
        collections: vm.gc_stats().collections,
        minor_collections: vm.minor_collections(),
        final_cycle: non_timing_cycle_key(&report),
        counters: report.counters,
        halted: report.halted,
    };
    (outcome, vm)
}

fn base_builder(w: &dyn Workload, mode: Mode) -> VmConfigBuilder {
    VmConfig::builder()
        .heap_budget(w.heap_budget())
        .grow_on_oom(true)
        .mode(mode)
}

/// The tentpole differential: for a suite cross-section under every
/// engine — sequential instrumented, detached Base, parallel, and
/// generational — a census-on run is bit-identical (live set, violation
/// log, non-timing reports) to a census-off run.
#[test]
fn census_does_not_perturb_any_engine() {
    for mut w in suite::full_suite().into_iter().take(4) {
        w.iterations = (w.iterations / 10).max(3);
        let configs: Vec<(&str, VmConfigBuilder)> = vec![
            ("sequential", base_builder(&w, Mode::Instrumented)),
            ("base-mode", base_builder(&w, Mode::Base)),
            (
                "parallel",
                base_builder(&w, Mode::Instrumented).gc_threads(2),
            ),
            ("parallel-base", base_builder(&w, Mode::Base).gc_threads(2)),
            (
                "generational",
                base_builder(&w, Mode::Instrumented).generational(16),
            ),
        ];
        for (label, builder) in configs {
            let (off, _) = run_outcome(&w, false, builder.clone().census(false));
            let (on, vm) = run_outcome(&w, false, builder.census(true));
            assert_eq!(off, on, "{}/{label}: census changed the outcome", w.name);
            let census = vm.census();
            assert!(census.enabled());
            assert_eq!(
                census.cycles(),
                on.collections,
                "{}/{label}: every major cycle gets a census",
                w.name
            );
        }
    }
}

/// The same differential over an assertion-rich workload, where the
/// engine does real checking work alongside the census accumulators.
#[test]
fn census_does_not_perturb_assertion_workloads() {
    let jbb = PseudoJbb::buggy_with_dead_asserts();
    let (off, _) = run_outcome(
        &jbb,
        true,
        base_builder(&jbb, Mode::Instrumented).census(false),
    );
    let (on, _) = run_outcome(
        &jbb,
        true,
        base_builder(&jbb, Mode::Instrumented).census(true),
    );
    assert!(!on.violations.is_empty(), "the planted leaks are reported");
    assert_eq!(off, on, "census changed an assertion outcome");
}

/// ISSUE acceptance: census-enabled runs export JSONL whose records
/// include per-class live object/byte counts and top allocation sites;
/// census-off records omit the fields entirely.
#[test]
fn jsonl_records_carry_census_fields() {
    let w = SwapLeak::default();
    let builder = base_builder(&w, Mode::Instrumented).telemetry(true);

    let (_, vm) = run_outcome(&w, false, builder.clone().census(true));
    let jsonl = vm.telemetry().to_jsonl(Some("swapleak"));
    let parsed = parse_jsonl(&jsonl).unwrap();
    assert!(!parsed.is_empty());
    for r in &parsed {
        let census = r.record.census.as_ref().expect("census fields present");
        assert!(!census.classes.is_empty());
        assert!(census.classes.iter().all(|e| e.objects > 0 && e.bytes > 0));
        assert!(!census.sites.is_empty(), "site attribution present");
    }
    // The labelled constructor site is visible in at least one record.
    assert!(
        parsed.iter().any(|r| {
            r.record
                .census
                .as_ref()
                .is_some_and(|c| c.sites.iter().any(|s| s.name == "SObject::new"))
        }),
        "SwapLeak's labelled allocation site shows up"
    );

    let (_, vm) = run_outcome(&w, false, builder.census(false));
    let jsonl = vm.telemetry().to_jsonl(Some("swapleak"));
    let parsed = parse_jsonl(&jsonl).unwrap();
    assert!(!parsed.is_empty());
    assert!(
        parsed.iter().all(|r| r.record.census.is_none()),
        "census-off records omit the census entirely"
    );
}

/// ISSUE acceptance (drift, positive): repeated SwapLeak rounds keep
/// pinning "discarded" SObjects, so the census flags a `CensusDrift`
/// naming the leaking class — and its labelled allocation site — and
/// derives an `assert-instances` limit from the data.
#[test]
fn swapleak_trips_class_and_site_drift() {
    let w = SwapLeak::default();
    let mut vm = Vm::new(base_builder(&w, Mode::Instrumented).census(true).build());
    for _ in 0..8 {
        w.run(&mut vm, false).unwrap();
        vm.collect().unwrap();
    }
    let census = vm.census();
    assert!(census.cycles() >= 8);

    let class_drift = census
        .drifts()
        .iter()
        .find(|d| d.scope == DriftScope::Class && d.name == "SObject")
        .expect("the leaking class drifts");
    assert!(class_drift.last_objects > class_drift.first_objects);
    assert!(class_drift.suggested_limit >= class_drift.first_objects);
    assert!(
        class_drift.render().contains("SObject"),
        "rendered drift names the class"
    );

    assert!(
        census
            .drifts()
            .iter()
            .any(|d| d.scope == DriftScope::Site && d.name == "SObject::new"),
        "the labelled constructor site drifts too"
    );

    assert!(
        census
            .suggested_limits()
            .iter()
            .any(|(name, limit)| name == "SObject" && *limit > 0),
        "a data-derived assert-instances limit is suggested"
    );

    // The heap diff between the first and last cycles shows SObject
    // retaining ever more bytes.
    let first = census.records().first().unwrap().seq;
    let last = census.records().last().unwrap().seq;
    let diff = census.heapdiff(first, last).expect("both cycles recorded");
    let row = diff
        .rows
        .iter()
        .find(|r| r.name == "SObject")
        .expect("SObject in the diff");
    assert!(row.bytes_delta() > 0);
    assert!(diff.render().contains("SObject"));

    // And the Prometheus exposition carries the drift.
    let prom = census.to_prometheus();
    assert!(prom.contains("gca_census_drift{scope=\"class\",name=\"SObject\"}"));
    assert!(prom.contains("gca_census_suggested_instance_limit{class=\"SObject\"}"));
    assert!(prom.contains("gca_census_live_bytes"));
}

/// ISSUE acceptance (drift, negative): steady-state pseudojbb runs at
/// least a full detection window without a single drift event — no
/// false positives on a stable heap. (Each SwapLeak iteration of the
/// positive test roots a fresh array, so only single-run workloads make
/// honest negatives.)
#[test]
fn steady_state_workloads_do_not_drift() {
    let jbb = PseudoJbb::for_figures();
    let (_, vm) = run_outcome(
        &jbb,
        false,
        base_builder(&jbb, Mode::Instrumented).census(true),
    );
    let census = vm.census();
    assert!(
        census.cycles() as usize >= census.window(),
        "pseudojbb must run a full detection window ({} cycles)",
        census.cycles()
    );
    assert!(
        census.drifts().is_empty(),
        "steady-state pseudojbb must not drift: {:?}",
        census.drifts()
    );
}

/// Generational runs census minor cycles too: nursery-survivor tallies
/// are recorded per minor collection (and kept out of the drift
/// windows), and minor cycle records report the full trace-counter set.
#[test]
fn generational_census_covers_minor_cycles() {
    let mut w = suite::full_suite().remove(0);
    w.iterations = (w.iterations / 10).max(3);
    let builder = base_builder(&w, Mode::Instrumented)
        .generational(16)
        .telemetry(true)
        .census(true);
    let (outcome, vm) = run_outcome(&w, false, builder);
    assert!(outcome.minor_collections > 0, "generational runs minors");

    let census = vm.census();
    assert_eq!(census.minor_cycles(), outcome.minor_collections);
    assert!(census.records().iter().any(|c| c.kind == CycleKind::Minor));

    // Satellite: minor cycle records now report the same counter set as
    // full collections (objects_marked / edges_traced were previously
    // always zero for minors).
    let t = vm.telemetry();
    let minors: Vec<_> = t
        .records()
        .iter()
        .filter(|r| r.kind == CycleKind::Minor)
        .collect();
    assert!(!minors.is_empty());
    assert!(
        minors.iter().any(|r| r.objects_marked > 0),
        "minor records carry mark counters"
    );
    assert!(
        minors.iter().any(|r| r.census.is_some()),
        "minor records carry nursery-survivor census data"
    );
}

/// Census off is the default, and the snapshot from a disabled VM is the
/// inert default no matter how much work ran.
#[test]
fn disabled_by_default_and_empty_when_disabled() {
    assert!(!VmConfig::default().census);
    let w = SwapLeak::default();
    let (outcome, vm) = run_outcome(&w, false, base_builder(&w, Mode::Instrumented));
    assert!(outcome.collections > 0);
    let census = vm.census();
    assert!(!census.enabled());
    assert_eq!(census.cycles(), 0);
    assert!(census.records().is_empty());
    assert!(census.drifts().is_empty());
    assert!(census.suggested_limits().is_empty());
}
