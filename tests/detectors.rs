//! The detector-family comparison (Ablation C) as checked claims: GC
//! assertions are precise and instance-level; the heuristics are
//! approximate in the specific ways the paper describes (§1, §4).

use gca_bench::{baseline_detectors, baseline_eager};
use gca_detectors::{CorkDetector, EagerOwnershipChecker, StalenessDetector};
use gca_workloads::db::Db209;
use gca_workloads::runner::{run_once, ExpConfig};

#[test]
fn gc_assertions_precise_heuristics_approximate() {
    let c = baseline_detectors();
    assert!(c.leaked > 0);

    // "The system generates no false positives — any violation represents
    // a mismatch between the programmer's expectations and the actual
    // behavior of the program."
    assert_eq!(c.gca_false_positives, 0);
    assert!(c.gca_true_positives >= c.leaked, "each leak reported");

    // Staleness finds the leaks but buries them in false positives
    // (rarely accessed live objects).
    assert!(c.stale_true_positives > 0);
    assert!(
        c.stale_false_positives > 0,
        "the startup-config object must be misflagged"
    );

    // Cork points at the growing class — type-level only.
    assert!(c.cork_flagged_entry_class);
}

#[test]
fn eager_checking_is_much_slower_than_gc_assertions() {
    let cmp = baseline_eager(200, 1_500);
    // The paper cites 10x-100x for eager invariant checking; our eager
    // checker re-traverses the owner region per mutation. GC assertions
    // stay within a small factor of unchecked execution.
    assert!(
        cmp.eager_slowdown() > 5.0,
        "eager slowdown only {:.1}x",
        cmp.eager_slowdown()
    );
    assert!(
        cmp.gc_slowdown() < 3.0,
        "gc-assertions slowdown {:.2}x",
        cmp.gc_slowdown()
    );
    assert!(cmp.eager_traversed > 100_000, "eager really traverses");
}

#[test]
fn detectors_run_against_leaky_db_workload() {
    // Wire all three detectors around the leaky _209_db and check the
    // assertion-based report fires while the run itself stays healthy.
    let db = Db209 {
        initial_entries: 300,
        operations: 600,
        budget: 14_000,
        ..Db209::with_leak()
    };
    let with = run_once(&db, ExpConfig::WithAssertions).unwrap();
    assert!(with.violations > 0);
    let base = run_once(&db, ExpConfig::Base).unwrap();
    assert_eq!(base.violations, 0);
}

#[test]
fn staleness_requires_threshold_tuning() {
    // The same history judged leak/no-leak purely by threshold — the
    // knob GC assertions do not have.
    let mut heap = gca_heap::Heap::new();
    let c = heap.register_class("T", &[]);
    let obj = heap.alloc(c, 0, 0).unwrap();
    let mut strict = StalenessDetector::new(5);
    let mut lax = StalenessDetector::new(500);
    strict.touch(obj);
    lax.touch(obj);
    for _ in 0..100 {
        strict.advance();
        lax.advance();
    }
    assert_eq!(strict.scan(&heap).len(), 1);
    assert_eq!(lax.scan(&heap).len(), 0);
}

#[test]
fn cork_needs_sustained_growth_gc_assertions_fire_first_cycle() {
    // A single-shot leak: one object becomes unreachable-from-owner once.
    // Cork's growth differencing never fires (volume is flat); the GC
    // assertion reports it at the first collection.
    let mut vm = gc_assertions::Vm::new(gc_assertions::VmConfig::builder().build());
    let m = vm.main();
    let owner_cls = vm.register_class("Owner", &["f"]);
    let item_cls = vm.register_class("Item", &[]);
    let keeper_cls = vm.register_class("Keeper", &["k"]);
    let owner = vm.alloc_rooted(m, owner_cls, 1, 0).unwrap();
    let keeper = vm.alloc_rooted(m, keeper_cls, 1, 0).unwrap();
    let item = vm.alloc(m, item_cls, 0, 0).unwrap();
    vm.set_field(owner, 0, item).unwrap();
    vm.set_field(keeper, 0, item).unwrap();
    vm.assert_owned_by(owner, item).unwrap();

    let mut cork = CorkDetector::new(2);
    cork.observe(vm.heap());

    // The leak: removed from the owner, still kept by the keeper.
    vm.set_field(owner, 0, gc_assertions::ObjRef::NULL).unwrap();
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1, "assertion fires immediately");
    assert!(
        cork.observe(vm.heap()).is_empty(),
        "no growth for cork to see"
    );
}

#[test]
fn eager_catches_transients_gc_assertions_miss() {
    // The honest flip side: eager checking catches a violated-then-fixed
    // invariant; the GC assertion (checked only at collections) does not.
    let mut vm = gc_assertions::Vm::new(gc_assertions::VmConfig::builder().build());
    let m = vm.main();
    let c = vm.register_class("C", &["f"]);
    let owner = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let ownee = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(owner, 0, ownee).unwrap();
    vm.add_root(m, ownee).unwrap(); // kept alive independently
    vm.assert_owned_by(owner, ownee).unwrap();

    let mut eager = EagerOwnershipChecker::new();
    eager.add_pair(owner, ownee);

    // Transient break.
    vm.set_field(owner, 0, gc_assertions::ObjRef::NULL).unwrap();
    let eager_hits = eager.after_mutation(vm.heap());
    assert_eq!(eager_hits.len(), 1, "eager sees the transient");
    // Repair before any collection.
    vm.set_field(owner, 0, ownee).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.is_clean(), "GC assertion misses the transient");
}
