//! Cross-crate integration: the full pipeline (VM + collector + engine +
//! workloads + runner) behaves consistently across configurations.

use gca_workloads::pseudojbb::PseudoJbb;
use gca_workloads::runner::{run_once, ExpConfig, Workload};
use gca_workloads::suite;

fn tiny(mut w: suite::SyntheticWorkload) -> suite::SyntheticWorkload {
    w.iterations = (w.iterations / 12).max(2);
    w
}

#[test]
fn all_configs_reclaim_identically() {
    // For a deterministic workload, Base / Infrastructure /
    // WithAssertions must perform identical allocation work — checking is
    // observation, not behaviour.
    for w in suite::full_suite().into_iter().take(6).map(tiny) {
        let base = run_once(&w, ExpConfig::Base).unwrap();
        let infra = run_once(&w, ExpConfig::Infrastructure).unwrap();
        let with = run_once(&w, ExpConfig::WithAssertions).unwrap();
        assert_eq!(base.allocations, infra.allocations, "{}", w.name());
        assert_eq!(base.allocations, with.allocations, "{}", w.name());
        assert_eq!(base.violations, 0);
        assert_eq!(infra.violations, 0);
    }
}

#[test]
fn infrastructure_never_reports_without_assertions() {
    for w in suite::full_suite().into_iter().map(tiny) {
        let m = run_once(&w, ExpConfig::Infrastructure).unwrap();
        assert_eq!(m.violations, 0, "{} fired with no assertions", w.name());
    }
}

#[test]
fn fixed_pseudojbb_clean_across_styles_and_configs() {
    let mut jbb = PseudoJbb::for_figures();
    jbb.transactions = 400;
    for cfg in [
        ExpConfig::Base,
        ExpConfig::Infrastructure,
        ExpConfig::WithAssertions,
    ] {
        let m = run_once(&jbb, cfg).unwrap();
        assert_eq!(m.violations, 0, "{cfg}");
        assert!(m.collections > 0, "{cfg} must collect");
    }
}

#[test]
fn gc_work_is_attributed() {
    // GC time must be a nonzero fraction of total for a GC-heavy
    // workload, and mutator + gc == total by construction.
    let w = tiny(suite::full_suite().remove(1)); // bloat
    let m = run_once(&w, ExpConfig::Infrastructure).unwrap();
    assert!(m.collections > 0);
    assert!(m.gc.as_nanos() > 0);
    assert_eq!(m.total, m.gc + m.mutator);
}

#[test]
fn with_assertions_checks_ownees_on_db() {
    use gca_workloads::db::Db209;
    let db = Db209 {
        initial_entries: 500,
        operations: 500,
        budget: 16_000,
        ..Db209::default()
    };
    let m = run_once(&db, ExpConfig::WithAssertions).unwrap();
    assert_eq!(m.violations, 0);
    assert!(
        m.ownees_checked_per_gc > 50.0,
        "ownership phase must be exercised: {} ownees/GC",
        m.ownees_checked_per_gc
    );
    // Infrastructure run does no ownership work at all.
    let infra = run_once(&db, ExpConfig::Infrastructure).unwrap();
    assert_eq!(infra.ownees_checked_per_gc, 0.0);
}

#[test]
fn determinism_across_repeated_runs() {
    let w = tiny(suite::full_suite().remove(0));
    let a = run_once(&w, ExpConfig::WithAssertions).unwrap();
    let b = run_once(&w, ExpConfig::WithAssertions).unwrap();
    assert_eq!(a.allocations, b.allocations);
    assert_eq!(a.collections, b.collections);
    assert_eq!(a.violations, b.violations);
}
