//! The paper's qualitative evaluation (§3.2), end to end: every case
//! study's bug is found with the documented assertion, the reported path
//! explains it, and the documented fix silences it.

use gc_assertions::{ViolationKind, Vm, VmConfig};
use gca_workloads::lusearch_app::Lusearch;
use gca_workloads::pseudojbb::{JbbAssertions, JbbBugs, PseudoJbb};
use gca_workloads::runner::{run_once, ExpConfig, Workload};
use gca_workloads::swapleak::SwapLeak;

fn run_collect(w: &dyn Workload) -> (Vm, Vec<gc_assertions::Violation>) {
    let mut vm = Vm::new(VmConfig::builder().heap_budget(w.heap_budget()).build());
    w.run(&mut vm, true).unwrap();
    vm.collect().unwrap();
    let log = vm.take_violation_log();
    (vm, log)
}

// ---------------------------------------------------------------------
// §3.2.1 SPEC JBB2000
// ---------------------------------------------------------------------

#[test]
fn jbb_order_table_leak_reproduces_figure_1() {
    let jbb = PseudoJbb {
        bugs: JbbBugs {
            fix_customer_back_ref: true,
            fix_order_table: false, // the Jump & McKinley leak
            fix_old_company_drag: true,
        },
        style: JbbAssertions::Dead,
        transactions: 600,
        ..PseudoJbb::default()
    };
    let (vm, log) = run_collect(&jbb);
    let fig1 = log
        .iter()
        .find(|v| {
            matches!(&v.kind, ViolationKind::DeadReachable { class_name, .. } if class_name == "Order")
                && v.path.passes_through(vm.registry(), "longBTreeNode")
        })
        .expect("an order leaked in the B-tree with a Figure-1 path");
    let text = fig1.render(vm.registry());
    // The exact type chain of Figure 1.
    for cls in [
        "Company",
        "Object[]",
        "Warehouse",
        "District",
        "longBTree",
        "longBTreeNode",
        "Order",
    ] {
        assert!(text.contains(cls), "missing {cls}:\n{text}");
    }
}

#[test]
fn jbb_customer_leak_found_and_fix_verified() {
    let buggy = PseudoJbb {
        bugs: JbbBugs {
            fix_customer_back_ref: false,
            fix_order_table: true,
            fix_old_company_drag: true,
        },
        style: JbbAssertions::Dead,
        transactions: 600,
        ..PseudoJbb::default()
    };
    let (vm, log) = run_collect(&buggy);
    let hit = log
        .iter()
        .find(|v| v.path.passes_through(vm.registry(), "Customer"))
        .expect("path through Customer identifies lastOrder");
    assert!(matches!(hit.kind, ViolationKind::DeadReachable { .. }));

    // The paper's fix: clear the back reference in the destructor.
    let fixed = PseudoJbb {
        bugs: JbbBugs::all_fixed(),
        ..buggy
    };
    let (_, log) = run_collect(&fixed);
    assert!(log.is_empty(), "fix verified: {log:?}");
}

#[test]
fn jbb_ownership_style_finds_customer_leak_without_death_sites() {
    // "The ownership assertion is an easier way to detect such problems
    // since the user does not need to know when an object should be dead."
    let buggy = PseudoJbb {
        bugs: JbbBugs {
            fix_customer_back_ref: false,
            fix_order_table: true,
            fix_old_company_drag: true,
        },
        style: JbbAssertions::Ownership,
        transactions: 600,
        ..PseudoJbb::default()
    };
    let (vm, log) = run_collect(&buggy);
    let not_owned: Vec<_> = log
        .iter()
        .filter(|v| matches!(v.kind, ViolationKind::NotOwned { .. }))
        .collect();
    assert!(!not_owned.is_empty());
    assert!(not_owned[0].path.passes_through(vm.registry(), "Customer"));
}

#[test]
fn jbb_company_drag_detected_and_fixed() {
    let buggy = PseudoJbb {
        bugs: JbbBugs {
            fix_customer_back_ref: true,
            fix_order_table: true,
            fix_old_company_drag: false, // the oldCompany drag
        },
        style: JbbAssertions::Dead,
        transactions: 400,
        company_generations: 4,
        budget: 130_000,
        ..PseudoJbb::default()
    };
    let (_, log) = run_collect(&buggy);
    assert!(
        log.iter().any(|v| matches!(
            &v.kind,
            ViolationKind::DeadReachable { class_name, .. } if class_name == "Company"
        )),
        "destroyed companies dragged by the oldCompany local"
    );
    // assert-instances(Company, 1) also catches it, as the paper notes.
    assert!(
        log.iter().any(|v| matches!(
            &v.kind,
            ViolationKind::InstanceLimit { class_name, .. } if class_name == "Company"
        )),
        "two companies live at once"
    );

    let fixed = PseudoJbb {
        bugs: JbbBugs::all_fixed(),
        ..buggy
    };
    let (_, log) = run_collect(&fixed);
    assert!(log.is_empty());
}

// ---------------------------------------------------------------------
// §3.2.2 lusearch
// ---------------------------------------------------------------------

#[test]
fn lusearch_thirty_two_searchers() {
    let (_, log) = run_collect(&Lusearch {
        documents: 120,
        queries_per_thread: 10,
        budget: 40_000,
        ..Lusearch::default()
    });
    let max = log
        .iter()
        .filter_map(|v| match &v.kind {
            ViolationKind::InstanceLimit {
                class_name, count, ..
            } if class_name == "IndexSearcher" => Some(*count),
            _ => None,
        })
        .max()
        .expect("instance-limit violation");
    assert_eq!(max, 32, "one IndexSearcher per thread");

    let fixed = Lusearch {
        documents: 120,
        queries_per_thread: 10,
        budget: 40_000,
        ..Lusearch::fixed()
    };
    let m = run_once(&fixed, ExpConfig::WithAssertions).unwrap();
    assert_eq!(m.violations, 0);
}

// ---------------------------------------------------------------------
// §3.2.3 SwapLeak
// ---------------------------------------------------------------------

#[test]
fn swapleak_hidden_reference_explained_by_path() {
    let (vm, log) = run_collect(&SwapLeak::default());
    let v = log
        .iter()
        .find(|v| matches!(v.kind, ViolationKind::DeadReachable { .. }))
        .expect("swapped SObjects leak");
    // The paper's explaining path: SArray -> SObject -> SObject$Rep ->
    // SObject.
    let reg = vm.registry();
    assert!(v.path.passes_through(reg, "SArray"));
    assert!(v.path.passes_through(reg, "SObject"));
    assert!(v.path.passes_through(reg, "SObject$Rep"));

    let m = run_once(&SwapLeak::fixed(), ExpConfig::WithAssertions).unwrap();
    assert_eq!(m.violations, 0, "static inner class fixes it");
}
