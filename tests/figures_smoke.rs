//! Smoke tests for the figure-regeneration harness: each figure's data is
//! produced at a tiny scale and has the right *shape* (rows present,
//! ratios finite, qualitative direction sensible). Numeric closeness to
//! the paper is recorded in EXPERIMENTS.md from full-scale release runs,
//! not asserted here (debug-build timing is too noisy).

use gca_bench::{
    ablation_bibop, ablation_path_tracking, baseline_detectors, figure1, figures_2_3, figures_4_5,
    summarize_infra,
};

#[test]
fn figure1_is_a_figure_one_report() {
    let text = figure1();
    assert!(text.contains("asserted dead is reachable"), "{text}");
    assert!(text.contains("Order"), "{text}");
    assert!(text.contains("Path to object"), "{text}");
    // The path format matches Figure 1's arrow chain.
    assert!(text.contains("->"), "{text}");
}

#[test]
fn figures_2_3_cover_the_whole_suite() {
    let rows = figures_2_3(1, 0.08);
    assert_eq!(rows.len(), 19, "18 suite benchmarks + pseudojbb");
    for r in &rows {
        assert!(r.base.total.as_nanos() > 0, "{}", r.name);
        assert!(r.infra.total.as_nanos() > 0, "{}", r.name);
        assert!(r.total_overhead().is_finite());
        assert!(r.gc_overhead().is_finite());
        // Same program, both configs.
        assert_eq!(r.base.allocations, r.infra.allocations, "{}", r.name);
    }
    let (total, mutator, gc) = summarize_infra(&rows);
    assert!(total.is_finite() && mutator.is_finite() && gc.is_finite());

    let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
    assert!(names.contains(&"bloat"));
    assert!(names.contains(&"pseudojbb"));
}

#[test]
fn figures_4_5_have_db_and_pseudojbb() {
    let rows = figures_4_5(1, 0.15);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].name, "209_db");
    assert_eq!(rows[1].name, "pseudojbb");
    for r in &rows {
        // Real assertion work happened in the WithAssertions runs.
        assert!(
            r.with.ownees_checked_per_gc > 0.0,
            "{} checked no ownees",
            r.name
        );
        // And produced no violations (the figure workloads are clean).
        assert_eq!(r.with.violations, 0, "{}", r.name);
        assert!(r.total_overhead().is_finite());
        assert!(r.gc_overhead().is_finite());
    }
}

#[test]
fn ablation_rows_have_both_modes() {
    let rows = ablation_path_tracking(1, 0.08, 2);
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert!(r.gc_plain.as_nanos() > 0);
        assert!(r.gc_paths.as_nanos() > 0);
    }
}

#[test]
fn ablation_bibop_row_shape() {
    let row = ablation_bibop(1, 2_000, 2);
    assert_eq!(row.objects, 2_000);
    assert!(row.freelist_alloc.as_nanos() > 0);
    assert!(row.bibop_alloc.as_nanos() > 0);
    assert!(row.freelist_mark.as_nanos() > 0);
    assert!(row.bibop_mark.as_nanos() > 0);
    assert!(row.alloc_delta().is_finite());
    assert!(row.mark_delta().is_finite());
}

#[test]
fn baseline_detector_comparison_shape() {
    let c = baseline_detectors();
    assert!(c.leaked > 0);
    assert_eq!(c.gca_false_positives, 0);
    assert!(c.gca_true_positives > 0);
}
