//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact subset* of `rand 0.8` it uses: [`rngs::SmallRng`]
//! seeded with [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic across platforms, which is all the
//! workloads and tests rely on (they never depend on matching upstream
//! `rand`'s exact stream, only on a fixed seed giving a fixed run).

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniformly random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Upstream `rand` seeds from byte arrays too; this
/// workspace only ever uses `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> u32 {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw(rng: &mut (impl RngCore + ?Sized)) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`. Callers guarantee `low < high`.
    fn sample_half_open(rng: &mut (impl RngCore + ?Sized), low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(
                rng: &mut (impl RngCore + ?Sized),
                low: $t,
                high: $t,
            ) -> $t {
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64,
                // irrelevant for test workloads.
                let r = rng.next_u64() as u128;
                let off = (r * span) >> 64;
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut (impl RngCore + ?Sized), low: f64, high: f64) -> f64 {
        low + f64::draw(rng) * (high - low)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Span fits u128 even for the full 64-bit range.
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not a probability");
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Small fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the same family upstream `SmallRng` uses on 64-bit
    /// targets (exact stream differs; determinism per seed is what
    /// matters here).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, per Vigna's reference seeding advice.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (the only `seq` API this workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u128;
                let j = ((rng.next_u64() as u128 * span) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut SmallRng::seed_from_u64(42));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
