//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! subset `gca-replay`'s codec uses: [`BytesMut`] as an append-only
//! builder ([`BufMut`]), [`Bytes`] as a cheaply cloneable immutable
//! buffer, and [`Buf`] for cursor-style reads over `&[u8]`. No
//! zero-copy slicing tricks — `Vec<u8>`/`Arc<[u8]>` underneath.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

/// Growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write side: little-endian put operations, as used by the codec.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read side: a cursor over bytes. Get operations advance the cursor and
/// panic when the buffer is short — callers bounds-check with
/// [`Buf::remaining`] first (exactly how the codec uses it).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `dst.len()` bytes, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_slice(b"hi");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 1 + 4 + 8 + 2);

        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64_le(), 42);
        let mut s = [0u8; 2];
        rd.copy_to_slice(&mut s);
        assert_eq!(&s, b"hi");
        assert!(!rd.has_remaining());
    }

    #[test]
    fn slicing_through_deref() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.as_ref(), &[1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut rd: &[u8] = &[1];
        rd.get_u32_le();
    }
}
