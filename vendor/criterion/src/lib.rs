//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! subset the bench suite uses: [`Criterion::benchmark_group`], group
//! knobs (`sample_size`, `warm_up_time`, `measurement_time`),
//! [`BenchmarkGroup::bench_function`] with [`Bencher::iter`] /
//! [`Bencher::iter_custom`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical machinery it runs one warm-up
//! iteration plus `sample_size` measured samples and prints
//! `name  min …  median …` lines — enough to compare configurations
//! (the ablation benches only need relative numbers).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization
/// barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts-and-ignores CLI configuration (cargo passes `--bench`).
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
    }

    /// Upstream prints a summary here; nothing to do.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the stub always warms up with exactly
    /// one un-measured iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub measures `sample_size`
    /// single-iteration samples regardless of wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Throughput annotation; accepted and ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its min/median sample time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        // One warm-up pass, unmeasured.
        let mut warm = Bencher {
            iters: 1,
            measured: Duration::ZERO,
        };
        f(&mut warm);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 1,
                measured: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.measured);
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        println!(
            "{}/{}  min {:>12.3?}  median {:>12.3?}  ({} samples)",
            self.name, id, min, median, self.sample_size
        );
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Throughput annotations (accepted, unused).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-sample measurement handle passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    measured: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.measured = start.elapsed();
    }

    /// Lets the closure time itself: it receives the iteration count and
    /// returns the measured duration (used to time GC inside a run).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.measured = f(self.iters);
    }
}

/// Bundles benchmark functions into a group runner, mirroring upstream's
/// macro shape (the `config = ...` form is accepted and ignored).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running each [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures_something() {
        let mut b = Bencher {
            iters: 3,
            measured: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 3);
    }

    #[test]
    fn iter_custom_uses_returned_duration() {
        let mut b = Bencher {
            iters: 5,
            measured: Duration::ZERO,
        };
        b.iter_custom(|iters| Duration::from_nanos(iters * 10));
        assert_eq!(b.measured, Duration::from_nanos(50));
    }

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0;
        group.bench_function("b", |b| {
            runs += 1;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert_eq!(runs, 3, "1 warm-up + 2 samples");
    }
}
