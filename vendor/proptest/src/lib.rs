//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! subset of proptest 1.x this workspace uses: the [`proptest!`] macro
//! with `#![proptest_config(...)]`, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, `any::<T>()`, integer-range and simple string-regex
//! strategies, [`collection::vec`], [`prop_oneof!`] (weighted and
//! unweighted), `Just`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for a test-only
//! stand-in:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering (when available via the macro) and the case seed;
//!   cases are deterministic per (test, case index) so a failure
//!   reproduces exactly on rerun.
//! * String "regex" strategies support the literal-class forms the
//!   workspace uses (`.{m,n}`, `[chars]{m,n}` with ranges like `A-Z`);
//!   anything fancier panics loudly rather than silently misgenerating.

#![allow(clippy::type_complexity)]
#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Test-runner types ([`Config`] is re-exported as `ProptestConfig`).
pub mod test_runner {
    /// How many cases to run, and everything else upstream puts here
    /// (unused knobs accepted-and-ignored keep call sites compiling).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }
}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Seeded source; the `proptest!` macro derives the seed from the
    /// test name and case index.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.0.gen_range(0..n)
        }
    }
}

/// A source of values of one type. Upstream separates `Strategy` from
/// `ValueTree` (the shrinkable intermediate); with shrinking gone the
/// strategy generates values directly.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values satisfying `f` (retries; panics after too many
    /// rejections, mirroring upstream's global rejection cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng| self.new_value(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    source: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1024 candidates: {}", self.whence);
    }
}

/// Type-erased strategy (see [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.inner)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform values of `T` (see [`any`]).
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for a type: uniform over the whole domain.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String-literal "regex" strategies: supports the forms this workspace
/// uses — `.{m,n}` and `[class]{m,n}` with `a-z`-style ranges and literal
/// members, plus plain literals. Unsupported syntax panics.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        match parse_simple_regex(self) {
            None => (*self).to_string(), // literal pattern
            Some((alphabet, lo, hi)) => {
                let len = lo + rng.below(hi - lo + 1);
                (0..len)
                    .map(|_| alphabet[rng.below(alphabet.len())])
                    .collect()
            }
        }
    }
}

/// Parses `.{m,n}` / `[class]{m,n}` into `Some((alphabet, min, max))`;
/// `None` means the pattern is a plain literal.
fn parse_simple_regex(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let (alphabet, rest) = match chars.first() {
        Some('.') => {
            // Printable ASCII; close enough to upstream's "any char" for
            // parser-fuzzing purposes.
            (
                (b' '..=b'~').map(char::from).collect::<Vec<_>>(),
                &chars[1..],
            )
        }
        Some('[') => {
            let close = chars
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
            let mut alpha = Vec::new();
            let class = &chars[1..close];
            let mut i = 0;
            while i < class.len() {
                if i + 2 < class.len() && class[i + 1] == '-' {
                    let (a, b) = (class[i] as u32, class[i + 2] as u32);
                    assert!(a <= b, "bad range in pattern {pat:?}");
                    for c in a..=b {
                        alpha.push(char::from_u32(c).unwrap());
                    }
                    i += 3;
                } else {
                    alpha.push(class[i]);
                    i += 1;
                }
            }
            assert!(!alpha.is_empty(), "empty class in pattern {pat:?}");
            (alpha, &chars[close + 1..])
        }
        _ => {
            // No metacharacters: treat the whole pattern as a literal.
            assert!(
                !pat.contains(['{', '}', '[', ']', '*', '+', '?', '(', ')', '|', '\\']),
                "unsupported regex pattern {pat:?} (stub proptest supports \
                 '.{{m,n}}', '[class]{{m,n}}', and literals)"
            );
            return None;
        }
    };
    let rest: String = rest.iter().collect();
    if rest.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pat:?}"));
    let (lo, hi) = match inner.split_once(',') {
        Some((a, b)) => (
            a.parse()
                .unwrap_or_else(|_| panic!("bad repeat in {pat:?}")),
            b.parse()
                .unwrap_or_else(|_| panic!("bad repeat in {pat:?}")),
        ),
        None => {
            let n = inner
                .parse()
                .unwrap_or_else(|_| panic!("bad repeat in {pat:?}"));
            (n, n)
        }
    };
    assert!(lo <= hi, "bad repetition bounds in pattern {pat:?}");
    Some((alphabet, lo, hi))
}

/// Boxes a strategy branch for [`Union`]; used by [`prop_oneof!`] to get
/// a uniform closure type without inference-placeholder casts.
pub fn boxed_branch<S: Strategy + 'static>(s: S) -> Box<dyn Fn(&mut TestRng) -> S::Value> {
    Box::new(move |rng| s.new_value(rng))
}

/// Collection strategies.
pub mod collection {
    use super::{fmt, Strategy, TestRng};

    /// Sizes accepted by [`vec`]: a fixed `usize` or a `usize` range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Weighted union of same-valued strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    branches: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>,
    total: u64,
}

impl<V> fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} branches)", self.branches.len())
    }
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(branches: Vec<(u32, Box<dyn Fn(&mut TestRng) -> V>)>) -> Union<V> {
        let total: u64 = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: all weights zero");
        Union { branches, total }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.0.gen_range(0..self.total);
        for (w, f) in &self.branches {
            let w = u64::from(*w);
            if pick < w {
                return f(rng);
            }
            pick -= w;
        }
        unreachable!()
    }
}

/// Deterministic seed for one test case: FNV-1a over the test name mixed
/// with the case index (so every `(test, case)` pair reproduces exactly).
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy,
    };
}

/// Defines property tests. Supports the subset of upstream syntax this
/// workspace uses: an optional `#![proptest_config(expr)]` header and
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::from_seed(
                        $crate::case_seed(concat!(module_path!(), "::", stringify!($name)), case),
                    );
                    $(
                        let $pat = $crate::Strategy::new_value(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the case when the assumption fails (upstream rejects-and-
/// regenerates; skipping is equivalent for generation-only testing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

/// Weighted or unweighted choice among strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight, $crate::boxed_branch($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::boxed_branch($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_any_generate_in_domain() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = Strategy::new_value(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let _: bool = Strategy::new_value(&any::<bool>(), &mut rng);
            let t = Strategy::new_value(&(0u32..4, any::<bool>()), &mut rng);
            assert!(t.0 < 4);
        }
    }

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..50 {
            let v = Strategy::new_value(&crate::collection::vec(0u8..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let w = Strategy::new_value(&crate::collection::vec(any::<bool>(), 7usize), &mut rng);
            assert_eq!(w.len(), 7);
        }
    }

    #[test]
    fn string_patterns_match_their_own_grammar() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let s = Strategy::new_value(&"[a-c-]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '-')), "{s:?}");
            let t = Strategy::new_value(&".{0,6}", &mut rng);
            assert!(t.len() <= 6);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");
        }
    }

    #[test]
    fn oneof_honors_weights_roughly() {
        let mut rng = TestRng::from_seed(4);
        let s = prop_oneof![
            9 => Just(true),
            1 => Just(false),
        ];
        let trues = (0..1000)
            .filter(|_| Strategy::new_value(&s, &mut rng))
            .count();
        assert!(trues > 750, "weighted pick looks broken: {trues}");
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::case_seed("x", 0), crate::case_seed("x", 0));
        assert_ne!(crate::case_seed("x", 0), crate::case_seed("x", 1));
        assert_ne!(crate::case_seed("x", 0), crate::case_seed("y", 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(xs in crate::collection::vec(0u32..100, 0..8), b in any::<bool>()) {
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(u32::from(b) < 2, true);
            prop_assume!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 100));
        }
    }
}
