//! # gc-assertions — use the garbage collector to check heap properties
//!
//! A from-scratch Rust reproduction of
//! *GC Assertions: Using the Garbage Collector to Check Heap Properties*
//! (Edward E. Aftandilian and Samuel Z. Guyer, PLDI 2009).
//!
//! GC assertions let a program state expectations about heap structure and
//! object lifetime — properties no other subsystem can observe — and have
//! them checked *for free* during the garbage collector's normal trace:
//!
//! * [`Vm::assert_dead`] — this object must be reclaimed at the next
//!   collection (catches leaks at the granularity of single objects);
//! * [`Vm::start_region`] / [`Vm::assert_alldead`] — everything allocated
//!   in a bracketed region must be dead at the region's end (checks that
//!   e.g. a server's per-request code is memory-stable);
//! * [`Vm::assert_instances`] — at most *I* live instances of a class
//!   (checks singleton discipline, or performance recommendations like
//!   Lucene's one-`IndexSearcher` rule);
//! * [`Vm::assert_unshared`] — at most one incoming pointer (a tree has
//!   not silently become a DAG);
//! * [`Vm::assert_owned_by`] — an ownee must remain reachable *through*
//!   its owner and never outlive it (finds leaks without knowing the exact
//!   point of death).
//!
//! Violation reports carry the **full instance-level path** from a root to
//! the offending object (the paper's Figure 1), reconstructed from the
//! tracer's path-tracking worklist at zero additional asymptotic cost.
//!
//! # Quick start
//!
//! ```
//! use gc_assertions::{Vm, VmConfig, ViolationKind};
//!
//! # fn main() -> Result<(), gc_assertions::VmError> {
//! let mut vm = Vm::new(VmConfig::builder().build());
//! let m = vm.main();
//! let list = vm.register_class("List", &["head"]);
//! let node = vm.register_class("Node", &["next"]);
//!
//! // Build list -> node, root the list.
//! let l = vm.alloc(m, list, 1, 0)?;
//! vm.add_root(m, l)?;
//! let n = vm.alloc(m, node, 1, 0)?;
//! vm.set_field(l, 0, n)?;
//!
//! // The program believes clearing `head` kills the node...
//! vm.assert_dead(n)?;
//! // ...but forgets to clear it. The next GC reports the leak with a path.
//! let report = vm.collect()?;
//! assert_eq!(report.violations.len(), 1);
//! assert!(matches!(
//!     report.violations[0].kind,
//!     ViolationKind::DeadReachable { .. }
//! ));
//! println!("{}", report.violations[0].render(vm.registry()));
//! # Ok(())
//! # }
//! ```
//!
//! # Architecture
//!
//! The crate layers the paper's contribution over two substrate crates:
//! [`gca_heap`] (object model, classes, free-list heap with
//! generation-checked handles) and [`gca_collector`] (mark-sweep with
//! pluggable [`gca_collector::TraceHooks`]). The [`AssertionEngine`] here
//! is a `TraceHooks` implementation; [`Mode::Base`] detaches it entirely,
//! reproducing the paper's three measured configurations (Base /
//! Infrastructure / WithAssertions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assertions;
mod census;
mod config;
mod engine;
mod error;
mod mutator;
mod ownership;
mod par_engine;
mod probe;
mod report;
mod shared;
mod violation;
mod vm;

pub use assertions::{Assertions, RegionGuard};
pub use census::AllocSite;
pub use config::{
    AssertionClass, CollectorKind, MinorStrategy, Mode, Reaction, VmConfig, VmConfigBuilder,
};
pub use engine::AssertionEngine;
pub use error::VmError;
pub use mutator::MutatorId;
pub use probe::Probe;
pub use report::{CheckCounters, GcReport};
pub use shared::{SharedVm, VmThread};
pub use violation::{Violation, ViolationKind};
pub use vm::{AssertionCallCounts, Vm};

// Re-export the substrate types users need to drive the VM.
pub use gca_collector::{CycleStats, GcStats, HeapPath, PathStep};
pub use gca_heap::{ClassId, Flags, HeapError, HeapStats, ObjRef, TypeRegistry};
pub use gca_telemetry::export::parse_jsonl;
pub use gca_telemetry::{
    AssertionKind, AssertionOverhead, CensusData, CensusDrift, CensusEntry, CycleCensus, CycleKind,
    CycleRecord, DriftScope, GcPhase, GcTelemetry, HeapCensus, HeapDiff, HeapDiffRow, JsonlRecord,
    KindOverhead, LatencyHistogram, TelemetryParseError,
};
