//! Assertion violations and their paper-style rendering.

use std::fmt;

use gca_collector::HeapPath;
use gca_heap::{ObjRef, TypeRegistry};

/// What went wrong: one variant per assertion kind, carrying the
/// information needed for a paper-style report. Class names are resolved
/// at detection time so violations stay printable after the objects die.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ViolationKind {
    /// `assert-dead`: an object that was asserted dead is reachable
    /// (§2.3.1). Also produced by `assert-alldead` regions, which mark
    /// every region-allocated object dead at the region end (§2.3.2).
    DeadReachable {
        /// The reachable-but-asserted-dead object.
        object: ObjRef,
        /// Its class name.
        class_name: String,
    },
    /// `assert-instances`: more than `limit` instances of the class were
    /// live at collection time (§2.4.1). No path is available — as the
    /// paper notes, the problem objects may have been traced before the
    /// count exceeded the limit.
    InstanceLimit {
        /// The tracked class.
        class_name: String,
        /// The asserted limit.
        limit: u32,
        /// Live instances observed this collection.
        count: u32,
    },
    /// `assert-unshared`: a second incoming pointer was found (§2.5.1).
    /// The path is the *second* path, which, as the paper concedes, may
    /// not be the one the user needs.
    Shared {
        /// The object with multiple incoming pointers.
        object: ObjRef,
        /// Its class name.
        class_name: String,
    },
    /// `assert-ownedby`: the root scan reached an ownee that the ownership
    /// phase did not mark as owned — no path to it passes through its
    /// owner (§2.5.2).
    NotOwned {
        /// The improperly reachable ownee.
        ownee: ObjRef,
        /// Its class name.
        ownee_class: String,
        /// Its registered owner.
        owner: ObjRef,
        /// The owner's class name.
        owner_class: String,
    },
    /// `assert-ownedby` misuse: while scanning from one owner, the
    /// ownership phase encountered an ownee registered to a *different*
    /// owner, violating the disjointness restriction (§2.5.2).
    ImproperOwnership {
        /// The ownee reached through the wrong owner.
        ownee: ObjRef,
        /// Its class name.
        ownee_class: String,
        /// The owner whose scan reached it.
        scanned_owner: ObjRef,
        /// The scanned owner's class name.
        scanned_owner_class: String,
    },
    /// Strict owner-lifetime extension (ours, not in the paper): the owner
    /// was collected while this ownee is still live, i.e. the ownee
    /// outlived its owner.
    OwneeOutlivedOwner {
        /// The surviving ownee.
        ownee: ObjRef,
        /// Its class name.
        ownee_class: String,
        /// The dead owner's class name.
        owner_class: String,
    },
}

/// A checked-and-failed GC assertion, with the heap path the tracer
/// reconstructed when it detected the failure.
///
/// # Example
///
/// ```
/// use gc_assertions::{Vm, VmConfig};
///
/// # fn main() -> Result<(), gc_assertions::VmError> {
/// let mut vm = Vm::new(VmConfig::builder().build());
/// let class = vm.register_class("Order", &[]);
/// let m = vm.main();
/// let order = vm.alloc(m, class, 0, 0)?;
/// vm.add_root(m, order)?; // still rooted...
/// vm.assert_dead(order)?; // ...but asserted dead
/// let report = vm.collect()?;
/// assert_eq!(report.violations.len(), 1);
/// let text = report.violations[0].render(vm.registry());
/// assert!(text.contains("asserted dead is reachable"));
/// assert!(text.contains("Order"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What failed.
    pub kind: ViolationKind,
    /// Root-to-object path at detection time; empty when path tracking is
    /// off or when the assertion kind cannot provide one.
    pub path: HeapPath,
}

impl Violation {
    /// The assertion class this violation belongs to, for per-class
    /// reaction policies ([`crate::VmConfig::reaction_for`]).
    pub fn class(&self) -> crate::config::AssertionClass {
        use crate::config::AssertionClass;
        match self.kind {
            ViolationKind::DeadReachable { .. } => AssertionClass::Lifetime,
            ViolationKind::InstanceLimit { .. } => AssertionClass::Volume,
            ViolationKind::Shared { .. }
            | ViolationKind::NotOwned { .. }
            | ViolationKind::ImproperOwnership { .. }
            | ViolationKind::OwneeOutlivedOwner { .. } => AssertionClass::Connectivity,
        }
    }

    /// Renders the violation in the style of the paper's Figure 1:
    ///
    /// ```text
    /// Warning: an object that was asserted dead is reachable.
    /// Type: Order
    /// Path to object: Company
    ///  -> .warehouses Object[]
    ///  ...
    /// ```
    pub fn render(&self, registry: &TypeRegistry) -> String {
        let mut out = String::new();
        match &self.kind {
            ViolationKind::DeadReachable { object, class_name } => {
                out.push_str("Warning: an object that was asserted dead is reachable.\n");
                out.push_str(&format!("Type: {class_name} ({object})\n"));
                out.push_str(&format!("Path to object: {}", self.path.display(registry)));
            }
            ViolationKind::InstanceLimit {
                class_name,
                limit,
                count,
            } => {
                out.push_str("Warning: instance limit exceeded.\n");
                out.push_str(&format!(
                    "Type: {class_name}\nLimit: {limit}, live instances at GC: {count}"
                ));
            }
            ViolationKind::Shared { object, class_name } => {
                out.push_str(
                    "Warning: an object that was asserted unshared has more than one incoming pointer.\n",
                );
                out.push_str(&format!("Type: {class_name} ({object})\n"));
                out.push_str(&format!(
                    "Second path to object: {}",
                    self.path.display(registry)
                ));
            }
            ViolationKind::NotOwned {
                ownee,
                ownee_class,
                owner,
                owner_class,
            } => {
                out.push_str("Warning: an object is reachable but not through its owner.\n");
                out.push_str(&format!(
                    "Ownee: {ownee_class} ({ownee}), owner: {owner_class} ({owner})\n"
                ));
                out.push_str(&format!("Path to object: {}", self.path.display(registry)));
            }
            ViolationKind::ImproperOwnership {
                ownee,
                ownee_class,
                scanned_owner,
                scanned_owner_class,
            } => {
                out.push_str("Warning: improper use of assert-ownedby (owner regions overlap).\n");
                out.push_str(&format!(
                    "Ownee {ownee_class} ({ownee}) was reached while scanning from owner {scanned_owner_class} ({scanned_owner})\n"
                ));
                out.push_str(&format!(
                    "Path from scanned owner: {}",
                    self.path.display(registry)
                ));
            }
            ViolationKind::OwneeOutlivedOwner {
                ownee,
                ownee_class,
                owner_class,
            } => {
                out.push_str("Warning: an ownee outlived its owner.\n");
                out.push_str(&format!(
                    "Ownee: {ownee_class} ({ownee}), owner class: {owner_class} (collected this cycle)"
                ));
            }
        }
        out
    }

    /// Short one-line summary, independent of the registry.
    pub fn summary(&self) -> String {
        match &self.kind {
            ViolationKind::DeadReachable { class_name, .. } => {
                format!("dead-reachable {class_name}")
            }
            ViolationKind::InstanceLimit {
                class_name,
                limit,
                count,
            } => format!("instance-limit {class_name} {count}>{limit}"),
            ViolationKind::Shared { class_name, .. } => format!("shared {class_name}"),
            ViolationKind::NotOwned { ownee_class, .. } => format!("not-owned {ownee_class}"),
            ViolationKind::ImproperOwnership { ownee_class, .. } => {
                format!("improper-ownership {ownee_class}")
            }
            ViolationKind::OwneeOutlivedOwner { ownee_class, .. } => {
                format!("ownee-outlived-owner {ownee_class}")
            }
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_identify_kind() {
        let v = Violation {
            kind: ViolationKind::InstanceLimit {
                class_name: "IndexSearcher".into(),
                limit: 1,
                count: 32,
            },
            path: HeapPath::empty(),
        };
        assert_eq!(v.summary(), "instance-limit IndexSearcher 32>1");
        assert_eq!(v.to_string(), v.summary());
    }

    #[test]
    fn render_instance_limit_without_registry_path() {
        let reg = TypeRegistry::new();
        let v = Violation {
            kind: ViolationKind::InstanceLimit {
                class_name: "IndexSearcher".into(),
                limit: 1,
                count: 32,
            },
            path: HeapPath::empty(),
        };
        let text = v.render(&reg);
        assert!(text.contains("instance limit exceeded"));
        assert!(text.contains("Limit: 1, live instances at GC: 32"));
    }

    #[test]
    fn render_dead_mentions_path_placeholder_when_untracked() {
        let reg = TypeRegistry::new();
        let v = Violation {
            kind: ViolationKind::DeadReachable {
                object: ObjRef::NULL,
                class_name: "Order".into(),
            },
            path: HeapPath::empty(),
        };
        let text = v.render(&reg);
        assert!(text.contains("asserted dead is reachable"));
        assert!(text.contains("no path information"));
    }
}
