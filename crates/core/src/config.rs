//! VM configuration.

/// How the VM reacts when a collection detects assertion violations
/// (§2.6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reaction {
    /// Log the error (into the [`crate::GcReport`]) and continue executing.
    /// This retains the semantics of the program without any assertions
    /// and is the paper's chosen default.
    #[default]
    Log,
    /// Log the error and halt: the VM refuses further mutator work, for
    /// assertions whose failure indicates a non-recoverable error.
    Halt,
    /// Force lifetime assertions to be true: the collector nulls out all
    /// incoming references to asserted-dead objects that it encountered
    /// during the trace, so the object is reclaimed at the *next*
    /// collection. As the paper notes, this may let a program run longer
    /// without exhausting memory but risks introducing null-pointer
    /// errors in the mutator.
    ForceTrue,
}

/// Which collector configuration the VM runs — the three configurations of
/// the paper's evaluation (§3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Unmodified collector ([`gca_collector::NoHooks`]); the assertion API
    /// is unavailable. Paper configuration **Base**.
    Base,
    /// Collector with the assertion engine attached. With no assertions
    /// registered this measures the infrastructure overhead (paper
    /// configuration **Infrastructure**); with assertions registered it is
    /// **WithAssertions**.
    #[default]
    Instrumented,
}

/// Which garbage-collection algorithm backs major collections.
///
/// The paper's machinery (§2.2–2.5) is defined in terms of the *trace*,
/// not of any particular collector; this enum makes that claim executable
/// by offering two structurally different backends that must agree on
/// every assertion verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectorKind {
    /// The paper's MarkSweep plan: non-moving trace-and-sweep, with the
    /// sequential DFS tracer or the parallel work-stealing mark phase
    /// depending on [`VmConfig::gc_threads`].
    #[default]
    MarkSweep,
    /// A semispace copying (Cheney-scan) collector: survivors are
    /// evacuated to the to-space in BFS order, the spaces flip, and
    /// assertion checks ride along at evacuation time. Copying changes
    /// *when* (at which address) objects live, not *whether* they are
    /// live, so all assertion verdicts are identical to MarkSweep.
    /// Full-heap and sequential: incompatible with
    /// [`VmConfig::generational`] and with `gc_threads > 1`.
    Copying,
}

/// How a generational *minor* collection discovers old→young references.
///
/// Both strategies produce bit-identical collection results — the same
/// survivors, promotions and assertion verdicts — because any extra old
/// objects a card scan visits only have their old (skipped) or
/// already-young-listed children examined. Only scan-effort statistics
/// differ. The knob exists so the equivalence is testable (and so the
/// ablation benches can price each barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinorStrategy {
    /// Harvest the heap's card table: every reference-field store dirties
    /// the *source* page's card (an unconditional one-bit write), and the
    /// minor scans the old objects resident on dirty pages. Cheapest
    /// barrier; the scan may visit old objects that never acquired a
    /// young reference.
    #[default]
    Cards,
    /// Maintain an exact remembered-set side list: the write barrier
    /// tests the source and target generations and logs old objects that
    /// acquire young references (deduplicated by the `REMEMBERED` header
    /// bit). Costlier barrier; minimal scan.
    RememberedSet,
}

/// The classes of assertion a [`Reaction`] override can target — §2.6
/// suggests "different actions based on the class of assertion that is
/// violated" as future work; this implements it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssertionClass {
    /// `assert-dead` and region assertions (lifetime).
    Lifetime,
    /// `assert-instances` (volume).
    Volume,
    /// `assert-unshared` and `assert-ownedby` (connectivity/ownership).
    Connectivity,
}

/// Configuration for a [`crate::Vm`].
///
/// # Example
///
/// ```
/// use gc_assertions::{Reaction, VmConfig};
///
/// let config = VmConfig::new()
///     .heap_budget_words(64 * 1024)
///     .grow_on_oom(false)
///     .reaction(Reaction::Log);
/// assert_eq!(config.heap_budget, 64 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Heap budget in words; an allocation that would exceed it triggers a
    /// collection first. The paper's methodology fixes this at 2× the
    /// minimum heap for each benchmark.
    pub heap_budget: usize,
    /// If `true`, the budget doubles when a collection cannot make room
    /// (convenient default); if `false`, allocation fails with
    /// out-of-memory, as on a fixed experimental heap.
    pub grow: bool,
    /// Reaction to assertion violations.
    pub reaction: Reaction,
    /// Collector configuration (Base vs Instrumented).
    pub mode: Mode,
    /// Use the path-tracking worklist so reports carry full heap paths
    /// (§2.7). Disabling it removes the per-object worklist overhead and
    /// all path information; exposed for the ablation benchmark.
    pub path_tracking: bool,
    /// Report each violating object only once across collections (via the
    /// `REPORTED` header bit) instead of on every collection it survives.
    pub report_once: bool,
    /// Extension (not in the paper): when an owner dies, report any of its
    /// ownees that are still live, instead of silently dropping the pair.
    pub strict_owner_lifetime: bool,
    /// Per-assertion-class reaction overrides (paper §2.6 future work);
    /// classes without an override use [`VmConfig::reaction`].
    pub reaction_overrides: Vec<(AssertionClass, Reaction)>,
    /// Generational collection (paper §2.2): `Some(n)` makes
    /// allocation-triggered collections *minor* (nursery-only, no
    /// assertion checks) with a full major collection forced after `n`
    /// consecutive minors — demonstrating the paper's observation that a
    /// generational collector lets assertions go unchecked for long
    /// periods. `None` (default) is the paper's full-heap MarkSweep.
    pub generational: Option<usize>,
    /// Number of tracing workers for *major* collections. `1` (default)
    /// runs the sequential tracer with the §2.7 path-tracking worklist;
    /// `> 1` runs the work-stealing parallel mark phase with per-worker
    /// assertion shards (paths are then reconstructed on demand for
    /// flagged objects, so a report may show a different — equally valid —
    /// retaining path). `0` means *auto*: one worker per available core.
    /// Minor collections are always sequential (the nursery is small).
    pub gc_threads: usize,
    /// Record GC telemetry: per-cycle phase spans, per-worker mark
    /// timings, per-assertion-kind overhead attribution and pause
    /// histograms, exposed via `Vm::telemetry()`. Off by default —
    /// telemetry is pure observation (records are derived from cycle
    /// statistics *after* each collection), so disabling it leaves the
    /// collector's hot paths untouched.
    pub telemetry: bool,
    /// Record a heap census: per-class and per-allocation-site live
    /// object/byte histograms accumulated during each mark, with a
    /// rolling-window drift detector over major cycles, exposed via
    /// `Vm::census()`. Off by default — the census observes marking but
    /// never changes which objects are marked, swept, or reported, so
    /// census-on runs are bit-identical to census-off runs in everything
    /// except the census itself.
    pub census: bool,
    /// Which collector algorithm backs major collections (see
    /// [`CollectorKind`]). Defaults to the paper's MarkSweep.
    pub collector: CollectorKind,
    /// How minor collections discover old→young references (see
    /// [`MinorStrategy`]); irrelevant unless [`VmConfig::generational`]
    /// is set. Defaults to card marking.
    pub minor_strategy: MinorStrategy,
    /// Shard identity when this VM is one member of a fleet (the soak
    /// harness runs one VM per shard thread). Purely informational: the
    /// VM never branches on it, but exporters use it to label telemetry
    /// series and event records with their shard of origin. `None`
    /// (default) for a standalone VM.
    pub shard: Option<u64>,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            heap_budget: 1 << 20,
            grow: true,
            reaction: Reaction::Log,
            mode: Mode::Instrumented,
            path_tracking: true,
            report_once: true,
            strict_owner_lifetime: false,
            reaction_overrides: Vec::new(),
            generational: None,
            gc_threads: 1,
            telemetry: false,
            census: false,
            collector: CollectorKind::MarkSweep,
            minor_strategy: MinorStrategy::Cards,
            shard: None,
        }
    }
}

impl VmConfig {
    /// Default configuration: 1 Mi-word growable heap, instrumented mode,
    /// path tracking on, log-and-continue.
    pub fn new() -> VmConfig {
        VmConfig::default()
    }

    /// Sets the heap budget in words.
    #[must_use]
    pub fn heap_budget_words(mut self, words: usize) -> VmConfig {
        self.heap_budget = words;
        self
    }

    /// Sets whether the heap may grow when full.
    #[must_use]
    pub fn grow_on_oom(mut self, grow: bool) -> VmConfig {
        self.grow = grow;
        self
    }

    /// Sets the violation reaction.
    #[must_use]
    pub fn reaction(mut self, reaction: Reaction) -> VmConfig {
        self.reaction = reaction;
        self
    }

    /// Sets the collector configuration.
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> VmConfig {
        self.mode = mode;
        self
    }

    /// Enables or disables the path-tracking worklist.
    #[must_use]
    pub fn path_tracking(mut self, on: bool) -> VmConfig {
        self.path_tracking = on;
        self
    }

    /// Enables or disables once-only violation reporting.
    #[must_use]
    pub fn report_once(mut self, on: bool) -> VmConfig {
        self.report_once = on;
        self
    }

    /// Enables the strict owner-lifetime extension.
    #[must_use]
    pub fn strict_owner_lifetime(mut self, on: bool) -> VmConfig {
        self.strict_owner_lifetime = on;
        self
    }

    /// Enables generational collection with a major collection forced
    /// after `major_every` consecutive minors.
    #[must_use]
    pub fn generational(mut self, major_every: usize) -> VmConfig {
        self.generational = Some(major_every.max(1));
        self
    }

    /// Sets the number of tracing workers for major collections
    /// (`0` = auto, one per available core).
    #[must_use]
    pub fn gc_threads(mut self, workers: usize) -> VmConfig {
        self.gc_threads = workers;
        self
    }

    /// Enables or disables GC telemetry recording.
    #[must_use]
    pub fn telemetry(mut self, on: bool) -> VmConfig {
        self.telemetry = on;
        self
    }

    /// Enables or disables the heap census (see [`VmConfig::census`]).
    #[must_use]
    pub fn census(mut self, on: bool) -> VmConfig {
        self.census = on;
        self
    }

    /// Selects the collector algorithm for major collections.
    #[must_use]
    pub fn collector(mut self, kind: CollectorKind) -> VmConfig {
        self.collector = kind;
        self
    }

    /// Selects how minor collections discover old→young references.
    #[must_use]
    pub fn minor_strategy(mut self, strategy: MinorStrategy) -> VmConfig {
        self.minor_strategy = strategy;
        self
    }

    /// Tags this VM as shard `shard` of a fleet (see [`VmConfig::shard`]).
    #[must_use]
    pub fn shard(mut self, shard: u64) -> VmConfig {
        self.shard = Some(shard);
        self
    }

    /// Overrides the reaction for one assertion class (later overrides for
    /// the same class win).
    #[must_use]
    pub fn reaction_for(mut self, class: AssertionClass, reaction: Reaction) -> VmConfig {
        self.reaction_overrides.push((class, reaction));
        self
    }

    /// The effective reaction for an assertion class.
    pub fn effective_reaction(&self, class: AssertionClass) -> Reaction {
        self.reaction_overrides
            .iter()
            .rev()
            .find(|(c, _)| *c == class)
            .map(|(_, r)| *r)
            .unwrap_or(self.reaction)
    }

    /// The resolved tracing-worker count: `gc_threads`, with `0` mapped to
    /// the number of available cores.
    pub fn effective_gc_threads(&self) -> usize {
        match self.gc_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Starts a fluent [`VmConfigBuilder`], the preferred way to assemble
    /// a configuration:
    ///
    /// ```
    /// use gc_assertions::{AssertionClass, Reaction, VmConfig};
    ///
    /// let config = VmConfig::builder()
    ///     .heap_budget(64 * 1024)
    ///     .gc_threads(4)
    ///     .reaction_for(AssertionClass::Lifetime, Reaction::ForceTrue)
    ///     .build();
    /// assert_eq!(config.heap_budget, 64 * 1024);
    /// assert_eq!(config.gc_threads, 4);
    /// ```
    pub fn builder() -> VmConfigBuilder {
        VmConfigBuilder {
            config: VmConfig::default(),
        }
    }
}

/// Fluent builder for [`VmConfig`], obtained from [`VmConfig::builder`].
///
/// Every setter takes and returns the builder by value, so a
/// configuration reads as one chain ending in [`build`](Self::build),
/// which validates the combination before handing back the finished
/// [`VmConfig`].
#[derive(Debug, Clone)]
#[must_use = "call .build() to obtain the VmConfig"]
pub struct VmConfigBuilder {
    config: VmConfig,
}

impl VmConfigBuilder {
    /// Sets the heap budget in words (must be non-zero).
    pub fn heap_budget(mut self, words: usize) -> VmConfigBuilder {
        self.config.heap_budget = words;
        self
    }

    /// Sets whether the heap may grow when full.
    pub fn grow_on_oom(mut self, grow: bool) -> VmConfigBuilder {
        self.config.grow = grow;
        self
    }

    /// Sets the violation reaction.
    pub fn reaction(mut self, reaction: Reaction) -> VmConfigBuilder {
        self.config.reaction = reaction;
        self
    }

    /// Sets the collector configuration (Base vs Instrumented).
    pub fn mode(mut self, mode: Mode) -> VmConfigBuilder {
        self.config.mode = mode;
        self
    }

    /// Enables or disables the path-tracking worklist.
    pub fn path_tracking(mut self, on: bool) -> VmConfigBuilder {
        self.config.path_tracking = on;
        self
    }

    /// Enables or disables once-only violation reporting.
    pub fn report_once(mut self, on: bool) -> VmConfigBuilder {
        self.config.report_once = on;
        self
    }

    /// Enables the strict owner-lifetime extension.
    pub fn strict_owner_lifetime(mut self, on: bool) -> VmConfigBuilder {
        self.config.strict_owner_lifetime = on;
        self
    }

    /// Enables generational collection with a major collection forced
    /// after `major_every` consecutive minors (clamped to at least 1).
    pub fn generational(mut self, major_every: usize) -> VmConfigBuilder {
        self.config.generational = Some(major_every.max(1));
        self
    }

    /// Sets the number of tracing workers for major collections
    /// (`0` = auto, one per available core).
    pub fn gc_threads(mut self, workers: usize) -> VmConfigBuilder {
        self.config.gc_threads = workers;
        self
    }

    /// Enables or disables GC telemetry recording (see
    /// [`VmConfig::telemetry`]).
    pub fn telemetry(mut self, on: bool) -> VmConfigBuilder {
        self.config.telemetry = on;
        self
    }

    /// Enables or disables the heap census (see [`VmConfig::census`]).
    pub fn census(mut self, on: bool) -> VmConfigBuilder {
        self.config.census = on;
        self
    }

    /// Selects the collector algorithm for major collections (see
    /// [`CollectorKind`]).
    pub fn collector(mut self, kind: CollectorKind) -> VmConfigBuilder {
        self.config.collector = kind;
        self
    }

    /// Selects how minor collections discover old→young references (see
    /// [`MinorStrategy`]).
    pub fn minor_strategy(mut self, strategy: MinorStrategy) -> VmConfigBuilder {
        self.config.minor_strategy = strategy;
        self
    }

    /// Tags this VM as shard `shard` of a fleet (see [`VmConfig::shard`]).
    pub fn shard(mut self, shard: u64) -> VmConfigBuilder {
        self.config.shard = Some(shard);
        self
    }

    /// Overrides the reaction for one assertion class (later overrides
    /// for the same class win).
    pub fn reaction_for(mut self, class: AssertionClass, reaction: Reaction) -> VmConfigBuilder {
        self.config.reaction_overrides.push((class, reaction));
        self
    }

    /// Validates the assembled configuration and returns it.
    ///
    /// # Panics
    ///
    /// Panics if the heap budget is zero, or if the copying collector is
    /// combined with generational collection (copying is full-heap) or
    /// with `gc_threads > 1` (the Cheney scan is sequential).
    pub fn build(self) -> VmConfig {
        assert!(
            self.config.heap_budget > 0,
            "VmConfig: heap budget must be non-zero"
        );
        if self.config.collector == CollectorKind::Copying {
            assert!(
                self.config.generational.is_none(),
                "VmConfig: the copying collector is full-heap; it cannot be generational"
            );
            assert!(
                self.config.gc_threads <= 1,
                "VmConfig: the copying collector's Cheney scan is sequential \
                 (gc_threads must be 0 or 1)"
            );
        }
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = VmConfig::new();
        assert_eq!(c.reaction, Reaction::Log);
        assert_eq!(c.mode, Mode::Instrumented);
        assert!(c.path_tracking);
        assert!(c.report_once);
        assert!(!c.strict_owner_lifetime);
        assert!(c.grow);
        assert!(!c.telemetry, "telemetry is observably dark by default");
        assert!(!c.census, "census is observably dark by default");
        assert_eq!(c.shard, None, "standalone VMs carry no shard tag");
    }

    #[test]
    fn shard_tag_round_trips_through_both_builders() {
        assert_eq!(VmConfig::new().shard(3).shard, Some(3));
        assert_eq!(VmConfig::builder().shard(7).build().shard, Some(7));
    }

    #[test]
    fn builder_chains() {
        let c = VmConfig::new()
            .heap_budget_words(123)
            .grow_on_oom(false)
            .reaction(Reaction::Halt)
            .mode(Mode::Base)
            .path_tracking(false)
            .report_once(false)
            .strict_owner_lifetime(true);
        assert_eq!(c.heap_budget, 123);
        assert!(!c.grow);
        assert_eq!(c.reaction, Reaction::Halt);
        assert_eq!(c.mode, Mode::Base);
        assert!(!c.path_tracking);
        assert!(!c.report_once);
        assert!(c.strict_owner_lifetime);
    }

    #[test]
    fn fluent_builder_equals_chained_setters() {
        let built = VmConfig::builder()
            .heap_budget(123)
            .grow_on_oom(false)
            .reaction(Reaction::Halt)
            .mode(Mode::Base)
            .path_tracking(false)
            .report_once(false)
            .strict_owner_lifetime(true)
            .generational(0)
            .gc_threads(4)
            .telemetry(true)
            .census(true)
            .reaction_for(AssertionClass::Volume, Reaction::Log)
            .build();
        assert_eq!(built.heap_budget, 123);
        assert!(!built.grow);
        assert_eq!(built.reaction, Reaction::Halt);
        assert_eq!(built.mode, Mode::Base);
        assert!(!built.path_tracking);
        assert!(!built.report_once);
        assert!(built.strict_owner_lifetime);
        assert_eq!(built.generational, Some(1)); // clamped
        assert_eq!(built.gc_threads, 4);
        assert!(built.telemetry);
        assert!(built.census);
        assert_eq!(
            built.effective_reaction(AssertionClass::Volume),
            Reaction::Log
        );
    }

    #[test]
    #[should_panic(expected = "heap budget must be non-zero")]
    fn builder_rejects_zero_budget() {
        let _ = VmConfig::builder().heap_budget(0).build();
    }

    #[test]
    fn collector_defaults_to_mark_sweep() {
        assert_eq!(VmConfig::new().collector, CollectorKind::MarkSweep);
        let c = VmConfig::builder()
            .collector(CollectorKind::Copying)
            .build();
        assert_eq!(c.collector, CollectorKind::Copying);
        let c = VmConfig::new().collector(CollectorKind::Copying);
        assert_eq!(c.collector, CollectorKind::Copying);
    }

    #[test]
    #[should_panic(expected = "full-heap")]
    fn builder_rejects_copying_generational() {
        let _ = VmConfig::builder()
            .collector(CollectorKind::Copying)
            .generational(4)
            .build();
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn builder_rejects_copying_parallel() {
        let _ = VmConfig::builder()
            .collector(CollectorKind::Copying)
            .gc_threads(4)
            .build();
    }

    #[test]
    fn gc_threads_zero_means_auto() {
        let c = VmConfig::builder().gc_threads(0).build();
        assert!(c.effective_gc_threads() >= 1);
        assert_eq!(VmConfig::new().effective_gc_threads(), 1);
    }
}
