//! The VM façade: heap + collector + assertion engine + mutators.

use gca_collector::{CensusSink, Collector, CopyingCollector, GcStats, NoHooks};
use gca_heap::{
    ClassId, Flags, Heap, HeapError, HeapStats, ObjRef, SpaceKind, TypeRegistry, HEADER_WORDS,
};

use crate::census::{AllocSite, CensusState};
use crate::config::{CollectorKind, MinorStrategy, Mode, Reaction, VmConfig};
use crate::engine::AssertionEngine;
use crate::error::VmError;
use crate::mutator::{Mutator, MutatorId, Region};
use crate::report::GcReport;

/// Cumulative counts of assertion API calls, matching the quantities the
/// paper reports ("695 calls to assert-dead and 15,553 calls to
/// assert-ownedBy", §3.1.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssertionCallCounts {
    /// `assert_dead` calls (direct only; region objects are counted
    /// separately).
    pub dead: u64,
    /// `start_region` calls.
    pub regions_started: u64,
    /// Objects queued by active regions and asserted dead at
    /// `assert_alldead`.
    pub region_objects: u64,
    /// `assert_unshared` calls.
    pub unshared: u64,
    /// `assert_instances` calls.
    pub instances: u64,
    /// `assert_owned_by` calls.
    pub owned_by: u64,
}

/// A managed-heap virtual machine with GC assertions.
///
/// `Vm` is the programmer-facing interface of the reproduction: it owns
/// the [`Heap`], the mark-sweep [`Collector`], the [`AssertionEngine`],
/// and the simulated mutator threads, and implements the paper's
/// allocation-triggered collection policy (fixed heap budget; collect when
/// an allocation would exceed it).
///
/// # Roots
///
/// The VM cannot see the mutator's Rust locals, so reachability is defined
/// by *registered* roots: per-mutator shadow stacks ([`Vm::add_root`],
/// scoped by [`Vm::push_frame`]/[`Vm::pop_frame`]) and global roots
/// ([`Vm::add_global`]). An allocated object that is not reachable from a
/// root may be reclaimed by any later collection — root it before the next
/// allocation if it must survive.
///
/// # Example
///
/// ```
/// use gc_assertions::{Vm, VmConfig};
///
/// # fn main() -> Result<(), gc_assertions::VmError> {
/// let mut vm = Vm::new(VmConfig::builder().build());
/// let node = vm.register_class("Node", &["next"]);
/// let m = vm.main();
///
/// let head = vm.alloc(m, node, 1, 0)?;
/// vm.add_root(m, head)?;
/// let tail = vm.alloc(m, node, 1, 0)?;
/// vm.set_field(head, 0, tail)?;
///
/// // Drop the list and assert the tail dies.
/// vm.assert_dead(tail)?;
/// vm.set_field(head, 0, gc_assertions::ObjRef::NULL)?;
/// let report = vm.collect()?;
/// assert!(report.is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Vm {
    pub(crate) heap: Heap,
    collector: Collector,
    /// The semispace copying backend, present only when
    /// [`VmConfig::collector`] is [`CollectorKind::Copying`]. The
    /// mark-sweep `collector` above still accumulates the cumulative
    /// [`GcStats`] either way, so reporting is backend-agnostic.
    copying: Option<Box<CopyingCollector>>,
    pub(crate) engine: AssertionEngine,
    config: VmConfig,
    budget: usize,
    mutators: Vec<Mutator>,
    globals: Vec<ObjRef>,
    halted: bool,
    pub(crate) calls: AssertionCallCounts,
    collections_requested: u64,
    violation_log: Vec<crate::violation::Violation>,
    totals: crate::report::CheckCounters,
    handler: Handler,
    /// Generational mode: objects allocated since the last collection.
    young: Vec<ObjRef>,
    /// Generational mode: write-barrier log of old objects that may
    /// reference young objects.
    remembered: Vec<ObjRef>,
    minors_since_major: usize,
    minor_collections: u64,
    minor_gc_time: std::time::Duration,
    /// Telemetry recorder, present only when [`VmConfig::telemetry`] is
    /// set (boxed to keep the disabled VM small). Records are derived
    /// from each cycle's statistics *after* the collection completes —
    /// pure observation, never participation.
    telemetry: Option<Box<gca_telemetry::GcTelemetry>>,
    /// Call-count snapshot at the previous collection, for attributing
    /// registrations to the cycle in which they were checked.
    last_calls: AssertionCallCounts,
    /// Heap-census state (site table + drift recorder), present only when
    /// [`VmConfig::census`] is set. Like telemetry, the census observes
    /// the mark but never participates: live sets, violations and reports
    /// are bit-identical with it on or off.
    census: Option<Box<CensusState>>,
}

/// Boxed callback type for [`Vm::set_violation_handler`].
type HandlerFn = Box<dyn FnMut(&crate::violation::Violation, &TypeRegistry) + Send>;

/// The programmatic violation handler (§2.6 future work: "a programmatic
/// interface that would allow the programmer to test the conditions
/// directly and take action in an application-specific manner").
#[derive(Default)]
struct Handler(Option<HandlerFn>);

impl std::fmt::Debug for Handler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            Some(_) => f.write_str("Handler(set)"),
            None => f.write_str("Handler(none)"),
        }
    }
}

impl Vm {
    /// Creates a VM with one mutator (the main thread, [`Vm::main`]).
    ///
    /// # Panics
    ///
    /// Panics if `config` combines the copying collector with generational
    /// collection or `gc_threads > 1` — [`VmConfig::builder`] rejects
    /// these at build time; hand-assembled configs are checked here.
    pub fn new(config: VmConfig) -> Vm {
        let budget = config.heap_budget;
        let telemetry = config
            .telemetry
            .then(|| Box::new(gca_telemetry::GcTelemetry::new()));
        let census = config.census.then(|| Box::new(CensusState::new()));
        let copying = (config.collector == CollectorKind::Copying).then(|| {
            assert!(
                config.generational.is_none(),
                "Vm: the copying collector is full-heap; it cannot be generational"
            );
            assert!(
                config.gc_threads <= 1,
                "Vm: the copying collector's Cheney scan is sequential"
            );
            Box::new(CopyingCollector::new())
        });
        // The collector kind alone determines the space layout: the
        // copying backend needs semispace address bookkeeping, everything
        // else runs on the non-moving paged space.
        let heap = Heap::with_space(match config.collector {
            CollectorKind::Copying => SpaceKind::Semispace,
            _ => SpaceKind::Paged,
        });
        Vm {
            heap,
            collector: Collector::new(),
            copying,
            engine: AssertionEngine::new(&config),
            config,
            budget,
            mutators: vec![Mutator::new()],
            globals: Vec::new(),
            halted: false,
            calls: AssertionCallCounts::default(),
            collections_requested: 0,
            violation_log: Vec::new(),
            totals: crate::report::CheckCounters::default(),
            handler: Handler(None),
            young: Vec::new(),
            remembered: Vec::new(),
            minors_since_major: 0,
            minor_collections: 0,
            minor_gc_time: std::time::Duration::ZERO,
            telemetry,
            last_calls: AssertionCallCounts::default(),
            census,
        }
    }

    /// Installs a programmatic violation handler, called once per
    /// violation at each collection (in addition to the configured
    /// [`Reaction`]). Replaces any previous handler.
    pub fn set_violation_handler<F>(&mut self, handler: F)
    where
        F: FnMut(&crate::violation::Violation, &TypeRegistry) + Send + 'static,
    {
        self.handler = Handler(Some(Box::new(handler)));
    }

    /// Removes the programmatic violation handler.
    pub fn clear_violation_handler(&mut self) {
        self.handler = Handler(None);
    }

    /// The main mutator, created with the VM.
    pub fn main(&self) -> MutatorId {
        MutatorId(0)
    }

    /// Spawns an additional simulated mutator thread.
    pub fn spawn_mutator(&mut self) -> MutatorId {
        self.mutators.push(Mutator::new());
        MutatorId((self.mutators.len() - 1) as u32)
    }

    /// Number of mutators.
    pub fn mutator_count(&self) -> usize {
        self.mutators.len()
    }

    fn mutator(&self, m: MutatorId) -> Result<&Mutator, VmError> {
        self.mutators
            .get(m.0 as usize)
            .ok_or(VmError::NoSuchMutator(m))
    }

    pub(crate) fn mutator_mut(&mut self, m: MutatorId) -> Result<&mut Mutator, VmError> {
        self.mutators
            .get_mut(m.0 as usize)
            .ok_or(VmError::NoSuchMutator(m))
    }

    pub(crate) fn check_running(&self) -> Result<(), VmError> {
        if self.halted {
            Err(VmError::Halted)
        } else {
            Ok(())
        }
    }

    pub(crate) fn check_instrumented(&self) -> Result<(), VmError> {
        match self.config.mode {
            Mode::Instrumented => Ok(()),
            Mode::Base => Err(VmError::BaseMode),
        }
    }

    // ------------------------------------------------------------------
    // Classes and fields
    // ------------------------------------------------------------------

    /// Registers a class (idempotent by name).
    pub fn register_class(&mut self, name: &str, field_names: &[&str]) -> ClassId {
        self.heap.register_class(name, field_names)
    }

    /// The type registry (for rendering reports).
    pub fn registry(&self) -> &TypeRegistry {
        self.heap.registry()
    }

    /// Reads a reference field.
    ///
    /// # Errors
    ///
    /// Reference-validity or field-bounds errors.
    pub fn field(&self, obj: ObjRef, field: usize) -> Result<ObjRef, VmError> {
        Ok(self.heap.ref_field(obj, field)?)
    }

    /// Writes a reference field, returning the old value.
    ///
    /// # Errors
    ///
    /// Reference-validity or field-bounds errors, or [`VmError::Halted`].
    pub fn set_field(
        &mut self,
        obj: ObjRef,
        field: usize,
        value: ObjRef,
    ) -> Result<ObjRef, VmError> {
        self.check_running()?;
        let old = self.heap.set_ref_field(obj, field, value)?;
        // Generational write barrier. Card-marking minors need no work
        // here: `Heap::set_ref_field` already dirtied the source page's
        // card. The remembered-set strategy additionally records old
        // objects that acquire references to young objects (deduplicated
        // by the REMEMBERED header bit).
        if self.config.generational.is_some()
            && self.config.minor_strategy == MinorStrategy::RememberedSet
            && value.is_some()
        {
            let src = self.heap.flags_of(obj)?;
            if src.contains(Flags::OLD) && !src.contains(Flags::REMEMBERED) {
                let dst_old = self.heap.has_flag(value, Flags::OLD)?;
                if !dst_old {
                    self.heap.set_flag(obj, Flags::REMEMBERED)?;
                    self.remembered.push(obj);
                }
            }
        }
        Ok(old)
    }

    /// Reads a data (primitive) word.
    ///
    /// # Errors
    ///
    /// Reference-validity or bounds errors.
    pub fn data_word(&self, obj: ObjRef, index: usize) -> Result<u64, VmError> {
        Ok(self.heap.data_word(obj, index)?)
    }

    /// Writes a data (primitive) word.
    ///
    /// # Errors
    ///
    /// Reference-validity or bounds errors, or [`VmError::Halted`].
    pub fn set_data_word(&mut self, obj: ObjRef, index: usize, value: u64) -> Result<(), VmError> {
        self.check_running()?;
        Ok(self.heap.set_data_word(obj, index, value)?)
    }

    /// The class of an object.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn class_of(&self, obj: ObjRef) -> Result<ClassId, VmError> {
        Ok(self.heap.class_of(obj)?)
    }

    /// Whether `obj` still names a live object.
    pub fn is_live(&self, obj: ObjRef) -> bool {
        self.heap.is_valid(obj)
    }

    // ------------------------------------------------------------------
    // Allocation and collection
    // ------------------------------------------------------------------

    /// Allocates an object on behalf of mutator `m`, collecting first if
    /// the allocation would exceed the heap budget. If the mutator has an
    /// active region, the object is appended to the region queue (§2.3.2).
    ///
    /// The returned object is **unrooted**; see the type-level discussion.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] (wrapped) if even after collection the
    /// budget cannot fit the object and growth is disabled, or
    /// [`VmError::Halted`].
    pub fn alloc(
        &mut self,
        m: MutatorId,
        class: ClassId,
        nrefs: usize,
        data_words: usize,
    ) -> Result<ObjRef, VmError> {
        self.check_running()?;
        self.mutator(m)?;
        let size = HEADER_WORDS + nrefs + data_words;
        if self.heap.occupied_words() + size > self.budget {
            self.collect_auto()?;
            self.check_running()?;
            if self.heap.occupied_words() + size > self.budget {
                if self.config.grow {
                    self.budget = (self.budget * 2).max(self.heap.occupied_words() + size);
                } else {
                    return Err(VmError::Heap(HeapError::OutOfMemory {
                        requested: size,
                        budget: self.budget,
                        occupied: self.heap.occupied_words(),
                    }));
                }
            }
        }
        let r = self.heap.alloc(class, nrefs, data_words)?;
        if let Some(census) = self.census.as_deref_mut() {
            census.note_alloc(r.index());
        }
        if self.config.generational.is_some() {
            self.young.push(r);
        }
        if let Some(region) = &mut self.mutators[m.0 as usize].region {
            region.queue.push(r);
        }
        Ok(r)
    }

    /// Allocation-triggered collection: a minor in generational mode
    /// (with a major forced every `n` minors, or when the nursery sweep
    /// cannot relieve the pressure), a major otherwise.
    fn collect_auto(&mut self) -> Result<(), VmError> {
        match self.config.generational {
            None => {
                self.collect()?;
            }
            Some(major_every) => {
                if self.minors_since_major >= major_every {
                    self.collect()?;
                } else {
                    self.collect_minor()?;
                    if self.heap.occupied_words() * 4 > self.budget * 3 {
                        // The nursery sweep left the heap >75% full: the
                        // garbage is in the old generation.
                        self.collect()?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Allocates and immediately roots the object in `m`'s current frame.
    ///
    /// # Errors
    ///
    /// As [`Vm::alloc`].
    pub fn alloc_rooted(
        &mut self,
        m: MutatorId,
        class: ClassId,
        nrefs: usize,
        data_words: usize,
    ) -> Result<ObjRef, VmError> {
        let r = self.alloc(m, class, nrefs, data_words)?;
        self.add_root(m, r)?;
        Ok(r)
    }

    /// Runs a collection now, returning the report. Assertion violations
    /// are handled according to the configured [`Reaction`].
    ///
    /// # Errors
    ///
    /// Heap errors from tracing (collector invariant violations).
    /// A `Halt` reaction does **not** error here — the report's `halted`
    /// flag is set and *subsequent* mutator work fails with
    /// [`VmError::Halted`].
    pub fn collect(&mut self) -> Result<GcReport, VmError> {
        self.collections_requested += 1;
        let roots = self.gather_roots();
        let workers = self.config.effective_gc_threads();
        let want_census = self.census.is_some();
        // Sequential arms report the whole mark span as worker 0's busy
        // time; parallel arms return the per-worker profile. The copying
        // backend dispatches on collector kind before the (mode, workers)
        // match — its Cheney scan is always sequential.
        let (cycle, worker_mark, census_sink) = if self.config.collector == CollectorKind::Copying {
            let copying = self
                .copying
                .as_mut()
                .expect("copying backend initialized in Vm::new");
            let out = match self.config.mode {
                Mode::Base if want_census => {
                    let (cycle, sink) = copying.collect_census(
                        &mut self.heap,
                        &roots,
                        &mut NoHooks,
                        CensusSink::new(),
                    )?;
                    (cycle, vec![cycle.mark], Some(sink))
                }
                Mode::Base => {
                    let cycle = copying.collect(&mut self.heap, &roots, &mut NoHooks)?;
                    (cycle, vec![cycle.mark], None)
                }
                Mode::Instrumented if want_census => {
                    let (cycle, sink) = copying.collect_census(
                        &mut self.heap,
                        &roots,
                        &mut self.engine,
                        CensusSink::new(),
                    )?;
                    (cycle, vec![cycle.mark], Some(sink))
                }
                Mode::Instrumented => {
                    let cycle = copying.collect(&mut self.heap, &roots, &mut self.engine)?;
                    (cycle, vec![cycle.mark], None)
                }
            };
            // Keep the backend-agnostic cumulative stats in one place.
            self.collector.record_cycle(&out.0);
            out
        } else {
            match (self.config.mode, workers) {
                (Mode::Base, 0 | 1) if want_census => {
                    let (cycle, sink) = self.collector.collect_census(
                        &mut self.heap,
                        &roots,
                        &mut NoHooks,
                        CensusSink::new(),
                    )?;
                    (cycle, vec![cycle.mark], Some(sink))
                }
                (Mode::Base, 0 | 1) => {
                    let cycle = self
                        .collector
                        .collect(&mut self.heap, &roots, &mut NoHooks)?;
                    (cycle, vec![cycle.mark], None)
                }
                (Mode::Instrumented, 0 | 1) if want_census => {
                    let (cycle, sink) = self.collector.collect_census(
                        &mut self.heap,
                        &roots,
                        &mut self.engine,
                        CensusSink::new(),
                    )?;
                    (cycle, vec![cycle.mark], Some(sink))
                }
                (Mode::Instrumented, 0 | 1) => {
                    let cycle = self
                        .collector
                        .collect(&mut self.heap, &roots, &mut self.engine)?;
                    (cycle, vec![cycle.mark], None)
                }
                // Parallel mark phase: the Collector only contributed the
                // mark/sweep driver, so run the parallel driver directly and
                // fold the cycle into the collector's cumulative stats.
                (Mode::Base, n) => {
                    let par = crate::par_engine::collect_parallel_base(
                        &mut self.heap,
                        &roots,
                        n,
                        want_census,
                    )?;
                    self.collector.record_cycle(&par.cycle);
                    (par.cycle, par.worker_mark, par.census)
                }
                (Mode::Instrumented, n) => {
                    let par = crate::par_engine::collect_parallel(
                        &mut self.engine,
                        &mut self.heap,
                        &roots,
                        n,
                        want_census,
                    )?;
                    self.collector.record_cycle(&par.cycle);
                    (par.cycle, par.worker_mark, par.census)
                }
            }
        };
        // Resolve the census right after the sweep, while every marked
        // slot still holds its (surviving) object.
        let census_data = match (self.census.as_deref_mut(), census_sink) {
            (Some(state), Some(sink)) => {
                let data = state.build_data(&self.heap, &sink);
                state.recorder.record_major(data.clone());
                Some(data)
            }
            _ => None,
        };
        // Generational bookkeeping: a major collection promotes every
        // survivor and resets the nursery and the remembered set.
        if self.config.generational.is_some() {
            for i in 0..self.young.len() {
                let r = self.young[i];
                if self.heap.is_valid(r) {
                    self.heap.set_flag(r, Flags::OLD)?;
                }
            }
            self.young.clear();
            for i in 0..self.remembered.len() {
                let r = self.remembered[i];
                if self.heap.is_valid(r) {
                    self.heap.clear_flag(r, Flags::REMEMBERED)?;
                }
            }
            self.remembered.clear();
            self.minors_since_major = 0;
            // Every old->young edge the cards were tracking is now
            // old->old (all survivors promoted); start a clean epoch.
            self.heap.clear_cards();
            debug_assert_eq!(
                self.heap.cards().dirty_count(),
                0,
                "card-clear postcondition: a major must start a clean card epoch"
            );
        }

        // Purge region queues of entries that died during the collection
        // (their generation check now fails).
        for mutator in &mut self.mutators {
            if let Some(region) = &mut mutator.region {
                let heap = &self.heap;
                region.queue.retain(|&r| heap.is_valid(r));
            }
        }
        let (violations, counters) = self.engine.drain();
        // Report-once invariant (debug builds): with the `REPORTED` bit
        // gating, one collection can report a given object at most once
        // across the bit-gated kinds (dead-reachable / shared). A
        // duplicate means a checking phase bypassed `should_report`.
        #[cfg(debug_assertions)]
        if self.config.report_once {
            let bit_gated_object = |v: &crate::violation::Violation| match &v.kind {
                crate::violation::ViolationKind::DeadReachable { object, .. }
                | crate::violation::ViolationKind::Shared { object, .. } => Some(object.index()),
                _ => None,
            };
            let mut seen = std::collections::HashSet::new();
            for obj in violations.iter().filter_map(bit_gated_object) {
                assert!(
                    seen.insert(obj),
                    "report-once invariant: object slot {obj} reported twice in one cycle"
                );
            }
        }
        // Per-class reaction policy (§2.6 future work): halt if any
        // violation's class is configured to halt; notify the
        // programmatic handler about every violation.
        let halted = violations
            .iter()
            .any(|v| self.config.effective_reaction(v.class()) == Reaction::Halt);
        if halted {
            self.halted = true;
        }
        // Halt-latch invariant: the latch is monotone (a halted VM never
        // un-halts) and a Halt-reaction violation always engages it.
        debug_assert!(
            self.halted == (halted || self.halted),
            "halt latch must be monotone"
        );
        debug_assert!(
            !halted || self.halted,
            "a Halt-reaction violation must latch the VM halted"
        );
        if let Some(handler) = self.handler.0.as_mut() {
            for v in &violations {
                handler(v, self.heap.registry());
            }
        }
        // Keep a cumulative log so violations from collections triggered
        // implicitly inside `alloc` are not lost.
        self.violation_log.extend(violations.iter().cloned());
        self.totals.owners_scanned += counters.owners_scanned;
        self.totals.ownees_checked += counters.ownees_checked;
        self.totals.deferred_ownees_processed += counters.deferred_ownees_processed;
        self.totals.dead_bits_seen += counters.dead_bits_seen;
        self.totals.tracked_instances_counted += counters.tracked_instances_counted;
        self.totals.unshared_bits_seen += counters.unshared_bits_seen;
        if self.telemetry.is_some() {
            // The JSONL record carries the full class histogram but only
            // the top allocation sites by bytes, keeping lines bounded.
            let census_record = census_data.map(|d| gca_telemetry::CensusData {
                sites: d.top_sites_by_bytes(10).into_iter().cloned().collect(),
                classes: d.classes,
            });
            self.record_major_telemetry(
                &cycle,
                worker_mark,
                &counters,
                violations.len() as u64,
                census_record,
            );
        }
        self.last_calls = self.calls;
        Ok(GcReport {
            cycle,
            violations,
            counters,
            halted,
        })
    }

    /// Converts one major cycle's statistics into a telemetry record,
    /// attributing the checking work to assertion kinds:
    ///
    /// * `registered` — assertion API calls since the previous collection
    ///   (the delta of [`Vm::assertion_calls`]), per kind.
    /// * `header_bit_checks` — `DEAD` / `UNSHARED` bit sightings during
    ///   the trace.
    /// * `counter_bumps` — tracked-class instance counting.
    /// * `phase_work` — ownership-phase work items (owners scanned, ownees
    ///   checked, deferred ownees) and regions opened.
    /// * `extra_edges_traced` — edges traced by the pre-root (ownership)
    ///   phase that a plain collection would not have traced.
    fn record_major_telemetry(
        &mut self,
        cycle: &gca_collector::CycleStats,
        worker_mark: Vec<std::time::Duration>,
        counters: &crate::report::CheckCounters,
        violations: u64,
        census: Option<gca_telemetry::CensusData>,
    ) {
        let delta = |now: u64, then: u64| now.saturating_sub(then);
        let mut overhead = gca_telemetry::AssertionOverhead::default();
        overhead.dead.registered = delta(self.calls.dead, self.last_calls.dead);
        overhead.dead.header_bit_checks = counters.dead_bits_seen;
        overhead.region.registered =
            delta(self.calls.region_objects, self.last_calls.region_objects);
        overhead.region.phase_work =
            delta(self.calls.regions_started, self.last_calls.regions_started);
        overhead.instances.registered = delta(self.calls.instances, self.last_calls.instances);
        overhead.instances.counter_bumps = counters.tracked_instances_counted;
        overhead.unshared.registered = delta(self.calls.unshared, self.last_calls.unshared);
        overhead.unshared.header_bit_checks = counters.unshared_bits_seen;
        overhead.owned_by.registered = delta(self.calls.owned_by, self.last_calls.owned_by);
        overhead.owned_by.phase_work =
            counters.owners_scanned + counters.ownees_checked + counters.deferred_ownees_processed;
        overhead.owned_by.extra_edges_traced = cycle.pre_root_edges;

        let t = self.telemetry.as_deref_mut().expect("checked by caller");
        t.record(gca_telemetry::CycleRecord {
            seq: 0, // assigned by record()
            kind: gca_telemetry::CycleKind::Major,
            total_ns: cycle.total.as_nanos() as u64,
            pre_root_ns: cycle.pre_root.as_nanos() as u64,
            mark_ns: cycle.mark.as_nanos() as u64,
            sweep_ns: cycle.sweep.as_nanos() as u64,
            objects_marked: cycle.objects_marked,
            edges_traced: cycle.edges_traced,
            pre_root_edges: cycle.pre_root_edges,
            objects_swept: cycle.objects_swept,
            words_swept: cycle.words_swept,
            promoted: 0,
            violations,
            worker_mark_ns: worker_mark
                .into_iter()
                .map(|d| d.as_nanos() as u64)
                .collect(),
            overhead,
            census,
        });
    }

    /// Runs a minor (nursery-only) collection now. Only available in
    /// generational mode; **no assertions are checked** — the paper's
    /// §2.2 trade-off. Ownership metadata for reclaimed objects is still
    /// retired, and the strict-owner-lifetime extension may report.
    ///
    /// # Errors
    ///
    /// [`VmError::BaseMode`]-like misuse is not possible (minor works in
    /// both modes); heap errors propagate; [`VmError::Halted`] if halted.
    pub fn collect_minor(&mut self) -> Result<gca_collector::MinorStats, VmError> {
        self.check_running()?;
        let roots = self.gather_roots();
        let young = std::mem::take(&mut self.young);
        // Sources of hidden old->young edges, by strategy. The card
        // harvest is a superset of the remembered set (every dirty page's
        // live old objects, in index order) but the extra entries only
        // reference old children, which the minor trace skips — so both
        // strategies reclaim and promote exactly the same objects.
        let remembered = match self.config.minor_strategy {
            MinorStrategy::Cards => self.heap.remembered_from_cards(),
            MinorStrategy::RememberedSet => std::mem::take(&mut self.remembered),
        };
        let mut tracer = gca_collector::Tracer::new();
        let stats = match self.config.mode {
            Mode::Base => gca_collector::collect_minor(
                &mut tracer,
                &mut self.heap,
                &roots,
                &remembered,
                &young,
                &mut NoHooks,
            )?,
            Mode::Instrumented => {
                let stats = gca_collector::collect_minor(
                    &mut tracer,
                    &mut self.heap,
                    &roots,
                    &remembered,
                    &young,
                    &mut self.engine,
                )?;
                self.engine.after_minor(&mut self.heap);
                let (violations, _) = self.engine.drain();
                self.violation_log.extend(violations);
                stats
            }
        };
        self.minors_since_major += 1;
        self.minor_collections += 1;
        self.minor_gc_time += stats.total;
        // The minor promoted every young survivor, so each tracked
        // old->young edge is now old->old; the dirty cards are spent.
        self.heap.clear_cards();
        debug_assert_eq!(
            self.heap.cards().dirty_count(),
            0,
            "card-clear postcondition: a minor must spend every dirty card"
        );
        // Minor census: the still-valid entries of the taken young list
        // are exactly the nursery survivors the sweep promoted. Minors
        // are recorded beside majors but never feed the drift windows
        // (they see only the nursery, so their histograms are not
        // comparable cycle to cycle).
        let mut minor_census = None;
        if let Some(state) = self.census.as_deref_mut() {
            let data = state.build_minor_data(&self.heap, &young);
            state.recorder.record_minor(data.clone());
            minor_census = Some(data);
        }
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.record(gca_telemetry::CycleRecord {
                kind: gca_telemetry::CycleKind::Minor,
                total_ns: stats.total.as_nanos() as u64,
                objects_marked: stats.objects_marked,
                edges_traced: stats.edges_traced,
                objects_swept: stats.objects_swept,
                words_swept: stats.words_swept,
                promoted: stats.promoted,
                census: minor_census.map(|d| gca_telemetry::CensusData {
                    sites: d.top_sites_by_bytes(10).into_iter().cloned().collect(),
                    classes: d.classes,
                }),
                ..Default::default()
            });
        }
        for mutator in &mut self.mutators {
            if let Some(region) = &mut mutator.region {
                let heap = &self.heap;
                region.queue.retain(|&r| heap.is_valid(r));
            }
        }
        Ok(stats)
    }

    /// Number of minor collections performed (generational mode).
    pub fn minor_collections(&self) -> u64 {
        self.minor_collections
    }

    /// A snapshot of the GC telemetry recorded so far: per-cycle phase
    /// spans, per-worker mark timings, per-assertion-kind overhead
    /// attribution and pause histograms.
    ///
    /// When [`VmConfig::telemetry`] is off this returns the *disabled*
    /// default snapshot (`enabled() == false`, everything empty), so
    /// callers never need to branch on the knob.
    pub fn telemetry(&self) -> gca_telemetry::GcTelemetry {
        match &self.telemetry {
            Some(t) => (**t).clone(),
            None => gca_telemetry::GcTelemetry::default(),
        }
    }

    /// A snapshot of the heap census recorded so far: per-class and
    /// per-allocation-site live histograms for every cycle, the drift
    /// events flagged by the rolling-window detector, suggested
    /// `assert-instances` limits, and `heapdiff` cycle comparisons.
    ///
    /// When [`VmConfig::census`] is off this returns the *disabled*
    /// default snapshot (`enabled() == false`, everything empty), so
    /// callers never need to branch on the knob.
    pub fn census(&self) -> gca_telemetry::HeapCensus {
        match &self.census {
            Some(state) => state.recorder.clone(),
            None => gca_telemetry::HeapCensus::default(),
        }
    }

    /// Interns an allocation-site label for [`Vm::set_alloc_site`]. With
    /// the census off this is a no-op returning
    /// [`AllocSite::UNATTRIBUTED`], so call sites need no feature branch.
    pub fn alloc_site(&mut self, name: &str) -> AllocSite {
        match self.census.as_deref_mut() {
            Some(state) => state.intern(name),
            None => AllocSite::UNATTRIBUTED,
        }
    }

    /// Sets the allocation site attributed to subsequent [`Vm::alloc`] /
    /// [`Vm::alloc_rooted`] calls, returning the previous site so callers
    /// can scope-restore. A no-op returning [`AllocSite::UNATTRIBUTED`]
    /// when the census is off.
    pub fn set_alloc_site(&mut self, site: AllocSite) -> AllocSite {
        match self.census.as_deref_mut() {
            Some(state) => state.set_current(site),
            None => AllocSite::UNATTRIBUTED,
        }
    }

    /// Total wall time spent in minor collections.
    pub fn minor_gc_time(&self) -> std::time::Duration {
        self.minor_gc_time
    }

    pub(crate) fn gather_roots(&self) -> Vec<ObjRef> {
        let mut roots: Vec<ObjRef> = Vec::with_capacity(
            self.globals.len() + self.mutators.iter().map(|m| m.roots.len()).sum::<usize>(),
        );
        roots.extend_from_slice(&self.globals);
        for m in &self.mutators {
            roots.extend_from_slice(&m.roots);
        }
        roots
    }

    // ------------------------------------------------------------------
    // Roots
    // ------------------------------------------------------------------

    /// Pushes a new frame on `m`'s shadow stack.
    ///
    /// # Errors
    ///
    /// [`VmError::NoSuchMutator`].
    pub fn push_frame(&mut self, m: MutatorId) -> Result<(), VmError> {
        let len = self.mutator(m)?.roots.len();
        self.mutator_mut(m)?.frames.push(len);
        Ok(())
    }

    /// Pops `m`'s top frame, dropping the roots registered in it.
    ///
    /// # Errors
    ///
    /// [`VmError::NoFrame`] if only the base frame remains.
    pub fn pop_frame(&mut self, m: MutatorId) -> Result<(), VmError> {
        let mu = self.mutator_mut(m)?;
        if mu.frames.len() <= 1 {
            return Err(VmError::NoFrame(m));
        }
        let base = mu.frames.pop().expect("checked length");
        mu.roots.truncate(base);
        Ok(())
    }

    /// Registers `r` as a root in `m`'s current frame, returning its slot
    /// (valid until the frame is popped) for use with [`Vm::set_root`].
    ///
    /// # Errors
    ///
    /// Reference-validity errors; null cannot be rooted directly (use a
    /// slot and [`Vm::set_root`] to clear it).
    pub fn add_root(&mut self, m: MutatorId, r: ObjRef) -> Result<usize, VmError> {
        if !self.heap.is_valid(r) {
            return Err(VmError::Heap(HeapError::StaleRef(r)));
        }
        let mu = self.mutator_mut(m)?;
        mu.roots.push(r);
        Ok(mu.roots.len() - 1)
    }

    /// Overwrites root slot `slot` of `m` (the moral equivalent of
    /// reassigning a local variable; `ObjRef::NULL` models `x = null`).
    ///
    /// # Errors
    ///
    /// [`VmError::BadRootSlot`] or reference-validity errors.
    pub fn set_root(&mut self, m: MutatorId, slot: usize, r: ObjRef) -> Result<(), VmError> {
        if r.is_some() && !self.heap.is_valid(r) {
            return Err(VmError::Heap(HeapError::StaleRef(r)));
        }
        let mu = self.mutator_mut(m)?;
        let len = mu.roots.len();
        match mu.roots.get_mut(slot) {
            Some(s) => {
                *s = r;
                Ok(())
            }
            None => Err(VmError::BadRootSlot {
                mutator: m,
                slot,
                len,
            }),
        }
    }

    /// Reads root slot `slot` of `m`.
    ///
    /// # Errors
    ///
    /// [`VmError::BadRootSlot`].
    pub fn root(&self, m: MutatorId, slot: usize) -> Result<ObjRef, VmError> {
        let mu = self.mutator(m)?;
        mu.roots.get(slot).copied().ok_or(VmError::BadRootSlot {
            mutator: m,
            slot,
            len: mu.roots.len(),
        })
    }

    /// Registers a global (static) root.
    ///
    /// # Errors
    ///
    /// Reference-validity errors.
    pub fn add_global(&mut self, r: ObjRef) -> Result<(), VmError> {
        if !self.heap.is_valid(r) {
            return Err(VmError::Heap(HeapError::StaleRef(r)));
        }
        self.globals.push(r);
        Ok(())
    }

    /// Removes a global root (first occurrence).
    ///
    /// # Errors
    ///
    /// [`VmError::GlobalNotFound`].
    pub fn remove_global(&mut self, r: ObjRef) -> Result<(), VmError> {
        match self.globals.iter().position(|&g| g == r) {
            Some(i) => {
                self.globals.swap_remove(i);
                Ok(())
            }
            None => Err(VmError::GlobalNotFound(r)),
        }
    }

    // ------------------------------------------------------------------
    // GC assertions (§2 of the paper)
    // ------------------------------------------------------------------

    /// The fluent assertion facade — the preferred entry point for all
    /// five assertion kinds: `vm.assertions().dead(p)`,
    /// `.instances(class, n)`, `.unshared(p)`, `.owned_by(p, q)` and the
    /// `.region(m)` scope guard. The `assert_*` methods below delegate to
    /// it.
    pub fn assertions(&mut self) -> crate::assertions::Assertions<'_> {
        crate::assertions::Assertions::new(self)
    }

    /// `assert-dead(p)`: triggered at the next collection if `p` is still
    /// reachable (§2.3.1). Equivalent to [`Vm::assertions`]`.dead(p)`.
    ///
    /// # Errors
    ///
    /// [`VmError::BaseMode`], [`VmError::Halted`] or reference-validity
    /// errors.
    pub fn assert_dead(&mut self, p: ObjRef) -> Result<(), VmError> {
        self.assertions().dead(p)
    }

    /// `start-region()`: begins an allocation region on mutator `m`; every
    /// object `m` allocates until [`Vm::assert_alldead`] is recorded
    /// (§2.3.2). Regions do not nest.
    ///
    /// # Errors
    ///
    /// [`VmError::RegionActive`] if `m` already has a region, plus the
    /// mode/halt errors.
    pub fn start_region(&mut self, m: MutatorId) -> Result<(), VmError> {
        self.check_running()?;
        self.check_instrumented()?;
        let mu = self.mutator_mut(m)?;
        if mu.region.is_some() {
            return Err(VmError::RegionActive(m));
        }
        mu.region = Some(Region::default());
        self.calls.regions_started += 1;
        Ok(())
    }

    /// Abandons `m`'s active region without asserting anything — used by
    /// [`crate::assertions::RegionGuard::cancel`] when a region's objects
    /// turn out to legitimately survive.
    ///
    /// # Errors
    ///
    /// [`VmError::NoRegion`] if no region is active.
    pub fn cancel_region(&mut self, m: MutatorId) -> Result<(), VmError> {
        let mu = self.mutator_mut(m)?;
        mu.region.take().ok_or(VmError::NoRegion(m))?;
        Ok(())
    }

    /// `assert-alldead()`: ends `m`'s region and asserts every object
    /// allocated inside it dead (queued objects that were already
    /// reclaimed pass trivially). Returns the number of objects asserted.
    ///
    /// # Errors
    ///
    /// [`VmError::NoRegion`] if no region is active, plus the mode/halt
    /// errors.
    pub fn assert_alldead(&mut self, m: MutatorId) -> Result<usize, VmError> {
        self.check_running()?;
        self.check_instrumented()?;
        let mu = self.mutator_mut(m)?;
        let region = mu.region.take().ok_or(VmError::NoRegion(m))?;
        let mut asserted = 0;
        for r in region.queue {
            if self.heap.is_valid(r) {
                self.engine.assert_dead(&mut self.heap, r)?;
                asserted += 1;
            }
        }
        self.calls.region_objects += asserted as u64;
        Ok(asserted)
    }

    /// `assert-instances(T, I)`: triggered when more than `limit` live
    /// instances of `class` exist at collection time (§2.4.1). Passing 0
    /// asserts that no instances exist at GC time.
    ///
    /// # Errors
    ///
    /// Mode/halt errors.
    pub fn assert_instances(&mut self, class: ClassId, limit: u32) -> Result<(), VmError> {
        self.assertions().instances(class, limit)
    }

    /// `assert-unshared(p)`: triggered if `p` is found with more than one
    /// incoming pointer (§2.5.1).
    ///
    /// # Errors
    ///
    /// Mode/halt or reference-validity errors.
    pub fn assert_unshared(&mut self, p: ObjRef) -> Result<(), VmError> {
        self.assertions().unshared(p)
    }

    /// `assert-ownedby(p, q)`: triggered if, at a collection, no path to
    /// ownee `q` passes through owner `p` (§2.5.2).
    ///
    /// # Errors
    ///
    /// [`VmError::OwnershipConflict`] for disjointness violations, plus
    /// mode/halt and reference-validity errors.
    pub fn assert_owned_by(&mut self, owner: ObjRef, ownee: ObjRef) -> Result<(), VmError> {
        self.assertions().owned_by(owner, ownee)
    }

    /// Withdraws the ownership assertion on `ownee` (the program removed
    /// it legitimately and no longer expects the property). Returns
    /// whether an assertion was present.
    ///
    /// # Errors
    ///
    /// Mode/halt errors.
    pub fn release_ownee(&mut self, ownee: ObjRef) -> Result<bool, VmError> {
        self.check_running()?;
        self.check_instrumented()?;
        Ok(self.engine.release_ownee(&mut self.heap, ownee))
    }

    /// Withdraws an `assert_dead` (clears the `DEAD` bit) — useful when a
    /// destroyed object is legitimately resurrected in tests.
    ///
    /// # Errors
    ///
    /// Mode/halt or reference-validity errors.
    pub fn retract_dead(&mut self, p: ObjRef) -> Result<(), VmError> {
        self.check_running()?;
        self.check_instrumented()?;
        self.heap.clear_flag(p, Flags::DEAD)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Heap probes (QVM-style immediate queries, for comparison)
    // ------------------------------------------------------------------

    /// The fluent probe facade — the preferred entry point for all
    /// immediate heap queries: `vm.probe().path(p)`, `.reachable(p)`,
    /// `.instances(class)`, `.explain_instances(class)` and
    /// `.incoming_references(p)`. Each query runs a full traversal right
    /// now — the QVM cost model the paper's assertions amortize away
    /// (§4.1). The `probe_*` methods below delegate to it.
    pub fn probe(&mut self) -> crate::probe::Probe<'_> {
        crate::probe::Probe::new(self)
    }

    /// Immediately answers "is `target` reachable, and through what
    /// path?". Equivalent to [`Vm::probe`]`.path(target)`.
    ///
    /// # Errors
    ///
    /// Tracing errors ([`VmError::Heap`]) or [`VmError::Halted`].
    pub fn probe_path(
        &mut self,
        target: ObjRef,
    ) -> Result<Option<gca_collector::HeapPath>, VmError> {
        self.probe().path(target)
    }

    /// Immediately counts the live (reachable) instances of `class`.
    /// Equivalent to [`Vm::probe`]`.instances(class)`.
    ///
    /// # Errors
    ///
    /// Tracing errors or [`VmError::Halted`].
    pub fn probe_instances(&mut self, class: ClassId) -> Result<u32, VmError> {
        self.probe().instances(class)
    }

    /// Immediately answers whether `target` is reachable. Equivalent to
    /// [`Vm::probe`]`.reachable(target)`.
    ///
    /// # Errors
    ///
    /// Tracing errors or [`VmError::Halted`].
    pub fn probe_reachable(&mut self, target: ObjRef) -> Result<bool, VmError> {
        self.probe().reachable(target)
    }

    /// Collects a root-to-object path for every live instance of `class`.
    /// Equivalent to [`Vm::probe`]`.explain_instances(class)`.
    ///
    /// # Errors
    ///
    /// Tracing errors or [`VmError::Halted`].
    pub fn explain_instances(
        &mut self,
        class: ClassId,
    ) -> Result<Vec<(ObjRef, gca_collector::HeapPath)>, VmError> {
        self.probe().explain_instances(class)
    }

    /// Enumerates every heap reference into `target`. Equivalent to
    /// [`Vm::probe`]`.incoming_references(target)`.
    ///
    /// # Errors
    ///
    /// Reference-validity errors or [`VmError::Halted`].
    pub fn incoming_references(
        &mut self,
        target: ObjRef,
    ) -> Result<(Vec<(ObjRef, usize)>, bool), VmError> {
        self.probe().incoming_references(target)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Direct read access to the heap (detectors and tests).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// A stop-the-world snapshot of all roots (thread stacks + globals),
    /// as the collector would see them. Used by offline analyzers (heap
    /// snapshots, dominator trees).
    pub fn roots(&self) -> Vec<ObjRef> {
        self.gather_roots()
    }

    /// Cumulative collector statistics (GC time for the figures).
    pub fn gc_stats(&self) -> &GcStats {
        self.collector.stats()
    }

    /// Cumulative heap statistics.
    pub fn heap_stats(&self) -> &HeapStats {
        self.heap.stats()
    }

    /// Cumulative assertion-call counts.
    pub fn assertion_calls(&self) -> &AssertionCallCounts {
        &self.calls
    }

    /// Current heap budget in words (may have grown).
    pub fn heap_budget(&self) -> usize {
        self.budget
    }

    /// Number of registered owner objects.
    pub fn owner_count(&self) -> usize {
        self.engine.owner_count()
    }

    /// Number of registered ownee objects.
    pub fn ownee_count(&self) -> usize {
        self.engine.ownee_count()
    }

    /// All violations detected so far, including those from collections
    /// triggered implicitly by allocation pressure.
    pub fn violation_log(&self) -> &[crate::violation::Violation] {
        &self.violation_log
    }

    /// Takes (and clears) the cumulative violation log.
    pub fn take_violation_log(&mut self) -> Vec<crate::violation::Violation> {
        std::mem::take(&mut self.violation_log)
    }

    /// Cumulative assertion-checking work across all collections.
    pub fn check_totals(&self) -> &crate::report::CheckCounters {
        &self.totals
    }

    /// Total collections performed (implicit and explicit).
    pub fn collections(&self) -> u64 {
        self.gc_stats().collections
    }

    /// Whether the VM halted after a violation under [`Reaction::Halt`].
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The configuration the VM was built with.
    pub fn config(&self) -> &VmConfig {
        &self.config
    }
}
