//! Simulated mutator threads: shadow stacks and allocation regions.

use std::fmt;

use gca_heap::ObjRef;

/// Identifier of a simulated mutator thread.
///
/// The paper's regions are per-thread ("each thread can independently be
/// either in or out of a region", §2.3.2). We simulate threads as mutator
/// contexts with independent shadow stacks and region state, interleaved
/// deterministically by the workload driver; GC is stop-the-world either
/// way, so the heap-property semantics are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MutatorId(pub(crate) u32);

impl MutatorId {
    /// Raw index, for diagnostics.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MutatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mutator#{}", self.0)
    }
}

/// Region state for one mutator: the queue of objects allocated since
/// `start_region`. The queue holds *weak* references — it must not keep
/// region objects alive, or no region allocation could ever be collected
/// before the region ends (generation checks make the stale entries
/// harmless; they are purged after each collection).
#[derive(Debug, Default)]
pub(crate) struct Region {
    pub(crate) queue: Vec<ObjRef>,
}

/// One simulated mutator: a shadow stack of GC roots (organized in frames,
/// like call frames holding local variables) and optional region state.
#[derive(Debug)]
pub(crate) struct Mutator {
    /// Flat root stack; `frames[i]` is the stack length at which frame `i`
    /// begins. There is always a base frame.
    pub(crate) roots: Vec<ObjRef>,
    pub(crate) frames: Vec<usize>,
    pub(crate) region: Option<Region>,
}

impl Mutator {
    pub(crate) fn new() -> Mutator {
        Mutator {
            roots: Vec::new(),
            frames: vec![0],
            region: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutator_starts_with_base_frame() {
        let m = Mutator::new();
        assert_eq!(m.frames, vec![0]);
        assert!(m.roots.is_empty());
        assert!(m.region.is_none());
    }

    #[test]
    fn display() {
        assert_eq!(MutatorId(3).to_string(), "mutator#3");
        assert_eq!(MutatorId(3).as_u32(), 3);
    }
}
