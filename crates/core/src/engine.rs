//! The assertion engine: a [`TraceHooks`] implementation that checks every
//! registered GC assertion by piggybacking on the collector's trace.

use gca_collector::{TraceCtx, TraceHooks, Tracer, Visit};
use gca_heap::{Flags, Heap, HeapError, ObjRef};

use crate::config::{AssertionClass, Reaction, VmConfig};
use crate::error::VmError;
use crate::ownership::OwnershipTable;
use crate::report::CheckCounters;
use crate::violation::{Violation, ViolationKind};

/// Which tracing phase the engine is in; the checks differ between the
/// ownership phase (scanning from owners, §2.5.2 phase 1) and the normal
/// root scan (phase 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Not inside a collection.
    Idle,
    /// Ownership phase, scanning directly from the owner at this table
    /// index.
    Ownership(usize),
    /// Ownership phase, resuming below a deferred ownee of the owner at
    /// this table index. Runs after *all* direct owner scans, so an
    /// unmarked wrong-owner ownee found here has a final verdict: its own
    /// owner's scan did not reach it.
    DeferredOwnership(usize),
    /// Root scan.
    Root,
}

/// The assertion-checking [`TraceHooks`] implementation.
///
/// One engine is owned by each instrumented [`crate::Vm`]; attaching it
/// with *no* assertions registered is the paper's **Infrastructure**
/// configuration (the collector performs the per-object flag checks and
/// maintains path information, but nothing ever fires).
///
/// The checks, and where they ride:
///
/// | assertion | piggyback point |
/// |---|---|
/// | `assert-dead` | `visit_new`: `DEAD` bit on a newly marked (hence reachable) object |
/// | `assert-unshared` | `visit_marked`: `UNSHARED` bit on an already-marked object (second incoming pointer) |
/// | `assert-instances` | `visit_new` counts tracked classes; `trace_done` compares against limits |
/// | `assert-ownedby` | `pre_root_phase` scans from owners; `visit_new` during the root scan flags unowned ownees |
/// Field visibility note: the parallel collection adapter
/// ([`crate::par_engine`]) shares this struct's tables and accumulators
/// between its barriered phases, so the state fields are `pub(crate)`.
#[derive(Debug)]
pub struct AssertionEngine {
    pub(crate) path_tracking: bool,
    pub(crate) report_once: bool,
    /// Effective reaction for lifetime assertions — the only class whose
    /// reaction the engine acts on itself (`ForceTrue` edge severing).
    pub(crate) lifetime_reaction: Reaction,
    pub(crate) strict_owner_lifetime: bool,
    phase: Phase,
    pub(crate) ownership: OwnershipTable,
    /// Ownees discovered during the ownership phase, queued so scans
    /// truncate at ownees ("collections are essentially truncated when
    /// their leaves are reached") and are resumed after all owners.
    deferred: Vec<(ObjRef, usize)>,
    pub(crate) violations: Vec<Violation>,
    /// Ownees reached through another owner's region during deferred
    /// processing; their ownership verdict is resolved once the whole
    /// ownership phase has finished (their own owner's chains may still
    /// credit them).
    pending_unowned: Vec<(ObjRef, gca_collector::HeapPath)>,
    /// Incoming edges to asserted-dead objects, recorded for the
    /// `ForceTrue` reaction.
    pub(crate) dead_edges: Vec<(ObjRef, usize)>,
    /// Ownees/owners freed by the current sweep, recorded from the `swept`
    /// hook so table retirement costs O(dead) instead of a table rescan.
    swept_ownees: Vec<ObjRef>,
    swept_owners: Vec<ObjRef>,
    pub(crate) counters: CheckCounters,
}

impl AssertionEngine {
    /// Creates an engine configured from `config`.
    pub fn new(config: &VmConfig) -> AssertionEngine {
        AssertionEngine {
            path_tracking: config.path_tracking,
            report_once: config.report_once,
            lifetime_reaction: config.effective_reaction(AssertionClass::Lifetime),
            strict_owner_lifetime: config.strict_owner_lifetime,
            phase: Phase::Idle,
            ownership: OwnershipTable::new(),
            deferred: Vec::new(),
            violations: Vec::new(),
            pending_unowned: Vec::new(),
            dead_edges: Vec::new(),
            swept_ownees: Vec::new(),
            swept_owners: Vec::new(),
            counters: CheckCounters::default(),
        }
    }

    /// Marks `obj` as asserted-dead (sets the `DEAD` header bit). The
    /// check happens at the next collection.
    pub fn assert_dead(&self, heap: &mut Heap, obj: ObjRef) -> Result<(), VmError> {
        heap.set_flag(obj, Flags::DEAD)?;
        Ok(())
    }

    /// Marks `obj` as asserted-unshared (sets the `UNSHARED` header bit).
    pub fn assert_unshared(&self, heap: &mut Heap, obj: ObjRef) -> Result<(), VmError> {
        heap.set_flag(obj, Flags::UNSHARED)?;
        Ok(())
    }

    /// Registers an owner/ownee pair.
    pub fn assert_owned_by(
        &mut self,
        heap: &mut Heap,
        owner: ObjRef,
        ownee: ObjRef,
    ) -> Result<(), VmError> {
        self.ownership.add(heap, owner, ownee)
    }

    /// Unregisters an ownee.
    pub fn release_ownee(&mut self, heap: &mut Heap, ownee: ObjRef) -> bool {
        self.ownership.remove_ownee(heap, ownee)
    }

    /// Number of registered owners.
    pub fn owner_count(&self) -> usize {
        self.ownership.len()
    }

    /// Number of registered ownees.
    pub fn ownee_count(&self) -> usize {
        self.ownership.ownee_count()
    }

    /// Post-minor-collection maintenance: retires ownership metadata for
    /// the objects the minor sweep reclaimed (recorded via the `swept`
    /// hook). No assertions are checked — that is the generational
    /// trade-off the paper describes (§2.2) — but the strict
    /// owner-lifetime extension still reports ownees that outlived an
    /// owner reclaimed by the nursery.
    pub fn after_minor(&mut self, heap: &mut Heap) {
        let swept_ownees = std::mem::take(&mut self.swept_ownees);
        let swept_owners = std::mem::take(&mut self.swept_owners);
        let retired = self.ownership.retire(heap, &swept_ownees, &swept_owners);
        if self.strict_owner_lifetime {
            for (owner_class, survivors) in retired {
                for ownee in survivors {
                    let ownee_class = Self::class_name(heap, ownee);
                    self.violations.push(Violation {
                        kind: ViolationKind::OwneeOutlivedOwner {
                            ownee,
                            ownee_class,
                            owner_class: owner_class.clone(),
                        },
                        path: gca_collector::HeapPath::empty(),
                    });
                }
            }
        }
    }

    /// Takes the violations and counters accumulated during the last
    /// collection.
    pub fn drain(&mut self) -> (Vec<Violation>, CheckCounters) {
        (
            std::mem::take(&mut self.violations),
            std::mem::take(&mut self.counters),
        )
    }

    pub(crate) fn class_name(heap: &Heap, obj: ObjRef) -> String {
        match heap.get(obj) {
            Ok(o) => heap.registry().name(o.class()).to_owned(),
            Err(_) => "<dead>".to_owned(),
        }
    }

    /// Whether a violation for `obj` should be recorded, honouring
    /// report-once semantics via the `REPORTED` bit.
    pub(crate) fn should_report(&self, heap: &mut Heap, obj: ObjRef) -> bool {
        if !self.report_once {
            return true;
        }
        if heap.has_flag(obj, Flags::REPORTED).unwrap_or(true) {
            return false;
        }
        let _ = heap.set_flag(obj, Flags::REPORTED);
        true
    }
}

impl TraceHooks for AssertionEngine {
    fn wants_paths(&self) -> bool {
        self.path_tracking
    }

    fn gc_begin(&mut self, heap: &mut Heap) {
        heap.registry_mut().reset_instance_counts();
        self.ownership.prepare_for_gc();
        self.counters = CheckCounters::default();
        self.deferred.clear();
        self.pending_unowned.clear();
        self.dead_edges.clear();
        self.swept_ownees.clear();
        self.swept_owners.clear();
        self.phase = Phase::Root;
    }

    fn pre_root_phase(&mut self, heap: &mut Heap, tracer: &mut Tracer) -> Result<(), HeapError> {
        if self.ownership.is_empty() {
            return Ok(());
        }
        // Phase 1 (§2.5.2): scan from each owner's children — never the
        // owner itself, so a dead owner is still collected this cycle.
        for idx in 0..self.ownership.len() {
            let owner = self.ownership.owner_at(idx);
            debug_assert!(heap.is_valid(owner), "dead owners are retired at gc_end");
            self.phase = Phase::Ownership(idx);
            self.counters.owners_scanned += 1;
            tracer.push_children_of(heap, owner)?;
            tracer.drain(heap, self)?;
        }
        // Resume scanning below the queued ownees, still on behalf of
        // their owners (an ownee's subtree may contain further ownees of
        // the same owner).
        while let Some((ownee, idx)) = self.deferred.pop() {
            self.phase = Phase::DeferredOwnership(idx);
            self.counters.deferred_ownees_processed += 1;
            tracer.push_children_of(heap, ownee)?;
            tracer.drain(heap, self)?;
        }
        // Resolve the held-back verdicts: every owner scan and deferred
        // chain has run, so an ownee still lacking OWNED is genuinely not
        // reachable through its owner.
        let pending = std::mem::take(&mut self.pending_unowned);
        for (obj, path) in pending {
            let flags = heap.flags_of(obj)?;
            if flags.contains(Flags::OWNED) {
                continue;
            }
            if self.should_report(heap, obj) {
                let ownee_class = Self::class_name(heap, obj);
                let (owner, owner_class) = match self.ownership.owner_of(obj) {
                    Some(idx) => {
                        let e = self.ownership.entry(idx);
                        (e.owner, e.owner_class.clone())
                    }
                    None => (ObjRef::NULL, "<unknown>".to_owned()),
                };
                self.violations.push(Violation {
                    kind: ViolationKind::NotOwned {
                        ownee: obj,
                        ownee_class,
                        owner,
                        owner_class,
                    },
                    path,
                });
            }
        }
        self.phase = Phase::Root;
        Ok(())
    }

    fn visit_new(&mut self, heap: &mut Heap, obj: ObjRef, ctx: &TraceCtx<'_>) -> Visit {
        let flags = heap.flags_of(obj).expect("traced object is live");
        let class = heap.get(obj).expect("traced object is live").class();

        // assert-instances: count every traced object of a tracked class
        // ("we check the RVMClass of every object during tracing").
        if heap.registry().info(class).instance_limit.is_some() {
            heap.registry_mut().info_mut(class).instance_count += 1;
            self.counters.tracked_instances_counted += 1;
        }

        // assert-dead: the object is reachable (we just marked it).
        if flags.contains(Flags::DEAD) {
            self.counters.dead_bits_seen += 1;
            if self.should_report(heap, obj) {
                self.violations.push(Violation {
                    kind: ViolationKind::DeadReachable {
                        object: obj,
                        class_name: heap.registry().name(class).to_owned(),
                    },
                    path: ctx.current_path(heap),
                });
            }
            if self.lifetime_reaction == Reaction::ForceTrue {
                if let Some(edge) = ctx.parent_edge() {
                    self.dead_edges.push(edge);
                }
            }
        }

        match self.phase {
            Phase::Ownership(current) | Phase::DeferredOwnership(current) => {
                if flags.contains(Flags::OWNEE) {
                    self.counters.ownees_checked += 1;
                    if self.ownership.entry_contains(current, obj) {
                        heap.set_flag(obj, Flags::OWNED)
                            .expect("traced object is live");
                        self.deferred.push((obj, current));
                    } else if matches!(self.phase, Phase::Ownership(_)) {
                        // A *direct* owner scan reached another owner's
                        // ownee: the disjointness restriction is violated
                        // (§2.5.2, "improper use of the assertion").
                        let scanned_owner = self.ownership.owner_at(current);
                        self.violations.push(Violation {
                            kind: ViolationKind::ImproperOwnership {
                                ownee: obj,
                                ownee_class: heap.registry().name(class).to_owned(),
                                scanned_owner,
                                scanned_owner_class: Self::class_name(heap, scanned_owner),
                            },
                            path: ctx.current_path(heap),
                        });
                    } else {
                        // Reached below an ownee (a back edge out of the
                        // owner region, e.g. Order -> Customer ->
                        // lastOrder). Its own owner's deferred chains may
                        // still credit it, so hold the verdict until the
                        // ownership phase completes.
                        self.pending_unowned.push((obj, ctx.current_path(heap)));
                    }
                    // Truncate: ownees stop the scan and are processed
                    // from the deferred queue.
                    return Visit::Skip;
                }
                if flags.contains(Flags::OWNER) {
                    // "If we encounter another owner, mark it and stop the
                    // scan — we will scan this owner independently."
                    return Visit::Skip;
                }
                Visit::Descend
            }
            Phase::Root | Phase::Idle => {
                if flags.contains(Flags::OWNEE) && !flags.contains(Flags::OWNED) {
                    // Phase 2: "If we encounter an ownee it means that it
                    // is not properly owned, or it would have been marked
                    // in the first phase."
                    if self.should_report(heap, obj) {
                        let (owner, owner_class) = match self.ownership.owner_of(obj) {
                            Some(idx) => {
                                let e = self.ownership.entry(idx);
                                (e.owner, e.owner_class.clone())
                            }
                            None => (ObjRef::NULL, "<unknown>".to_owned()),
                        };
                        self.violations.push(Violation {
                            kind: ViolationKind::NotOwned {
                                ownee: obj,
                                ownee_class: heap.registry().name(class).to_owned(),
                                owner,
                                owner_class,
                            },
                            path: ctx.current_path(heap),
                        });
                    }
                }
                Visit::Descend
            }
        }
    }

    fn visit_marked(&mut self, heap: &mut Heap, obj: ObjRef, ctx: &TraceCtx<'_>) {
        let flags = heap.flags_of(obj).expect("traced object is live");
        // During the ownership phase, an already-marked ownee of the
        // *current* owner may have been marked through another region's
        // back edge before its owner's scan reached it — credit it now and
        // resume below it (its children were truncated when first seen).
        if let Phase::Ownership(current) | Phase::DeferredOwnership(current) = self.phase {
            if flags.contains(Flags::OWNEE)
                && !flags.contains(Flags::OWNED)
                && self.ownership.entry_contains(current, obj)
            {
                heap.set_flag(obj, Flags::OWNED)
                    .expect("traced object is live");
                self.deferred.push((obj, current));
            }
        }
        // assert-unshared: an already-marked object reached through another
        // edge has (at least) two incoming pointers.
        if flags.contains(Flags::UNSHARED) {
            self.counters.unshared_bits_seen += 1;
        }
        if flags.contains(Flags::UNSHARED) && self.should_report(heap, obj) {
            let class_name = Self::class_name(heap, obj);
            self.violations.push(Violation {
                kind: ViolationKind::Shared {
                    object: obj,
                    class_name,
                },
                path: ctx.current_path(heap),
            });
        }
        // Additional incoming edges to an asserted-dead object must also
        // be severed for ForceTrue to actually free it next cycle.
        if flags.contains(Flags::DEAD) && self.lifetime_reaction == Reaction::ForceTrue {
            if let Some(edge) = ctx.parent_edge() {
                self.dead_edges.push(edge);
            }
        }
    }

    fn swept(&mut self, heap: &Heap, obj: ObjRef) {
        // A flag test per reclaimed object — the header is already being
        // touched by the free.
        if let Ok(flags) = heap.flags_of(obj) {
            if flags.contains(Flags::OWNEE) {
                self.swept_ownees.push(obj);
            }
            if flags.contains(Flags::OWNER) {
                self.swept_owners.push(obj);
            }
        }
    }

    fn trace_done(&mut self, heap: &mut Heap) {
        // assert-instances: "at the end of GC, we iterate through our list
        // of tracked types, checking whether the instance limit has been
        // violated."
        let tracked: Vec<_> = heap.registry().tracked().to_vec();
        for class in tracked {
            let info = heap.registry().info(class);
            if let Some(limit) = info.instance_limit {
                if info.instance_count > limit {
                    self.violations.push(Violation {
                        kind: ViolationKind::InstanceLimit {
                            class_name: info.name().to_owned(),
                            limit,
                            count: info.instance_count,
                        },
                        path: gca_collector::HeapPath::empty(),
                    });
                }
            }
        }
    }

    fn gc_end(&mut self, heap: &mut Heap, _cycle: &gca_collector::CycleStats) {
        // ForceTrue: sever the recorded incoming edges so the object dies
        // at the next collection (§2.6 "force the assertion to be true").
        if self.lifetime_reaction == Reaction::ForceTrue {
            for (parent, field) in self.dead_edges.drain(..) {
                if heap.is_valid(parent) {
                    let _ = heap.set_ref_field(parent, field, ObjRef::NULL);
                }
            }
        }
        // Retire pairs whose participants died this cycle (recorded by
        // the sweep hook).
        let swept_ownees = std::mem::take(&mut self.swept_ownees);
        let swept_owners = std::mem::take(&mut self.swept_owners);
        let retired = self.ownership.retire(heap, &swept_ownees, &swept_owners);
        if self.strict_owner_lifetime {
            for (owner_class, survivors) in retired {
                for ownee in survivors {
                    let ownee_class = Self::class_name(heap, ownee);
                    self.violations.push(Violation {
                        kind: ViolationKind::OwneeOutlivedOwner {
                            ownee,
                            ownee_class,
                            owner_class: owner_class.clone(),
                        },
                        path: gca_collector::HeapPath::empty(),
                    });
                }
            }
        }
        self.phase = Phase::Idle;
    }
}
