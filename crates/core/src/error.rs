//! VM error type.

use std::error::Error;
use std::fmt;

use gca_heap::{HeapError, ObjRef};

use crate::mutator::MutatorId;

/// Errors returned by [`crate::Vm`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// An underlying heap error (stale reference, bad field index,
    /// out-of-memory, …).
    Heap(HeapError),
    /// The VM halted after a violation under [`crate::Reaction::Halt`];
    /// no further mutator work is accepted.
    Halted,
    /// The assertion API was used on a [`crate::Mode::Base`] VM, which
    /// models the unmodified collector and has no assertion support.
    BaseMode,
    /// `start_region` while the mutator already has an active region
    /// (regions do not nest; each thread is either in or out of a region,
    /// §2.3.2).
    RegionActive(MutatorId),
    /// `assert_alldead` without a preceding `start_region`.
    NoRegion(MutatorId),
    /// The mutator id does not name a live mutator.
    NoSuchMutator(MutatorId),
    /// `pop_frame` on a mutator whose base frame would be removed.
    NoFrame(MutatorId),
    /// `remove_global` for a reference that is not a global root.
    GlobalNotFound(ObjRef),
    /// `set_root` with an out-of-range slot.
    BadRootSlot {
        /// Mutator whose root stack was addressed.
        mutator: MutatorId,
        /// Requested slot.
        slot: usize,
        /// Current root-stack size.
        len: usize,
    },
    /// An `assert_owned_by` registration that violates the disjointness
    /// restriction (an owner may not be an ownee and vice versa, and an
    /// object cannot own itself); the message names the conflict.
    OwnershipConflict(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Heap(e) => write!(f, "heap error: {e}"),
            VmError::Halted => write!(f, "vm halted after assertion violation"),
            VmError::BaseMode => {
                write!(
                    f,
                    "assertion api unavailable: vm is in base (uninstrumented) mode"
                )
            }
            VmError::RegionActive(m) => {
                write!(f, "mutator {m} already has an active allocation region")
            }
            VmError::NoRegion(m) => write!(f, "mutator {m} has no active allocation region"),
            VmError::NoSuchMutator(m) => write!(f, "no such mutator: {m}"),
            VmError::NoFrame(m) => write!(f, "mutator {m} has no poppable frame"),
            VmError::GlobalNotFound(r) => write!(f, "reference {r} is not a global root"),
            VmError::BadRootSlot { mutator, slot, len } => write!(
                f,
                "root slot {slot} out of range for mutator {mutator} with {len} roots"
            ),
            VmError::OwnershipConflict(msg) => write!(f, "ownership conflict: {msg}"),
        }
    }
}

impl Error for VmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VmError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for VmError {
    fn from(e: HeapError) -> VmError {
        VmError::Heap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(VmError::Halted.to_string().contains("halted"));
        assert!(VmError::BaseMode.to_string().contains("base"));
        assert!(VmError::from(HeapError::NullRef)
            .to_string()
            .contains("null reference"));
        assert!(VmError::OwnershipConflict("x owns itself".into())
            .to_string()
            .contains("x owns itself"));
    }

    #[test]
    fn source_chains_heap_error() {
        let e = VmError::from(HeapError::NullRef);
        assert!(e.source().is_some());
        assert!(VmError::Halted.source().is_none());
    }
}
