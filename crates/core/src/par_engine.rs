//! Parallel collection orchestration for the VM.
//!
//! This module drives the work-stealing mark phase of `gca-collector`
//! ([`mark_parallel`]) with assertion-checking shard visitors, mirroring
//! the sequential [`AssertionEngine`] semantics:
//!
//! * **Per-object checks** (`assert-dead`, `assert-instances`, ownership
//!   crediting) ride on `visit_new`, which fires exactly once per object —
//!   for the worker that wins the atomic mark race — so the shard totals
//!   merge to the same values a sequential trace produces.
//! * **Per-edge checks** (`assert-unshared`) ride on `visit_marked`, which
//!   fires exactly once per extra edge.
//! * The **ownership pre-phase** (§2.5.2) parallelizes over the owner
//!   list: one barriered round scans from every owner's children at once
//!   (each work item carries its owner's table index as `ctx`), then
//!   deferred-ownee rounds run until the queue drains — preserving the
//!   paper's ownee-queue truncation — and held-back verdicts are resolved
//!   sequentially at the end, exactly like the sequential engine.
//! * **Violations** are accumulated per worker as lightweight candidates
//!   and merged deterministically (sorted by object slot index, then
//!   violation kind), with report-once de-duplication applied during the
//!   merge, so reports are reproducible run to run.
//! * **Paths**: workers record only each item's one-edge provenance;
//!   root-to-violation paths are reconstructed on demand at report time
//!   ([`reconstruct_path`]) for just the flagged objects — a deterministic
//!   BFS honouring the tracer's ownership truncation rules. A sequential
//!   trace may report a *different* valid path to the same violation (its
//!   path is discovery-order dependent); both identify the object and a
//!   real retaining path.
//!
//! One deliberate divergence: with *overlapping* owner regions (improper
//! use per the paper's disjointness restriction), the sequential engine's
//! `ImproperOwnership` verdicts depend on owner scan order and mark-time
//! truncation. The merge reproduces the sequential verdict for the
//! supported shape — ownees referenced directly by their owners — by
//! reporting a foreign-scan candidate only if that scan's table index
//! precedes the ownee's own crediting scan.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use gca_collector::{
    heap_has_stale_marks, mark_parallel, push_child_items, reconstruct_path, sweep_heap,
    CensusSink, CycleStats, HeapPath, NoHooks, NoParVisitor, ParVisitor, TraceHooks, Visit,
    WorkItem, CTX_NONE,
};
use gca_heap::{ClassId, Flags, Heap, HeapError, ObjRef};

use crate::config::Reaction;
use crate::engine::AssertionEngine;
use crate::ownership::OwnershipTable;
use crate::report::CheckCounters;
use crate::violation::{Violation, ViolationKind};

/// Which barriered sub-phase a shard visitor is running in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanMode {
    /// Direct owner scans (§2.5.2 phase 1); `ctx` = owner table index.
    Direct,
    /// Deferred-ownee rounds; `ctx` = owner table index.
    Deferred,
    /// Root scan (phase 2); `ctx` = [`CTX_NONE`].
    Root,
}

/// A provisional violation observation, cheap enough to record on the
/// marking fast path; converted to a [`Violation`] (with path
/// reconstruction) during the deterministic merge.
#[derive(Debug, Clone, Copy)]
enum Candidate {
    /// Asserted-dead object found reachable.
    Dead { obj: ObjRef, ctx: u32 },
    /// Extra edge into an asserted-unshared object.
    Shared { obj: ObjRef, ctx: u32 },
    /// A direct owner scan reached a foreign ownee.
    Improper { obj: ObjRef, scanned: usize },
    /// A deferred round reached a foreign ownee; verdict resolved against
    /// the final `OWNED` state after the whole ownership phase.
    Pending { obj: ObjRef, ctx: u32 },
    /// The root scan reached an uncredited ownee.
    RootNotOwned { obj: ObjRef },
}

impl Candidate {
    fn obj(&self) -> ObjRef {
        match *self {
            Candidate::Dead { obj, .. }
            | Candidate::Shared { obj, .. }
            | Candidate::Improper { obj, .. }
            | Candidate::Pending { obj, .. }
            | Candidate::RootNotOwned { obj } => obj,
        }
    }

    /// Merge order within one object, chosen to match the sequential
    /// engine's chronological reporting (a first visit precedes any
    /// extra-edge visit, so `Dead`/`NotOwned` precede `Shared`).
    fn rank(&self) -> u8 {
        match self {
            Candidate::Dead { .. } => 0,
            Candidate::Improper { .. } => 1,
            Candidate::Pending { .. } => 2,
            Candidate::RootNotOwned { .. } => 3,
            Candidate::Shared { .. } => 4,
        }
    }
}

/// Per-worker assertion visitor; one shard per worker, merged after each
/// phase.
#[derive(Debug)]
struct ShardVisitor<'a> {
    ownership: &'a OwnershipTable,
    mode: ScanMode,
    /// Record incoming edges to asserted-dead objects (the `ForceTrue`
    /// reaction; like the sequential engine, only when path provenance is
    /// enabled).
    record_dead_edges: bool,
    counters: CheckCounters,
    instance_counts: HashMap<ClassId, u32>,
    deferred: Vec<(ObjRef, usize)>,
    dead_edges: Vec<(ObjRef, usize)>,
    candidates: Vec<Candidate>,
    /// Heap-census shard, merged like the instance counters (summation
    /// commutes, so the merged totals are interleaving-independent).
    census: Option<CensusSink>,
}

impl<'a> ShardVisitor<'a> {
    fn new(
        ownership: &'a OwnershipTable,
        mode: ScanMode,
        record_dead_edges: bool,
        census: bool,
    ) -> Self {
        ShardVisitor {
            ownership,
            mode,
            record_dead_edges,
            counters: CheckCounters::default(),
            instance_counts: HashMap::new(),
            deferred: Vec::new(),
            dead_edges: Vec::new(),
            candidates: Vec::new(),
            census: census.then(CensusSink::new),
        }
    }

    /// Ownership crediting with an atomic claim on the `OWNED` bit, so
    /// exactly one racing worker queues the deferred scan (the sequential
    /// engine's `!OWNED` guard, made into a single RMW).
    fn credit(&mut self, heap: &Heap, obj: ObjRef, current: usize) {
        let before = heap
            .fetch_set_flag(obj, Flags::OWNED)
            .expect("traced object is live");
        if !before.contains(Flags::OWNED) {
            self.deferred.push((obj, current));
        }
    }

    fn ownee_in_ownership_phase(&mut self, heap: &Heap, obj: ObjRef, item: &WorkItem) {
        let current = item.ctx as usize;
        if self.ownership.entry_contains(current, obj) {
            self.credit(heap, obj, current);
        } else if self.mode == ScanMode::Direct {
            self.candidates.push(Candidate::Improper {
                obj,
                scanned: current,
            });
        } else {
            self.candidates
                .push(Candidate::Pending { obj, ctx: item.ctx });
        }
    }
}

impl ParVisitor for ShardVisitor<'_> {
    fn visit_new(&mut self, heap: &Heap, obj: ObjRef, prev: Flags, item: &WorkItem) -> Visit {
        // Census first: visit_new fires exactly once per object across
        // every sub-phase of the cycle, so each live object is tallied
        // exactly once.
        if let Some(census) = self.census.as_mut() {
            census.observe(heap, obj);
        }
        let class = heap.get(obj).expect("traced object is live").class();

        // assert-instances: count every traced object of a tracked class.
        if heap.registry().info(class).instance_limit.is_some() {
            *self.instance_counts.entry(class).or_insert(0) += 1;
            self.counters.tracked_instances_counted += 1;
        }

        // assert-dead: the object is reachable (this worker just marked it).
        if prev.contains(Flags::DEAD) {
            self.counters.dead_bits_seen += 1;
            self.candidates.push(Candidate::Dead { obj, ctx: item.ctx });
            if self.record_dead_edges {
                if let Some(edge) = item.parent_edge() {
                    self.dead_edges.push(edge);
                }
            }
        }

        match self.mode {
            ScanMode::Direct | ScanMode::Deferred => {
                if prev.contains(Flags::OWNEE) {
                    self.counters.ownees_checked += 1;
                    self.ownee_in_ownership_phase(heap, obj, item);
                    // Truncate: ownees stop the scan and are processed
                    // from the deferred queue.
                    return Visit::Skip;
                }
                if prev.contains(Flags::OWNER) {
                    return Visit::Skip;
                }
                Visit::Descend
            }
            ScanMode::Root => {
                // The ownership phase ran to completion behind a barrier,
                // so the OWNED bit in the mark-claim snapshot is final.
                if prev.contains(Flags::OWNEE) && !prev.contains(Flags::OWNED) {
                    self.candidates.push(Candidate::RootNotOwned { obj });
                }
                Visit::Descend
            }
        }
    }

    fn visit_marked(&mut self, heap: &Heap, obj: ObjRef, prev: Flags, item: &WorkItem) {
        // In the ownership phase an already-marked ownee may still need
        // crediting (another scan's edge marked it first); for foreign
        // ownees a candidate is recorded so the merge can reproduce the
        // scan-order-dependent sequential verdict even when a racing
        // worker claimed the mark bit first.
        if let ScanMode::Direct | ScanMode::Deferred = self.mode {
            if prev.contains(Flags::OWNEE) {
                self.ownee_in_ownership_phase(heap, obj, item);
            }
        }
        // assert-unshared: one candidate per extra incoming edge.
        if prev.contains(Flags::UNSHARED) {
            self.counters.unshared_bits_seen += 1;
            self.candidates
                .push(Candidate::Shared { obj, ctx: item.ctx });
        }
        if prev.contains(Flags::DEAD) && self.record_dead_edges {
            if let Some(edge) = item.parent_edge() {
                self.dead_edges.push(edge);
            }
        }
    }
}

/// Accumulators merged across all phases of one parallel collection.
#[derive(Debug, Default)]
struct PhaseAccum {
    candidates: Vec<Candidate>,
    instance_counts: HashMap<ClassId, u32>,
    counters: CheckCounters,
    dead_edges: Vec<(ObjRef, usize)>,
    objects_marked: u64,
    edges_traced: u64,
    /// Per-worker busy time summed element-wise over every barriered
    /// mark sub-phase of the cycle (ownership rounds plus the root scan).
    worker_busy: Vec<Duration>,
    /// Merged census shards (populated only when the census is on).
    census: Option<CensusSink>,
}

/// Result of one parallel cycle: the standard stats plus the per-worker
/// mark-loop busy profile consumed by telemetry.
#[derive(Debug)]
pub(crate) struct ParCycle {
    /// Standard per-cycle statistics (recorded into `GcStats` by the VM).
    pub cycle: CycleStats,
    /// Busy time per tracing worker across the cycle's parallel mark
    /// loops, indexed by worker.
    pub worker_mark: Vec<Duration>,
    /// The cycle's merged heap census; `Some` exactly when the caller
    /// requested one.
    pub census: Option<CensusSink>,
}

/// Runs one barriered mark sub-phase and folds the shard results into
/// `acc`, returning the merged deferred-ownee queue.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    heap: &Heap,
    ownership: &OwnershipTable,
    mode: ScanMode,
    seeds: Vec<WorkItem>,
    workers: usize,
    record_dead_edges: bool,
    census: bool,
    acc: &mut PhaseAccum,
) -> Result<Vec<(ObjRef, usize)>, HeapError> {
    let mut shards: Vec<ShardVisitor<'_>> = (0..workers)
        .map(|_| ShardVisitor::new(ownership, mode, record_dead_edges, census))
        .collect();
    let stats = mark_parallel(heap, seeds, &mut shards)?;
    acc.objects_marked += stats.objects_marked;
    acc.edges_traced += stats.edges_traced;
    for (i, busy) in stats.worker_busy.into_iter().enumerate() {
        if acc.worker_busy.len() <= i {
            acc.worker_busy.push(Duration::ZERO);
        }
        acc.worker_busy[i] += busy;
    }

    let mut deferred = Vec::new();
    for shard in shards {
        acc.candidates.extend(shard.candidates);
        for (class, n) in shard.instance_counts {
            *acc.instance_counts.entry(class).or_insert(0) += n;
        }
        acc.counters.ownees_checked += shard.counters.ownees_checked;
        acc.counters.dead_bits_seen += shard.counters.dead_bits_seen;
        acc.counters.tracked_instances_counted += shard.counters.tracked_instances_counted;
        acc.counters.unshared_bits_seen += shard.counters.unshared_bits_seen;
        acc.dead_edges.extend(shard.dead_edges);
        deferred.extend(shard.deferred);
        if let Some(sink) = shard.census {
            acc.census.get_or_insert_with(CensusSink::new).absorb(sink);
        }
    }
    Ok(deferred)
}

/// Runs a full parallel collection cycle for an instrumented VM:
/// `gc_begin` → parallel ownership pre-phase → parallel root mark →
/// deterministic candidate merge → `trace_done` → sweep → `gc_end`.
///
/// The sequential engine's own hooks are reused for everything that is
/// not the mark itself (begin/trace_done/sweep/end), so reactions,
/// instance limits, ownership retirement and the strict-owner-lifetime
/// extension behave identically in both modes.
pub(crate) fn collect_parallel(
    engine: &mut AssertionEngine,
    heap: &mut Heap,
    roots: &[ObjRef],
    workers: usize,
    census: bool,
) -> Result<ParCycle, HeapError> {
    let workers = workers.max(1);
    let cross_check = census && cfg!(debug_assertions) && !heap_has_stale_marks(heap);
    let cycle_start = Instant::now();
    TraceHooks::gc_begin(engine, heap);

    let record_dead_edges = engine.path_tracking && engine.lifetime_reaction == Reaction::ForceTrue;
    let mut acc = PhaseAccum::default();

    // ---- ownership pre-phase (§2.5.2), barriered sub-phases ----
    let t = Instant::now();
    if !engine.ownership.is_empty() {
        // Phase A: every direct owner scan at once. Seeds are the owners'
        // children — never the owners themselves, so a dead owner is
        // still collected this cycle.
        let mut seeds = Vec::new();
        for idx in 0..engine.ownership.len() {
            let owner = engine.ownership.owner_at(idx);
            debug_assert!(heap.is_valid(owner), "dead owners are retired at gc_end");
            acc.counters.owners_scanned += 1;
            acc.edges_traced += push_child_items(heap, owner, idx as u32, &mut seeds)?;
        }
        let mut deferred = run_phase(
            heap,
            &engine.ownership,
            ScanMode::Direct,
            seeds,
            workers,
            record_dead_edges,
            census,
            &mut acc,
        )?;
        // Phase B: deferred-ownee rounds until the queue drains ("resume
        // scanning below the queued ownees, still on behalf of their
        // owners"). Each round is a barrier so crediting from round N is
        // visible to round N+1.
        while !deferred.is_empty() {
            deferred.sort_unstable();
            let mut seeds = Vec::new();
            for &(ownee, idx) in &deferred {
                acc.counters.deferred_ownees_processed += 1;
                acc.edges_traced += push_child_items(heap, ownee, idx as u32, &mut seeds)?;
            }
            deferred = run_phase(
                heap,
                &engine.ownership,
                ScanMode::Deferred,
                seeds,
                workers,
                record_dead_edges,
                census,
                &mut acc,
            )?;
        }
    }
    let pre_root = t.elapsed();
    let pre_root_edges = acc.edges_traced;

    // ---- root phase ----
    let t = Instant::now();
    let seeds: Vec<WorkItem> = roots
        .iter()
        .filter(|r| r.is_some())
        .map(|&r| WorkItem::seed(r, CTX_NONE))
        .collect();
    let stray = run_phase(
        heap,
        &engine.ownership,
        ScanMode::Root,
        seeds,
        workers,
        record_dead_edges,
        census,
        &mut acc,
    )?;
    debug_assert!(stray.is_empty(), "root scans never credit ownees");
    let mark = t.elapsed();

    // ---- deterministic merge ----
    // Instance counts first, so trace_done sees the merged totals.
    for (&class, &n) in &acc.instance_counts {
        heap.registry_mut().info_mut(class).instance_count += n;
    }
    engine.counters = acc.counters;
    acc.dead_edges
        .sort_unstable_by_key(|&(p, f)| (p.index(), f));
    engine.dead_edges.extend(acc.dead_edges);
    merge_candidates(engine, heap, roots, acc.candidates);

    TraceHooks::trace_done(engine, heap);

    // Invariant module (debug builds): the parallel mark must leave no
    // black-to-white edge, same as the sequential tracer.
    #[cfg(debug_assertions)]
    {
        let problems = gca_collector::tricolor_violations(heap);
        assert!(problems.is_empty(), "tri-color at trace_done: {problems:?}");
    }

    let t = Instant::now();
    let (objects_swept, words_swept) = sweep_heap(heap, engine)?;
    let sweep = t.elapsed();

    let cycle = CycleStats {
        total: cycle_start.elapsed(),
        pre_root,
        mark,
        sweep,
        objects_marked: acc.objects_marked,
        edges_traced: acc.edges_traced,
        pre_root_edges,
        objects_swept,
        words_swept,
    };
    TraceHooks::gc_end(engine, heap, &cycle);
    let census = census.then(|| acc.census.unwrap_or_default());
    if cross_check {
        if let Some(sink) = &census {
            sink.verify_live_totals(heap);
        }
    }
    Ok(ParCycle {
        cycle,
        worker_mark: acc.worker_busy,
        census,
    })
}

/// Converts merged candidates into [`Violation`]s, sorted by object slot
/// index (then kind) so the report is identical run to run, applying
/// report-once de-duplication and the ownership verdict rules.
fn merge_candidates(
    engine: &mut AssertionEngine,
    heap: &mut Heap,
    roots: &[ObjRef],
    mut candidates: Vec<Candidate>,
) {
    candidates.sort_by_key(|c| (c.obj().index(), c.rank()));

    let mut violations: Vec<Violation> = Vec::new();
    let mut i = 0;
    while i < candidates.len() {
        let obj = candidates[i].obj();
        let group_end = candidates[i..]
            .iter()
            .position(|c| c.obj() != obj)
            .map(|off| i + off)
            .unwrap_or(candidates.len());
        let group = &candidates[i..group_end];

        // -- assert-dead (at most one candidate: visit_new fires once) --
        if let Some(Candidate::Dead { ctx, .. }) =
            group.iter().find(|c| matches!(c, Candidate::Dead { .. }))
        {
            if engine.should_report(heap, obj) {
                let class_name = AssertionEngine::class_name(heap, obj);
                let path = violation_path(engine, heap, roots, obj, *ctx);
                violations.push(Violation {
                    kind: ViolationKind::DeadReachable {
                        object: obj,
                        class_name,
                    },
                    path,
                });
            }
        }

        // -- ownership verdict: at most one violation per ownee --
        let mut ownership_reported = false;
        let improper_scan = group
            .iter()
            .filter_map(|c| match c {
                Candidate::Improper { scanned, .. } => Some(*scanned),
                _ => None,
            })
            .min();
        if let Some(j) = improper_scan {
            // Reproduce the sequential scan-order verdict: the foreign
            // direct scan `j` reports only if it precedes the scan that
            // credits the ownee (its owner's direct scan, when the owner
            // references it directly; deferred crediting always comes
            // after every direct scan).
            let crediting_scan = engine
                .ownership
                .owner_of(obj)
                .filter(|&idx| {
                    heap.get(engine.ownership.owner_at(idx))
                        .map(|o| o.refs().contains(&obj))
                        .unwrap_or(false)
                })
                .unwrap_or(usize::MAX);
            if j < crediting_scan {
                ownership_reported = true;
                let scanned_owner = engine.ownership.owner_at(j);
                let path = violation_path(engine, heap, roots, obj, j as u32);
                violations.push(Violation {
                    kind: ViolationKind::ImproperOwnership {
                        ownee: obj,
                        ownee_class: AssertionEngine::class_name(heap, obj),
                        scanned_owner,
                        scanned_owner_class: AssertionEngine::class_name(heap, scanned_owner),
                    },
                    path,
                });
            }
        }
        if !ownership_reported {
            let pending_ctx = group
                .iter()
                .filter_map(|c| match c {
                    Candidate::Pending { ctx, .. } => Some(*ctx),
                    _ => None,
                })
                .min();
            let from_root = group
                .iter()
                .any(|c| matches!(c, Candidate::RootNotOwned { .. }));
            if pending_ctx.is_some() || from_root {
                // Held-back verdict (pending) resolves against the final
                // OWNED state; a root-scan sighting is already final.
                let owned = heap.has_flag(obj, Flags::OWNED).unwrap_or(false);
                if !owned && engine.should_report(heap, obj) {
                    let (owner, owner_class) = match engine.ownership.owner_of(obj) {
                        Some(idx) => {
                            let e = engine.ownership.entry(idx);
                            (e.owner, e.owner_class.clone())
                        }
                        None => (ObjRef::NULL, "<unknown>".to_owned()),
                    };
                    let ctx = pending_ctx.unwrap_or(CTX_NONE);
                    let path = violation_path(engine, heap, roots, obj, ctx);
                    violations.push(Violation {
                        kind: ViolationKind::NotOwned {
                            ownee: obj,
                            ownee_class: AssertionEngine::class_name(heap, obj),
                            owner,
                            owner_class,
                        },
                        path,
                    });
                }
            }
        }

        // -- assert-unshared: one violation per extra edge (multiplicity
        //    preserved; report-once naturally keeps only the first) --
        for c in group {
            if let Candidate::Shared { ctx, .. } = c {
                if engine.should_report(heap, obj) {
                    let class_name = AssertionEngine::class_name(heap, obj);
                    let path = violation_path(engine, heap, roots, obj, *ctx);
                    violations.push(Violation {
                        kind: ViolationKind::Shared {
                            object: obj,
                            class_name,
                        },
                        path,
                    });
                }
            }
        }

        i = group_end;
    }

    engine.violations.extend(violations);
}

/// Reconstructs the report path for a violation on `obj` found by scan
/// `ctx` ([`CTX_NONE`] = the root scan). Empty when path tracking is off,
/// matching the sequential engine.
fn violation_path(
    engine: &AssertionEngine,
    heap: &Heap,
    roots: &[ObjRef],
    obj: ObjRef,
    ctx: u32,
) -> HeapPath {
    if !engine.path_tracking {
        return HeapPath::empty();
    }
    if ctx == CTX_NONE {
        let starts: Vec<(ObjRef, Option<usize>)> = roots
            .iter()
            .filter(|r| r.is_some())
            .map(|&r| (r, None))
            .collect();
        return reconstruct_path(heap, &starts, obj, |_, _| true).unwrap_or_default();
    }
    // Ownership-phase path: starts at the scanned owner's children (the
    // sequential engine's paths also begin there — the owner itself is
    // never traced), truncating exactly where the scan truncates: at
    // other owners and at foreign ownees.
    let j = ctx as usize;
    let owner = engine.ownership.owner_at(j);
    let mut starts = Vec::new();
    if let Ok(o) = heap.get(owner) {
        for (i, &child) in o.refs().iter().enumerate() {
            if child.is_some() {
                starts.push((child, Some(i)));
            }
        }
    }
    let ownership = &engine.ownership;
    reconstruct_path(heap, &starts, obj, |h, o| {
        let flags = match h.flags_of(o) {
            Ok(flags) => flags,
            Err(_) => return false,
        };
        if flags.contains(Flags::OWNER) {
            return false;
        }
        if flags.contains(Flags::OWNEE) && !ownership.entry_contains(j, o) {
            return false;
        }
        true
    })
    .unwrap_or_default()
}

/// A census-only shard for the Base parallel path: tallies marked objects
/// and otherwise behaves exactly like [`NoParVisitor`].
#[derive(Debug, Default)]
struct CensusShard {
    sink: CensusSink,
}

impl ParVisitor for CensusShard {
    fn visit_new(&mut self, heap: &Heap, obj: ObjRef, _prev: Flags, _item: &WorkItem) -> Visit {
        self.sink.observe(heap, obj);
        Visit::Descend
    }
    fn visit_marked(&mut self, _h: &Heap, _o: ObjRef, _p: Flags, _i: &WorkItem) {}
}

/// A full parallel cycle for the Base (uninstrumented) configuration:
/// plain parallel mark + sequential sweep, no hooks. With `census` the
/// plain visitors are swapped for census-only shards; without it the
/// uninstrumented mark loop is untouched.
pub(crate) fn collect_parallel_base(
    heap: &mut Heap,
    roots: &[ObjRef],
    workers: usize,
    census: bool,
) -> Result<ParCycle, HeapError> {
    let cross_check = census && cfg!(debug_assertions) && !heap_has_stale_marks(heap);
    let cycle_start = Instant::now();
    let t = Instant::now();
    let seeds: Vec<WorkItem> = roots
        .iter()
        .filter(|r| r.is_some())
        .map(|&r| WorkItem::seed(r, CTX_NONE))
        .collect();
    let (stats, sink) = if census {
        let mut visitors: Vec<CensusShard> = (0..workers.max(1))
            .map(|_| CensusShard::default())
            .collect();
        let stats = mark_parallel(heap, seeds, &mut visitors)?;
        let mut merged = CensusSink::new();
        for v in visitors {
            merged.absorb(v.sink);
        }
        (stats, Some(merged))
    } else {
        let mut visitors = vec![NoParVisitor; workers.max(1)];
        (mark_parallel(heap, seeds, &mut visitors)?, None)
    };
    let mark = t.elapsed();

    #[cfg(debug_assertions)]
    {
        let problems = gca_collector::tricolor_violations(heap);
        assert!(problems.is_empty(), "tri-color at trace_done: {problems:?}");
    }

    let t = Instant::now();
    let (objects_swept, words_swept) = sweep_heap(heap, &mut NoHooks)?;
    let sweep = t.elapsed();

    if cross_check {
        if let Some(sink) = &sink {
            sink.verify_live_totals(heap);
        }
    }
    Ok(ParCycle {
        cycle: CycleStats {
            total: cycle_start.elapsed(),
            pre_root: Duration::ZERO,
            mark,
            sweep,
            objects_marked: stats.objects_marked,
            edges_traced: stats.edges_traced,
            pre_root_edges: 0,
            objects_swept,
            words_swept,
        },
        worker_mark: stats.worker_busy,
        census: sink,
    })
}
