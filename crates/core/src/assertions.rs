//! The fluent assertion facade: [`Vm::assertions`] returns an
//! [`Assertions`] handle that groups the paper's five assertion kinds
//! behind one entry point.
//!
//! ```
//! use gc_assertions::{Vm, VmConfig};
//!
//! # fn main() -> Result<(), gc_assertions::VmError> {
//! let mut vm = Vm::new(VmConfig::builder().build());
//! let m = vm.main();
//! let node = vm.register_class("Node", &["next"]);
//! let singleton = vm.register_class("Cache", &[]);
//!
//! let a = vm.alloc_rooted(m, node, 1, 0)?;
//! let b = vm.alloc(m, node, 1, 0)?;
//! vm.set_field(a, 0, b)?;
//!
//! vm.assertions().unshared(b)?;
//! vm.assertions().instances(singleton, 1)?;
//! vm.assertions().owned_by(a, b)?;
//! # Ok(())
//! # }
//! ```
//!
//! Region assertions become a scope guard: the region ends — and every
//! object allocated inside it is asserted dead — when the guard drops
//! (or explicitly, with an error path, via [`RegionGuard::finish`]).

use gca_heap::{ClassId, ObjRef};

use crate::error::VmError;
use crate::mutator::MutatorId;
use crate::vm::Vm;

/// Fluent handle over the five GC assertion kinds (§2 of the paper),
/// obtained from [`Vm::assertions`]. The legacy `Vm::assert_*` methods
/// delegate here.
#[derive(Debug)]
pub struct Assertions<'vm> {
    vm: &'vm mut Vm,
}

impl<'vm> Assertions<'vm> {
    pub(crate) fn new(vm: &'vm mut Vm) -> Self {
        Assertions { vm }
    }

    /// `assert-dead(p)`: triggered at the next collection if `p` is still
    /// reachable (§2.3.1).
    ///
    /// # Errors
    ///
    /// [`VmError::BaseMode`], [`VmError::Halted`] or reference-validity
    /// errors.
    pub fn dead(self, p: ObjRef) -> Result<(), VmError> {
        self.vm.check_running()?;
        self.vm.check_instrumented()?;
        self.vm.calls.dead += 1;
        self.vm.engine.assert_dead(&mut self.vm.heap, p)
    }

    /// `assert-instances(T, I)`: triggered when more than `limit` live
    /// instances of `class` exist at collection time (§2.4.1). Passing 0
    /// asserts that no instances exist at GC time.
    ///
    /// # Errors
    ///
    /// Mode/halt errors.
    pub fn instances(self, class: ClassId, limit: u32) -> Result<(), VmError> {
        self.vm.check_running()?;
        self.vm.check_instrumented()?;
        self.vm.calls.instances += 1;
        self.vm.heap.registry_mut().track_instances(class, limit);
        Ok(())
    }

    /// `assert-unshared(p)`: triggered if `p` is found with more than one
    /// incoming pointer (§2.5.1).
    ///
    /// # Errors
    ///
    /// Mode/halt or reference-validity errors.
    pub fn unshared(self, p: ObjRef) -> Result<(), VmError> {
        self.vm.check_running()?;
        self.vm.check_instrumented()?;
        self.vm.calls.unshared += 1;
        self.vm.engine.assert_unshared(&mut self.vm.heap, p)
    }

    /// `assert-ownedby(p, q)`: triggered if, at a collection, no path to
    /// ownee `q` passes through owner `p` (§2.5.2).
    ///
    /// # Errors
    ///
    /// [`VmError::OwnershipConflict`] for disjointness violations, plus
    /// mode/halt and reference-validity errors.
    pub fn owned_by(self, owner: ObjRef, ownee: ObjRef) -> Result<(), VmError> {
        self.vm.check_running()?;
        self.vm.check_instrumented()?;
        self.vm.calls.owned_by += 1;
        self.vm
            .engine
            .assert_owned_by(&mut self.vm.heap, owner, ownee)
    }

    /// `start-region()` … `assert-alldead()` as a scope guard (§2.3.2):
    /// begins an allocation region on mutator `m` and returns a
    /// [`RegionGuard`] that ends the region — asserting everything
    /// allocated inside it dead — when dropped. The guard derefs to the
    /// [`Vm`], so the region body keeps full VM access.
    ///
    /// ```
    /// use gc_assertions::{Vm, VmConfig};
    ///
    /// # fn main() -> Result<(), gc_assertions::VmError> {
    /// let mut vm = Vm::new(VmConfig::builder().build());
    /// let m = vm.main();
    /// let scratch = vm.register_class("Scratch", &[]);
    /// {
    ///     let mut region = vm.assertions().region(m)?;
    ///     region.alloc(m, scratch, 0, 4)?; // temporary work
    /// } // region ends here; the scratch object is asserted dead
    /// assert_eq!(vm.assertion_calls().region_objects, 1);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`VmError::RegionActive`] if `m` already has a region, plus the
    /// mode/halt errors.
    pub fn region(self, m: MutatorId) -> Result<RegionGuard<'vm>, VmError> {
        self.vm.start_region(m)?;
        Ok(RegionGuard {
            vm: self.vm,
            m,
            armed: true,
        })
    }
}

/// Scope guard for a region assertion, created by [`Assertions::region`].
///
/// Dropping the guard ends the region and asserts everything allocated
/// inside it dead, discarding errors (a halted VM, say). Call
/// [`RegionGuard::finish`] instead to observe the count and any error.
#[derive(Debug)]
pub struct RegionGuard<'vm> {
    vm: &'vm mut Vm,
    m: MutatorId,
    armed: bool,
}

impl RegionGuard<'_> {
    /// The mutator whose region this guard closes.
    pub fn mutator(&self) -> MutatorId {
        self.m
    }

    /// Ends the region now, returning the number of objects asserted dead.
    ///
    /// # Errors
    ///
    /// As [`Vm::assert_alldead`].
    pub fn finish(mut self) -> Result<usize, VmError> {
        self.armed = false;
        self.vm.assert_alldead(self.m)
    }

    /// Abandons the region without asserting anything (the escape hatch
    /// for a region whose objects turned out to legitimately survive).
    ///
    /// # Errors
    ///
    /// [`VmError::NoRegion`] if the region was already closed elsewhere.
    pub fn cancel(mut self) -> Result<(), VmError> {
        self.armed = false;
        self.vm.cancel_region(self.m)
    }
}

impl std::ops::Deref for RegionGuard<'_> {
    type Target = Vm;

    fn deref(&self) -> &Vm {
        self.vm
    }
}

impl std::ops::DerefMut for RegionGuard<'_> {
    fn deref_mut(&mut self) -> &mut Vm {
        self.vm
    }
}

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.vm.assert_alldead(self.m);
        }
    }
}
