//! The owner/ownee table behind `assert-ownedby` (§2.5.2).

use std::collections::HashMap;

use gca_heap::{Flags, Heap, ObjRef};

use crate::error::VmError;

/// One owner and its ownee array. The paper stores "a pair of arrays, one
/// containing owner objects and the other containing arrays of ownee
/// objects, one for each owner", with ownee arrays sorted for binary
/// search; this struct is that layout.
///
/// Registration appends in O(1); the array is sorted lazily once per
/// collection ([`OwnershipTable::prepare_for_gc`]), so the total sorting
/// work per collection is the paper's n log n worst case and `assert-
/// ownedby` stays cheap on the mutator's critical path.
#[derive(Debug, Clone)]
pub(crate) struct OwnerEntry {
    pub(crate) owner: ObjRef,
    /// Class name captured at registration so reports can still name the
    /// owner after it dies.
    pub(crate) owner_class: String,
    /// Sorted between `prepare_for_gc` and the next registration.
    pub(crate) ownees: Vec<ObjRef>,
}

/// The set of registered owner/ownee pairs.
///
/// Invariants maintained here (the paper's restrictions):
///
/// * an object is never both an owner and an ownee,
/// * an ownee has exactly one owner (re-asserting moves it),
/// * an object never owns itself.
#[derive(Debug, Default)]
pub(crate) struct OwnershipTable {
    entries: Vec<OwnerEntry>,
    owner_index: HashMap<ObjRef, usize>,
    ownee_owner: HashMap<ObjRef, usize>,
}

impl OwnershipTable {
    pub(crate) fn new() -> OwnershipTable {
        OwnershipTable::default()
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn ownee_count(&self) -> usize {
        self.ownee_owner.len()
    }

    pub(crate) fn owner_at(&self, idx: usize) -> ObjRef {
        self.entries[idx].owner
    }

    pub(crate) fn entry(&self, idx: usize) -> &OwnerEntry {
        &self.entries[idx]
    }

    /// Table-based owner test; the engine's hot path uses the `OWNER`
    /// header bit instead, so this is only needed by tests.
    #[cfg(test)]
    pub(crate) fn is_owner(&self, r: ObjRef) -> bool {
        self.owner_index.contains_key(&r)
    }

    /// The entry index of `ownee`'s owner, if registered.
    pub(crate) fn owner_of(&self, ownee: ObjRef) -> Option<usize> {
        self.ownee_owner.get(&ownee).copied()
    }

    /// Binary search of entry `idx`'s sorted ownee array.
    pub(crate) fn entry_contains(&self, idx: usize, ownee: ObjRef) -> bool {
        self.entries[idx].ownees.binary_search(&ownee).is_ok()
    }

    /// Registers `owner` owns `ownee`, setting the `OWNEE` header bit.
    ///
    /// # Errors
    ///
    /// [`VmError::OwnershipConflict`] if the pair violates the
    /// disjointness restrictions.
    pub(crate) fn add(
        &mut self,
        heap: &mut Heap,
        owner: ObjRef,
        ownee: ObjRef,
    ) -> Result<(), VmError> {
        if owner == ownee {
            return Err(VmError::OwnershipConflict(format!(
                "object {owner} cannot own itself"
            )));
        }
        if self.ownee_owner.contains_key(&owner) {
            return Err(VmError::OwnershipConflict(format!(
                "object {owner} is already an ownee and cannot also be an owner"
            )));
        }
        if self.owner_index.contains_key(&ownee) {
            return Err(VmError::OwnershipConflict(format!(
                "object {ownee} is already an owner and cannot also be an ownee"
            )));
        }

        // Re-asserting moves the ownee to its new owner; asserting the
        // same pair again is a no-op.
        if let Some(&old_idx) = self.ownee_owner.get(&ownee) {
            if let Some(&new_idx) = self.owner_index.get(&owner) {
                if old_idx == new_idx {
                    return Ok(());
                }
            }
            let ownees = &mut self.entries[old_idx].ownees;
            if let Some(pos) = ownees.iter().position(|&o| o == ownee) {
                ownees.remove(pos);
            }
        }

        let idx = match self.owner_index.get(&owner) {
            Some(&idx) => idx,
            None => {
                let owner_class = {
                    let o = heap.get(owner).map_err(VmError::Heap)?;
                    heap.registry().name(o.class()).to_owned()
                };
                let idx = self.entries.len();
                self.entries.push(OwnerEntry {
                    owner,
                    owner_class,
                    ownees: Vec::new(),
                });
                self.owner_index.insert(owner, idx);
                // The OWNER header bit lets the tracer recognize owner
                // boundaries with a flag test instead of a map lookup on
                // every traced object.
                heap.set_flag(owner, Flags::OWNER).map_err(VmError::Heap)?;
                idx
            }
        };

        // O(1) append; the `ownee_owner` map guarantees no duplicates.
        self.entries[idx].ownees.push(ownee);
        self.ownee_owner.insert(ownee, idx);
        heap.set_flag(ownee, Flags::OWNEE).map_err(VmError::Heap)?;
        Ok(())
    }

    /// Sorts every ownee array, restoring the binary-search invariant the
    /// tracing-time checks rely on. Called once at the start of each
    /// collection — this is where the paper's n log n worst case lives.
    pub(crate) fn prepare_for_gc(&mut self) {
        for entry in &mut self.entries {
            if !entry.ownees.is_sorted() {
                entry.ownees.sort_unstable();
            }
        }
    }

    /// Unregisters an ownee (e.g. the program legitimately removed and
    /// discarded it); clears its `OWNEE` bit if it is still live.
    pub(crate) fn remove_ownee(&mut self, heap: &mut Heap, ownee: ObjRef) -> bool {
        match self.ownee_owner.remove(&ownee) {
            Some(idx) => {
                let ownees = &mut self.entries[idx].ownees;
                if let Some(pos) = ownees.iter().position(|&o| o == ownee) {
                    ownees.remove(pos);
                }
                if heap.is_valid(ownee) {
                    let _ = heap.clear_flag(ownee, Flags::OWNEE);
                }
                true
            }
            None => false,
        }
    }

    /// Post-sweep maintenance ("we must remove each unreachable ownee
    /// after a GC", §3.1.2): drops the ownees and owners the sweep just
    /// freed — the engine records them from its `swept` hook, so this
    /// costs O(dead) rather than a rescan of the whole table. Entries of
    /// dead owners are dropped with the `OWNEE` bit of their surviving
    /// ownees cleared, so the next collection does not check an
    /// unregistered pair.
    ///
    /// Returns, for each dead owner, its class name and surviving ownees
    /// (consumed by the strict-owner-lifetime extension).
    pub(crate) fn retire(
        &mut self,
        heap: &mut Heap,
        dead_ownees: &[ObjRef],
        dead_owners: &[ObjRef],
    ) -> Vec<(String, Vec<ObjRef>)> {
        // 1. Drop dead ownees from their entries, grouped so each affected
        //    entry is filtered once.
        if !dead_ownees.is_empty() {
            let mut by_entry: HashMap<usize, Vec<ObjRef>> = HashMap::new();
            for &o in dead_ownees {
                if let Some(idx) = self.ownee_owner.remove(&o) {
                    by_entry.entry(idx).or_default().push(o);
                }
            }
            for (idx, mut dead) in by_entry {
                dead.sort_unstable();
                self.entries[idx]
                    .ownees
                    .retain(|o| dead.binary_search(o).is_err());
            }
        }

        if dead_owners.is_empty() {
            return Vec::new();
        }

        // 2. Retire entries whose owner died.
        let mut retired = Vec::new();
        for &owner in dead_owners {
            let Some(&idx) = self.owner_index.get(&owner) else {
                continue;
            };
            let entry = &self.entries[idx];
            for &ownee in &entry.ownees {
                let _ = heap.clear_flag(ownee, Flags::OWNEE);
            }
            retired.push((entry.owner_class.clone(), entry.ownees.clone()));
        }

        // 3. Rebuild the table without the dead entries (indices shift, so
        //    both maps are rebuilt).
        let old = std::mem::take(&mut self.entries);
        self.owner_index.clear();
        self.ownee_owner.clear();
        for entry in old {
            if dead_owners.contains(&entry.owner) {
                continue;
            }
            let idx = self.entries.len();
            self.owner_index.insert(entry.owner, idx);
            for &ownee in &entry.ownees {
                self.ownee_owner.insert(ownee, idx);
            }
            self.entries.push(entry);
        }
        retired
    }

    /// Scan-based retirement used by unit tests: computes the dead sets by
    /// checking every participant's validity, then delegates to
    /// [`OwnershipTable::retire`].
    #[cfg(test)]
    pub(crate) fn retire_dead(&mut self, heap: &mut Heap) -> Vec<(String, Vec<ObjRef>)> {
        let dead_ownees: Vec<ObjRef> = self
            .ownee_owner
            .keys()
            .copied()
            .filter(|&o| !heap.is_valid(o))
            .collect();
        let dead_owners: Vec<ObjRef> = self
            .entries
            .iter()
            .map(|e| e.owner)
            .filter(|&o| !heap.is_valid(o))
            .collect();
        self.retire(heap, &dead_ownees, &dead_owners)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Heap, ObjRef, ObjRef, ObjRef) {
        let mut heap = Heap::new();
        let c = heap.register_class("C", &["f", "g"]);
        let owner = heap.alloc(c, 2, 0).unwrap();
        let a = heap.alloc(c, 2, 0).unwrap();
        let b = heap.alloc(c, 2, 0).unwrap();
        (heap, owner, a, b)
    }

    #[test]
    fn add_and_query() {
        let (mut heap, owner, a, b) = setup();
        let mut t = OwnershipTable::new();
        t.add(&mut heap, owner, a).unwrap();
        t.add(&mut heap, owner, b).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.ownee_count(), 2);
        assert!(t.is_owner(owner));
        assert!(!t.is_owner(a));
        assert_eq!(t.owner_of(a), Some(0));
        assert!(t.entry_contains(0, a));
        assert!(t.entry_contains(0, b));
        assert!(heap.has_flag(a, Flags::OWNEE).unwrap());
        assert_eq!(t.entry(0).owner_class, "C");
    }

    #[test]
    fn self_ownership_rejected() {
        let (mut heap, owner, _, _) = setup();
        let mut t = OwnershipTable::new();
        assert!(matches!(
            t.add(&mut heap, owner, owner),
            Err(VmError::OwnershipConflict(_))
        ));
    }

    #[test]
    fn owner_ownee_role_conflicts_rejected() {
        let (mut heap, owner, a, b) = setup();
        let mut t = OwnershipTable::new();
        t.add(&mut heap, owner, a).unwrap();
        // a is an ownee; it cannot become an owner.
        assert!(matches!(
            t.add(&mut heap, a, b),
            Err(VmError::OwnershipConflict(_))
        ));
        // owner is an owner; it cannot become an ownee.
        t.add(&mut heap, b, owner).unwrap_err();
    }

    #[test]
    fn reassert_moves_ownee() {
        let (mut heap, owner, a, _) = setup();
        let c = heap.register_class("C", &[]);
        let owner2 = heap.alloc(c, 0, 0).unwrap();
        let mut t = OwnershipTable::new();
        t.add(&mut heap, owner, a).unwrap();
        t.add(&mut heap, owner2, a).unwrap();
        assert_eq!(t.owner_of(a), Some(1));
        assert!(!t.entry_contains(0, a));
        assert!(t.entry_contains(1, a));
        assert_eq!(t.ownee_count(), 1);
    }

    #[test]
    fn remove_ownee_clears_flag() {
        let (mut heap, owner, a, _) = setup();
        let mut t = OwnershipTable::new();
        t.add(&mut heap, owner, a).unwrap();
        assert!(t.remove_ownee(&mut heap, a));
        assert!(!t.remove_ownee(&mut heap, a));
        assert!(!heap.has_flag(a, Flags::OWNEE).unwrap());
        assert_eq!(t.ownee_count(), 0);
    }

    #[test]
    fn retire_dead_ownees() {
        let (mut heap, owner, a, b) = setup();
        let mut t = OwnershipTable::new();
        t.add(&mut heap, owner, a).unwrap();
        t.add(&mut heap, owner, b).unwrap();
        heap.free(a).unwrap();
        let retired = t.retire_dead(&mut heap);
        assert!(retired.is_empty()); // owner still alive
        assert_eq!(t.ownee_count(), 1);
        assert!(t.entry_contains(0, b));
    }

    #[test]
    fn retire_dead_owner_clears_surviving_ownee_flags() {
        let (mut heap, owner, a, b) = setup();
        let mut t = OwnershipTable::new();
        t.add(&mut heap, owner, a).unwrap();
        t.add(&mut heap, owner, b).unwrap();
        heap.free(owner).unwrap();
        heap.free(b).unwrap();
        let retired = t.retire_dead(&mut heap);
        assert_eq!(retired.len(), 1);
        let (class, survivors) = &retired[0];
        assert_eq!(class, "C");
        assert_eq!(survivors.as_slice(), &[a]);
        assert!(t.is_empty());
        assert_eq!(t.ownee_count(), 0);
        assert!(!heap.has_flag(a, Flags::OWNEE).unwrap());
    }

    #[test]
    fn retire_rebuilds_indices() {
        // Two owners; kill the first; the second's index must be remapped.
        let (mut heap, owner1, a, b) = setup();
        let c = heap.register_class("C", &[]);
        let owner2 = heap.alloc(c, 0, 0).unwrap();
        let mut t = OwnershipTable::new();
        t.add(&mut heap, owner1, a).unwrap();
        t.add(&mut heap, owner2, b).unwrap();
        heap.free(owner1).unwrap();
        t.retire_dead(&mut heap);
        assert_eq!(t.len(), 1);
        assert_eq!(t.owner_at(0), owner2);
        assert_eq!(t.owner_of(b), Some(0));
        assert!(t.entry_contains(0, b));
        assert_eq!(t.owner_of(a), None);
    }
}
