//! VM-side census state: allocation-site tagging and post-cycle
//! attribution.
//!
//! The collector's [`CensusSink`] tallies classes and slots at mark time
//! but deliberately knows no names. This module holds the other half:
//!
//! * **Allocation sites** — an interned string table of site labels plus a
//!   slot-indexed side table recording which site allocated each heap
//!   slot. Tagging is a single `Vec` store on [`crate::Vm::alloc`]'s path
//!   (and nothing at all when the census is off).
//! * **Attribution** — after a cycle completes, [`CensusState::build_data`]
//!   resolves the sink's class ids against the type registry and its
//!   marked slots against the site table. This is sound because every
//!   marked object survives the sweep, so its slot still resolves.
//! * **The recorder** — a [`HeapCensus`] fed one [`CensusData`] per cycle,
//!   which maintains the drift windows and serves `Vm::census()`.

use std::collections::HashMap;

use gca_collector::CensusSink;
use gca_heap::{Heap, ObjRef};
use gca_telemetry::{CensusData, CensusEntry, HeapCensus};

/// Heap words are u64s.
const WORD_BYTES: u64 = 8;

/// Site id 0 is reserved for allocations made with no site set.
const UNATTRIBUTED: u32 = 0;

/// An interned allocation-site label, obtained from
/// [`crate::Vm::alloc_site`] and installed with
/// [`crate::Vm::set_alloc_site`]. Copy-cheap; compares by identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocSite(pub(crate) u32);

impl AllocSite {
    /// The default site: allocations made while no site is set are
    /// attributed to `<unattributed>`.
    pub const UNATTRIBUTED: AllocSite = AllocSite(UNATTRIBUTED);
}

/// All census state owned by the VM (boxed, present only when
/// [`crate::VmConfig::census`] is set).
#[derive(Debug)]
pub(crate) struct CensusState {
    site_names: Vec<String>,
    site_ids: HashMap<String, u32>,
    current_site: u32,
    /// Slot-indexed: which site allocated the object currently in each
    /// heap slot. Stale entries for freed slots are overwritten by the
    /// next allocation in that slot and never read meanwhile (attribution
    /// only looks up slots of marked — live — objects).
    site_of: Vec<u32>,
    /// The rolling recorder behind `Vm::census()`.
    pub(crate) recorder: HeapCensus,
}

impl CensusState {
    pub(crate) fn new() -> CensusState {
        let unattributed = "<unattributed>".to_owned();
        CensusState {
            site_ids: HashMap::from([(unattributed.clone(), UNATTRIBUTED)]),
            site_names: vec![unattributed],
            current_site: UNATTRIBUTED,
            site_of: Vec::new(),
            recorder: HeapCensus::new(),
        }
    }

    /// Interns a site label, returning its id.
    pub(crate) fn intern(&mut self, name: &str) -> AllocSite {
        if let Some(&id) = self.site_ids.get(name) {
            return AllocSite(id);
        }
        let id = self.site_names.len() as u32;
        self.site_names.push(name.to_owned());
        self.site_ids.insert(name.to_owned(), id);
        AllocSite(id)
    }

    /// Replaces the current site, returning the previous one so callers
    /// can scope-restore. A site id this table never issued (e.g. one
    /// from another VM) falls back to `<unattributed>`.
    pub(crate) fn set_current(&mut self, site: AllocSite) -> AllocSite {
        let id = if (site.0 as usize) < self.site_names.len() {
            site.0
        } else {
            UNATTRIBUTED
        };
        AllocSite(std::mem::replace(&mut self.current_site, id))
    }

    /// Tags a freshly-allocated slot with the current site.
    pub(crate) fn note_alloc(&mut self, slot: u32) {
        let slot = slot as usize;
        if self.site_of.len() <= slot {
            self.site_of.resize(slot + 1, UNATTRIBUTED);
        }
        self.site_of[slot] = self.current_site;
    }

    fn site_name(&self, id: u32) -> &str {
        &self.site_names[id as usize]
    }

    /// Resolves a mark-time sink into named, normalized census data.
    /// Must run after the cycle and before any further mutation frees
    /// marked objects (the VM calls it straight after the sweep).
    pub(crate) fn build_data(&self, heap: &Heap, sink: &CensusSink) -> CensusData {
        let classes = sink
            .classes()
            .map(|(class, objects, words)| CensusEntry {
                name: heap.registry().name(class).to_owned(),
                objects,
                bytes: words * WORD_BYTES,
            })
            .collect();

        let mut per_site: HashMap<u32, (u64, u64)> = HashMap::new();
        for &slot in sink.marked_slots() {
            if let Some((_, o)) = heap.object_at(slot) {
                let site = self
                    .site_of
                    .get(slot as usize)
                    .copied()
                    .unwrap_or(UNATTRIBUTED);
                let tally = per_site.entry(site).or_insert((0, 0));
                tally.0 += 1;
                tally.1 += o.size_words() as u64 * WORD_BYTES;
            }
        }
        let sites = per_site
            .into_iter()
            .map(|(site, (objects, bytes))| CensusEntry {
                name: self.site_name(site).to_owned(),
                objects,
                bytes,
            })
            .collect();

        let mut data = CensusData { classes, sites };
        data.normalize();
        data
    }

    /// Builds nursery-survivor census data after a minor collection:
    /// every still-valid entry of the taken young list was promoted by
    /// the sweep. Minor census covers the nursery only (untouched old
    /// objects are invisible to a minor trace) and is kept out of the
    /// drift windows for that reason.
    pub(crate) fn build_minor_data(&self, heap: &Heap, young: &[ObjRef]) -> CensusData {
        let mut per_class: HashMap<String, (u64, u64)> = HashMap::new();
        let mut per_site: HashMap<u32, (u64, u64)> = HashMap::new();
        for &y in young {
            let Ok(o) = heap.get(y) else { continue };
            let bytes = o.size_words() as u64 * WORD_BYTES;
            let class = per_class
                .entry(heap.registry().name(o.class()).to_owned())
                .or_insert((0, 0));
            class.0 += 1;
            class.1 += bytes;
            let site_id = self
                .site_of
                .get(y.index() as usize)
                .copied()
                .unwrap_or(UNATTRIBUTED);
            let site = per_site.entry(site_id).or_insert((0, 0));
            site.0 += 1;
            site.1 += bytes;
        }
        let mut data = CensusData {
            classes: per_class
                .into_iter()
                .map(|(name, (objects, bytes))| CensusEntry {
                    name,
                    objects,
                    bytes,
                })
                .collect(),
            sites: per_site
                .into_iter()
                .map(|(site, (objects, bytes))| CensusEntry {
                    name: self.site_name(site).to_owned(),
                    objects,
                    bytes,
                })
                .collect(),
        };
        data.normalize();
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut s = CensusState::new();
        let a = s.intern("Foo::bar");
        let b = s.intern("Foo::bar");
        let c = s.intern("Other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(s.site_name(a.0), "Foo::bar");
    }

    #[test]
    fn unattributed_is_the_default_site() {
        let mut s = CensusState::new();
        assert_eq!(s.intern("<unattributed>"), AllocSite::UNATTRIBUTED);
        s.note_alloc(3);
        assert_eq!(s.site_of, vec![0, 0, 0, 0]);
    }

    #[test]
    fn set_current_returns_previous() {
        let mut s = CensusState::new();
        let site = s.intern("X");
        let prev = s.set_current(site);
        assert_eq!(prev, AllocSite::UNATTRIBUTED);
        s.note_alloc(0);
        assert_eq!(s.site_of, vec![site.0]);
        let prev = s.set_current(AllocSite::UNATTRIBUTED);
        assert_eq!(prev, site);
    }

    #[test]
    fn build_data_resolves_names_and_sites() {
        let mut heap = Heap::new();
        let node = heap.register_class("Node", &["next"]);
        let mut s = CensusState::new();
        let site = s.intern("test::mk");
        s.set_current(site);
        let a = heap.alloc(node, 1, 0).unwrap();
        s.note_alloc(a.index());
        s.set_current(AllocSite::UNATTRIBUTED);
        let b = heap.alloc(node, 1, 0).unwrap();
        s.note_alloc(b.index());

        let mut sink = CensusSink::new();
        sink.observe(&heap, a);
        sink.observe(&heap, b);
        let data = s.build_data(&heap, &sink);
        assert_eq!(data.classes.len(), 1);
        assert_eq!(data.classes[0].name, "Node");
        assert_eq!(data.classes[0].objects, 2);
        assert_eq!(data.classes[0].bytes, 2 * 3 * 8); // header 2 + 1 ref
        let names: Vec<&str> = data.sites.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["<unattributed>", "test::mk"]); // normalized
        assert!(data.sites.iter().all(|e| e.objects == 1 && e.bytes == 24));
    }
}
