//! Per-collection reports.

use std::fmt;

use gca_collector::CycleStats;

use crate::violation::Violation;

/// Per-cycle assertion-checking counters — the quantities the paper
/// reports in §3.1.2 (e.g. "during each GC we check on average 15,274
/// ownee objects").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// Owner objects whose subgraphs the ownership phase scanned.
    pub owners_scanned: u64,
    /// Ownee objects checked for correct ownership during this cycle.
    pub ownees_checked: u64,
    /// Ownees taken off the deferred queue and scanned after the owner
    /// scans completed.
    pub deferred_ownees_processed: u64,
    /// Objects whose `DEAD` bit was found set during tracing (reachable
    /// asserted-dead objects; equals the dead-reachable violations plus
    /// re-encounters).
    pub dead_bits_seen: u64,
    /// Live instances counted across all tracked classes this cycle.
    pub tracked_instances_counted: u64,
    /// Objects whose `UNSHARED` bit was found set on an extra incoming
    /// edge during tracing (each sighting is one `assert-unshared`
    /// header-bit check that fired).
    pub unshared_bits_seen: u64,
}

/// The result of one [`crate::Vm::collect`] call: collector timing plus
/// the assertion violations detected during the cycle.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Collector phase timings and object counts for the cycle.
    pub cycle: CycleStats,
    /// Violations detected this cycle, in detection order.
    pub violations: Vec<Violation>,
    /// Assertion-checking work performed this cycle.
    pub counters: CheckCounters,
    /// `true` if the VM halted because of a violation under
    /// [`crate::Reaction::Halt`].
    pub halted: bool,
}

impl GcReport {
    /// Returns `true` if no assertion failed this cycle.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for GcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violation(s), {} ownees checked, {} owners scanned, cycle {:?}",
            self.violations.len(),
            self.counters.ownees_checked,
            self.counters.owners_scanned,
            self.cycle.total
        )?;
        if self.halted {
            write!(f, " [halted]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report() {
        let r = GcReport::default();
        assert!(r.is_clean());
        assert!(!r.halted);
        assert!(r.to_string().contains("0 violation(s)"));
    }
}
