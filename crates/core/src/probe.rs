//! QVM-style heap probes behind one entry point: [`Vm::probe`] returns a
//! [`Probe`] handle whose queries each run a full traversal *right now*.
//!
//! Probes are the comparison point for the paper's central performance
//! argument: an immediate query costs a complete heap trace, while GC
//! assertions batch the same questions into the collector's normal trace
//! for free. All probe machinery lives in this module; the legacy
//! `Vm::probe_*` methods delegate here.
//!
//! ```
//! use gc_assertions::{Vm, VmConfig};
//!
//! # fn main() -> Result<(), gc_assertions::VmError> {
//! let mut vm = Vm::new(VmConfig::builder().build());
//! let m = vm.main();
//! let node = vm.register_class("Node", &["next"]);
//! let a = vm.alloc_rooted(m, node, 1, 0)?;
//! let b = vm.alloc(m, node, 1, 0)?;
//! vm.set_field(a, 0, b)?;
//!
//! assert!(vm.probe().reachable(b)?);
//! assert_eq!(vm.probe().instances(node)?, 2);
//! let path = vm.probe().path(b)?.expect("b is reachable");
//! assert_eq!(path.target(), Some(b));
//! # Ok(())
//! # }
//! ```

use gca_collector::{HeapPath, TraceCtx, TraceHooks, Tracer, Visit};
use gca_heap::{ClassId, Flags, Heap, HeapError, ObjRef};

use crate::error::VmError;
use crate::vm::Vm;

/// Fluent handle over the immediate heap queries, obtained from
/// [`Vm::probe`].
#[derive(Debug)]
pub struct Probe<'vm> {
    vm: &'vm mut Vm,
}

impl<'vm> Probe<'vm> {
    pub(crate) fn new(vm: &'vm mut Vm) -> Self {
        Probe { vm }
    }

    /// Is `target` reachable, and through what path? Runs a full
    /// path-tracking traversal; the heap is left unmodified (marks
    /// cleared). Returns `None` if `target` is dead or unreachable.
    ///
    /// # Errors
    ///
    /// Tracing errors ([`VmError::Heap`]) or [`VmError::Halted`].
    pub fn path(self, target: ObjRef) -> Result<Option<HeapPath>, VmError> {
        self.vm.check_running()?;
        if !self.vm.heap.is_valid(target) {
            return Ok(None);
        }
        let roots = self.vm.gather_roots();
        let mut finder = PathFinder {
            target,
            found: None,
        };
        run_traversal(&mut self.vm.heap, &roots, true, &mut finder)?;
        Ok(finder.found)
    }

    /// Is `target` reachable at all (probe-style `assert_dead`
    /// complement)? Same cost as [`Probe::path`].
    ///
    /// # Errors
    ///
    /// As [`Probe::path`].
    pub fn reachable(self, target: ObjRef) -> Result<bool, VmError> {
        Ok(self.path(target)?.is_some())
    }

    /// Counts the live (reachable) instances of `class` with a full
    /// traversal — the probe-style equivalent of `assert-instances`.
    ///
    /// # Errors
    ///
    /// Tracing errors or [`VmError::Halted`].
    pub fn instances(self, class: ClassId) -> Result<u32, VmError> {
        self.vm.check_running()?;
        let roots = self.vm.gather_roots();
        let mut counter = Counter { class, count: 0 };
        run_traversal(&mut self.vm.heap, &roots, false, &mut counter)?;
        Ok(counter.count)
    }

    /// Collects a root-to-object path for **every live instance** of
    /// `class`, in one traversal.
    ///
    /// The paper notes that when `assert-instances` fires, "the problem
    /// paths may have been traced earlier" and the user "will need to use
    /// other tools" (§2.7) — this is that tool: run it after an
    /// instance-limit violation to see exactly what keeps each instance
    /// alive.
    ///
    /// # Errors
    ///
    /// Tracing errors or [`VmError::Halted`].
    pub fn explain_instances(self, class: ClassId) -> Result<Vec<(ObjRef, HeapPath)>, VmError> {
        self.vm.check_running()?;
        let roots = self.vm.gather_roots();
        let mut finder = InstanceFinder {
            class,
            found: Vec::new(),
        };
        run_traversal(&mut self.vm.heap, &roots, true, &mut finder)?;
        Ok(finder.found)
    }

    /// Enumerates every heap reference into `target`: `(source object,
    /// field index)` pairs, plus whether any *root* references it.
    ///
    /// The complement of the `assert-unshared` report, which can only
    /// show the second path the tracer happened to find (§2.7) — this
    /// shows all of them. One pass over the live heap, no tracing.
    ///
    /// # Errors
    ///
    /// Reference-validity errors or [`VmError::Halted`].
    pub fn incoming_references(
        self,
        target: ObjRef,
    ) -> Result<(Vec<(ObjRef, usize)>, bool), VmError> {
        self.vm.check_running()?;
        if !self.vm.heap.is_valid(target) {
            return Err(VmError::Heap(HeapError::StaleRef(target)));
        }
        let mut edges = Vec::new();
        for (src, obj) in self.vm.heap.iter() {
            for (f, &r) in obj.refs().iter().enumerate() {
                if r == target {
                    edges.push((src, f));
                }
            }
        }
        let rooted = self.vm.gather_roots().contains(&target);
        Ok((edges, rooted))
    }
}

/// Runs one probe traversal from `roots` and clears the marks it left.
fn run_traversal<H: TraceHooks>(
    heap: &mut Heap,
    roots: &[ObjRef],
    paths: bool,
    hooks: &mut H,
) -> Result<(), VmError> {
    let mut tracer = Tracer::new();
    tracer.set_path_mode(paths);
    tracer.begin_cycle();
    for &r in roots {
        tracer.push_root(r);
    }
    tracer.drain(heap, hooks)?;
    clear_probe_marks(heap)?;
    Ok(())
}

/// Clears the marks left behind by a probe traversal.
fn clear_probe_marks(heap: &mut Heap) -> Result<(), VmError> {
    for pid in 0..heap.page_count() {
        heap.clear_flag_word(pid, Flags::PER_GC, u64::MAX);
    }
    Ok(())
}

struct PathFinder {
    target: ObjRef,
    found: Option<HeapPath>,
}

impl TraceHooks for PathFinder {
    fn wants_paths(&self) -> bool {
        true
    }
    fn visit_new(&mut self, heap: &mut Heap, obj: ObjRef, ctx: &TraceCtx<'_>) -> Visit {
        if obj == self.target && self.found.is_none() {
            self.found = Some(ctx.current_path(heap));
        }
        Visit::Descend
    }
}

struct Counter {
    class: ClassId,
    count: u32,
}

impl TraceHooks for Counter {
    fn visit_new(&mut self, heap: &mut Heap, obj: ObjRef, _ctx: &TraceCtx<'_>) -> Visit {
        if heap.get(obj).map(|o| o.class()) == Ok(self.class) {
            self.count += 1;
        }
        Visit::Descend
    }
}

struct InstanceFinder {
    class: ClassId,
    found: Vec<(ObjRef, HeapPath)>,
}

impl TraceHooks for InstanceFinder {
    fn wants_paths(&self) -> bool {
        true
    }
    fn visit_new(&mut self, heap: &mut Heap, obj: ObjRef, ctx: &TraceCtx<'_>) -> Visit {
        if heap.get(obj).map(|o| o.class()) == Ok(self.class) {
            self.found.push((obj, ctx.current_path(heap)));
        }
        Visit::Descend
    }
}
