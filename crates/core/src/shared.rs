//! Real-thread access to a VM: stop-the-world via a global lock.
//!
//! The paper's platform runs real Java threads and stops the world to
//! collect. [`SharedVm`] gives the reproduction the same shape with OS
//! threads: every VM operation takes the world lock, and since
//! collections happen inside an operation (allocation pressure or an
//! explicit `collect`), a collecting thread automatically has exclusive
//! access — all other mutators are stopped at the lock.
//!
//! [`VmThread`] is the per-thread face: it remembers its `MutatorId`, so
//! worker code reads like single-threaded VM code. Regions (§2.3.2) are
//! naturally per-thread, matching the paper's design.
//!
//! # Example
//!
//! ```
//! use gc_assertions::{SharedVm, VmConfig};
//! use std::thread;
//!
//! let shared = SharedVm::new(VmConfig::builder().build());
//! let class = shared.with(|vm| vm.register_class("Buf", &[]));
//!
//! let handles: Vec<_> = (0..4)
//!     .map(|_| {
//!         let t = shared.spawn_thread();
//!         thread::spawn(move || {
//!             for _ in 0..100 {
//!                 t.alloc(class, 0, 4).unwrap();
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! let report = shared.with(|vm| vm.collect()).unwrap();
//! assert!(report.is_clean());
//! ```

use std::sync::{Arc, Mutex, MutexGuard};

use gca_heap::{ClassId, ObjRef};

use crate::config::VmConfig;
use crate::error::VmError;
use crate::mutator::MutatorId;
use crate::report::GcReport;
use crate::vm::Vm;

/// A [`Vm`] shared between OS threads behind the world lock.
#[derive(Debug, Clone)]
pub struct SharedVm {
    inner: Arc<Mutex<Vm>>,
}

impl SharedVm {
    /// Creates a shared VM.
    pub fn new(config: VmConfig) -> SharedVm {
        SharedVm {
            inner: Arc::new(Mutex::new(Vm::new(config))),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Vm> {
        // A panic while holding the world lock poisons it; the heap
        // itself is never left inconsistent by a panicking *caller*
        // (operations are transactional at the API level), so recover.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Runs `f` with exclusive access to the VM (the world is stopped).
    pub fn with<R>(&self, f: impl FnOnce(&mut Vm) -> R) -> R {
        f(&mut self.lock())
    }

    /// Registers a mutator for a new worker thread and returns its
    /// per-thread handle.
    pub fn spawn_thread(&self) -> VmThread {
        let mutator = self.lock().spawn_mutator();
        VmThread {
            vm: SharedVm {
                inner: Arc::clone(&self.inner),
            },
            mutator,
        }
    }

    /// A handle bound to the main mutator.
    pub fn main_thread(&self) -> VmThread {
        let mutator = self.lock().main();
        VmThread {
            vm: SharedVm {
                inner: Arc::clone(&self.inner),
            },
            mutator,
        }
    }

    /// Stops the world and collects.
    ///
    /// # Errors
    ///
    /// As [`Vm::collect`].
    pub fn collect(&self) -> Result<GcReport, VmError> {
        self.lock().collect()
    }
}

/// A per-thread view of a [`SharedVm`]: the thread's `MutatorId` plus the
/// world lock. All methods lock for the duration of one VM operation.
#[derive(Debug, Clone)]
pub struct VmThread {
    vm: SharedVm,
    mutator: MutatorId,
}

impl VmThread {
    /// This thread's mutator id.
    pub fn mutator(&self) -> MutatorId {
        self.mutator
    }

    /// Runs `f` with the world stopped (escape hatch for multi-step
    /// operations that must be atomic with respect to other threads).
    pub fn with<R>(&self, f: impl FnOnce(&mut Vm, MutatorId) -> R) -> R {
        let m = self.mutator;
        self.vm.with(|vm| f(vm, m))
    }

    /// Allocates on behalf of this thread; see [`Vm::alloc`].
    ///
    /// # Errors
    ///
    /// As [`Vm::alloc`].
    pub fn alloc(
        &self,
        class: ClassId,
        nrefs: usize,
        data_words: usize,
    ) -> Result<ObjRef, VmError> {
        self.with(|vm, m| vm.alloc(m, class, nrefs, data_words))
    }

    /// Allocates and roots in this thread's current frame.
    ///
    /// # Errors
    ///
    /// As [`Vm::alloc_rooted`].
    pub fn alloc_rooted(
        &self,
        class: ClassId,
        nrefs: usize,
        data_words: usize,
    ) -> Result<ObjRef, VmError> {
        self.with(|vm, m| vm.alloc_rooted(m, class, nrefs, data_words))
    }

    /// Writes a reference field; see [`Vm::set_field`].
    ///
    /// # Errors
    ///
    /// As [`Vm::set_field`].
    pub fn set_field(&self, obj: ObjRef, field: usize, value: ObjRef) -> Result<ObjRef, VmError> {
        self.with(|vm, _| vm.set_field(obj, field, value))
    }

    /// Reads a reference field; see [`Vm::field`].
    ///
    /// # Errors
    ///
    /// As [`Vm::field`].
    pub fn field(&self, obj: ObjRef, field: usize) -> Result<ObjRef, VmError> {
        self.with(|vm, _| vm.field(obj, field))
    }

    /// Pushes a root frame on this thread's shadow stack.
    ///
    /// # Errors
    ///
    /// As [`Vm::push_frame`].
    pub fn push_frame(&self) -> Result<(), VmError> {
        self.with(|vm, m| vm.push_frame(m))
    }

    /// Pops this thread's top root frame.
    ///
    /// # Errors
    ///
    /// As [`Vm::pop_frame`].
    pub fn pop_frame(&self) -> Result<(), VmError> {
        self.with(|vm, m| vm.pop_frame(m))
    }

    /// Adds a root to this thread's current frame.
    ///
    /// # Errors
    ///
    /// As [`Vm::add_root`].
    pub fn add_root(&self, r: ObjRef) -> Result<usize, VmError> {
        self.with(|vm, m| vm.add_root(m, r))
    }

    /// `assert-dead` from this thread; see [`Vm::assert_dead`].
    ///
    /// # Errors
    ///
    /// As [`Vm::assert_dead`].
    pub fn assert_dead(&self, p: ObjRef) -> Result<(), VmError> {
        self.with(|vm, _| vm.assert_dead(p))
    }

    /// Starts this thread's allocation region; see [`Vm::start_region`].
    ///
    /// # Errors
    ///
    /// As [`Vm::start_region`].
    pub fn start_region(&self) -> Result<(), VmError> {
        self.with(|vm, m| vm.start_region(m))
    }

    /// Ends this thread's region; see [`Vm::assert_alldead`].
    ///
    /// # Errors
    ///
    /// As [`Vm::assert_alldead`].
    pub fn assert_alldead(&self) -> Result<usize, VmError> {
        self.with(|vm, m| vm.assert_alldead(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn concurrent_allocation_is_consistent() {
        let shared = SharedVm::new(
            VmConfig::builder()
                .heap_budget(4_000)
                .grow_on_oom(true)
                .build(),
        );
        let class = shared.with(|vm| vm.register_class("T", &[]));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let t = shared.spawn_thread();
                thread::spawn(move || {
                    for _ in 0..500 {
                        t.alloc(class, 0, 4).unwrap(); // churn
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        shared.collect().unwrap();
        let (allocs, live) =
            shared.with(|vm| (vm.heap_stats().allocations, vm.heap().live_objects()));
        assert_eq!(allocs, 8 * 500);
        assert_eq!(live, 0, "all churn reclaimed");
    }

    #[test]
    fn per_thread_regions_under_real_threads() {
        let shared = SharedVm::new(VmConfig::builder().heap_budget(1 << 20).build());
        let class = shared.with(|vm| vm.register_class("Req", &[]));
        let leak_holder = shared.with(|vm| {
            let m = vm.main();
            let holder_class = vm.register_class("Holder", &["h"]);
            let h = vm.alloc(m, holder_class, 1, 0).unwrap();
            vm.add_root(m, h).unwrap();
            h
        });

        // 4 clean workers, 2 leaky workers (each leaks exactly one
        // region object into the shared holder; last write wins, so at
        // least one leak is pinned).
        let mut joins = Vec::new();
        for leaky in [false, false, false, false, true] {
            let t = shared.spawn_thread();
            joins.push(thread::spawn(move || {
                for _ in 0..20 {
                    t.start_region().unwrap();
                    t.push_frame().unwrap();
                    let r = t.alloc_rooted(class, 0, 4).unwrap();
                    if leaky {
                        t.set_field(leak_holder, 0, r).unwrap();
                    }
                    t.pop_frame().unwrap();
                    t.assert_alldead().unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let report = shared.collect().unwrap();
        // Exactly the one object still held by the holder violates.
        assert_eq!(report.violations.len(), 1, "{report}");
    }

    #[test]
    fn thread_handles_are_cloneable_and_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SharedVm>();
        assert_send::<VmThread>();
        let shared = SharedVm::new(VmConfig::builder().build());
        let t = shared.main_thread();
        let t2 = t.clone();
        assert_eq!(t.mutator(), t2.mutator());
    }
}
