//! Pin test: sequential (`gc_threads = 1`) and parallel (`gc_threads = 4`)
//! collections report the **same violations with equivalent paths** on a
//! fixed heap exercising every path-carrying assertion kind.
//!
//! "Equivalent" paths need not be byte-identical: the sequential tracer
//! reports the discovery-order path of its worklist (§2.7), while the
//! parallel collector reconstructs a path on demand after the race-y
//! trace. Both must be *valid* — start at a root (or, for ownership
//! violations, at a child of the scanned owner), follow real heap edges,
//! and end at the violating object.

use gc_assertions::{HeapPath, ObjRef, ViolationKind, Vm, VmConfig};

/// Checks that `path` follows real heap edges and ends at `target`.
/// `valid_starts` are the legal first-step objects (roots, or the scanned
/// owner's children for ownership-phase reports).
fn assert_path_valid(vm: &Vm, path: &HeapPath, target: ObjRef, valid_starts: &[ObjRef]) {
    let steps = path.steps();
    assert!(!steps.is_empty(), "path for {target:?} is empty");
    assert_eq!(
        steps.last().unwrap().object,
        target,
        "path must end at the violation"
    );
    assert!(
        valid_starts.contains(&steps[0].object),
        "path must start at a root or scanned-owner child, got {:?}",
        steps[0].object
    );
    for w in steps.windows(2) {
        let field = w[1]
            .field
            .expect("non-first steps carry their incoming field");
        let actual = vm
            .heap()
            .ref_field(w[0].object, field)
            .expect("path step edge must be a live reference field");
        assert_eq!(
            actual, w[1].object,
            "path edge {:?}.{} does not point at {:?}",
            w[0].object, field, w[1].object
        );
    }
}

/// Builds the scenario heap and runs one collection. Layout:
///
/// ```text
/// root hub (Hub)                    root owner (Owner)
///   f0 -> chain a (N) --f0--> dead (N)     f0 -> ownee (Ownee)
///   f1 -> shared (N)  <--f0-- chain a      (orphan ownee has no owner path)
///   f2 -> orphan_ownee (Ownee)
/// ```
///
/// * `dead` is asserted dead but kept reachable      -> DeadReachable
/// * `shared` has edges from hub.f1 and chain_a.f1   -> Shared
/// * `orphan_ownee` is owned by `owner` but only
///   reachable via hub.f2 after the owner edge drops -> NotOwned
fn run(workers: usize) -> (Vm, Vec<gc_assertions::Violation>, Scenario) {
    let mut vm = Vm::new(
        VmConfig::builder()
            .heap_budget(10_000)
            .gc_threads(workers)
            .build(),
    );
    let hub_c = vm.register_class("Hub", &["f0", "f1", "f2"]);
    let n_c = vm.register_class("N", &["f0", "f1"]);
    let owner_c = vm.register_class("Owner", &["f0"]);
    let ownee_c = vm.register_class("Ownee", &[]);
    let m = vm.main();

    let hub = vm.alloc_rooted(m, hub_c, 3, 0).unwrap();
    let chain_a = vm.alloc(m, n_c, 2, 0).unwrap();
    vm.set_field(hub, 0, chain_a).unwrap();
    let dead = vm.alloc(m, n_c, 2, 0).unwrap();
    vm.set_field(chain_a, 0, dead).unwrap();
    let shared = vm.alloc(m, n_c, 2, 0).unwrap();
    vm.set_field(hub, 1, shared).unwrap();
    vm.set_field(chain_a, 1, shared).unwrap();

    let owner = vm.alloc_rooted(m, owner_c, 1, 0).unwrap();
    let good_ownee = vm.alloc(m, ownee_c, 0, 0).unwrap();
    vm.set_field(owner, 0, good_ownee).unwrap();
    vm.assertions().owned_by(owner, good_ownee).unwrap();

    let orphan_owner = vm.alloc_rooted(m, owner_c, 1, 0).unwrap();
    let orphan_ownee = vm.alloc(m, ownee_c, 0, 0).unwrap();
    vm.set_field(orphan_owner, 0, orphan_ownee).unwrap();
    vm.assertions()
        .owned_by(orphan_owner, orphan_ownee)
        .unwrap();
    // Keep the ownee reachable from the hub, then drop the owner's edge:
    // the only remaining path avoids the owner.
    vm.set_field(hub, 2, orphan_ownee).unwrap();
    vm.set_field(orphan_owner, 0, ObjRef::NULL).unwrap();

    vm.assertions().dead(dead).unwrap();
    vm.assertions().unshared(shared).unwrap();

    let report = vm.collect().unwrap();
    let scenario = Scenario {
        roots: vm.roots(),
        dead,
        shared,
        orphan_ownee,
    };
    (vm, report.violations, scenario)
}

struct Scenario {
    roots: Vec<ObjRef>,
    dead: ObjRef,
    shared: ObjRef,
    orphan_ownee: ObjRef,
}

fn summarize(violations: &[gc_assertions::Violation]) -> Vec<String> {
    let mut v: Vec<String> = violations.iter().map(|v| format!("{:?}", v.kind)).collect();
    v.sort();
    v
}

#[test]
fn sequential_and_parallel_report_same_violations_with_valid_paths() {
    let (seq_vm, seq_violations, seq_s) = run(1);
    let (par_vm, par_violations, par_s) = run(4);

    // Identical allocation order => identical ObjRef identities.
    assert_eq!(seq_s.dead, par_s.dead);
    assert_eq!(summarize(&seq_violations), summarize(&par_violations));
    assert_eq!(seq_violations.len(), 3, "dead + shared + not-owned");

    for (vm, violations, s) in [
        (&seq_vm, &seq_violations, &seq_s),
        (&par_vm, &par_violations, &par_s),
    ] {
        for v in violations.iter() {
            match &v.kind {
                ViolationKind::DeadReachable { object, .. } => {
                    assert_eq!(*object, s.dead);
                    assert_path_valid(vm, &v.path, *object, &s.roots);
                }
                ViolationKind::Shared { object, .. } => {
                    assert_eq!(*object, s.shared);
                    assert_path_valid(vm, &v.path, *object, &s.roots);
                }
                ViolationKind::NotOwned { ownee, .. } => {
                    assert_eq!(*ownee, s.orphan_ownee);
                    assert_path_valid(vm, &v.path, *ownee, &s.roots);
                }
                other => panic!("unexpected violation kind: {other:?}"),
            }
        }
    }
}

#[test]
fn parallel_auto_thread_count_collects_cleanly() {
    // gc_threads(0) = one worker per core; just pin that it works end to
    // end and finds the same violations.
    let (_vm, violations, _s) = run(0);
    assert_eq!(violations.len(), 3);
}
