//! Semantics of `assert-unshared` (§2.5.1).

mod common;

use gc_assertions::{ObjRef, ViolationKind, Vm};

fn vm() -> Vm {
    Vm::new(common::cfg().build())
}

#[test]
fn single_parent_passes() {
    let mut vm = vm();
    let c = vm.register_class("Node", &["l", "r"]);
    let m = vm.main();
    let root = vm.alloc_rooted(m, c, 2, 0).unwrap();
    let child = vm.alloc(m, c, 2, 0).unwrap();
    vm.set_field(root, 0, child).unwrap();
    vm.assert_unshared(child).unwrap();
    assert!(vm.collect().unwrap().is_clean());
}

#[test]
fn tree_become_dag_fires() {
    // A "tree" whose node gains a second parent: the classic use case.
    let mut vm = vm();
    let c = vm.register_class("TreeNode", &["l", "r"]);
    let m = vm.main();
    let root = vm.alloc_rooted(m, c, 2, 0).unwrap();
    let a = vm.alloc(m, c, 2, 0).unwrap();
    vm.set_field(root, 0, a).unwrap();
    let shared = vm.alloc(m, c, 2, 0).unwrap();
    vm.set_field(a, 0, shared).unwrap();
    vm.assert_unshared(shared).unwrap();
    assert!(vm.collect().unwrap().is_clean(), "still a tree");

    // The bug: root.r now also points at `shared`.
    vm.set_field(root, 1, shared).unwrap();
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    match &report.violations[0].kind {
        ViolationKind::Shared { object, class_name } => {
            assert_eq!(*object, shared);
            assert_eq!(class_name, "TreeNode");
        }
        other => panic!("wrong kind {other:?}"),
    }
    // The reported path is *a* path to the object (the second one found).
    assert_eq!(report.violations[0].path.target(), Some(shared));
}

#[test]
fn two_fields_of_same_parent_count_as_sharing() {
    // Two incoming pointers, even from one object, violate the property.
    let mut vm = vm();
    let c = vm.register_class("N", &["a", "b"]);
    let m = vm.main();
    let p = vm.alloc_rooted(m, c, 2, 0).unwrap();
    let x = vm.alloc(m, c, 2, 0).unwrap();
    vm.set_field(p, 0, x).unwrap();
    vm.set_field(p, 1, x).unwrap();
    vm.assert_unshared(x).unwrap();
    assert_eq!(vm.collect().unwrap().violations.len(), 1);
}

#[test]
fn root_plus_heap_edge_counts_as_sharing() {
    // A rooted object with one heap parent is encountered twice.
    let mut vm = vm();
    let c = vm.register_class("N", &["f"]);
    let m = vm.main();
    let p = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let x = vm.alloc_rooted(m, c, 1, 0).unwrap(); // root #1
    vm.set_field(p, 0, x).unwrap(); // heap edge #2
    vm.assert_unshared(x).unwrap();
    assert_eq!(vm.collect().unwrap().violations.len(), 1);
}

#[test]
fn sharing_repaired_before_gc_is_missed() {
    let mut vm = vm();
    let c = vm.register_class("N", &["a", "b"]);
    let m = vm.main();
    let p = vm.alloc_rooted(m, c, 2, 0).unwrap();
    let x = vm.alloc(m, c, 2, 0).unwrap();
    vm.set_field(p, 0, x).unwrap();
    vm.assert_unshared(x).unwrap();
    vm.set_field(p, 1, x).unwrap(); // transiently shared
    vm.set_field(p, 1, ObjRef::NULL).unwrap(); // repaired
    assert!(vm.collect().unwrap().is_clean());
}

#[test]
fn report_once_applies_across_gcs() {
    let mut vm = Vm::new(common::cfg().report_once(true).build());
    let c = vm.register_class("N", &["a", "b"]);
    let m = vm.main();
    let p = vm.alloc_rooted(m, c, 2, 0).unwrap();
    let x = vm.alloc(m, c, 2, 0).unwrap();
    vm.set_field(p, 0, x).unwrap();
    vm.set_field(p, 1, x).unwrap();
    vm.assert_unshared(x).unwrap();
    assert_eq!(vm.collect().unwrap().violations.len(), 1);
    assert_eq!(vm.collect().unwrap().violations.len(), 0);
}

#[test]
fn cycle_self_reference_is_second_pointer() {
    // x rooted and pointing at itself: root encounter + self edge.
    let mut vm = vm();
    let c = vm.register_class("N", &["f"]);
    let m = vm.main();
    let x = vm.alloc_rooted(m, c, 1, 0).unwrap();
    vm.set_field(x, 0, x).unwrap();
    vm.assert_unshared(x).unwrap();
    assert_eq!(vm.collect().unwrap().violations.len(), 1);
}

#[test]
fn many_unshared_nodes_checked_in_one_pass() {
    // A long singly linked list where every node is asserted unshared —
    // all pass in a single collection.
    let mut vm = vm();
    let c = vm.register_class("N", &["next"]);
    let m = vm.main();
    let head = vm.alloc_rooted(m, c, 1, 0).unwrap();
    vm.assert_unshared(head).ok();
    let mut prev = head;
    for _ in 0..200 {
        let n = vm.alloc(m, c, 1, 0).unwrap();
        vm.set_field(prev, 0, n).unwrap();
        vm.assert_unshared(n).unwrap();
        prev = n;
    }
    assert!(vm.collect().unwrap().is_clean());
}
