//! Semantics of `start-region` / `assert-alldead` (§2.3.2).

mod common;

use gc_assertions::{ObjRef, ViolationKind, Vm, VmError};

fn vm() -> Vm {
    Vm::new(common::cfg().build())
}

#[test]
fn memory_stable_region_passes() {
    // A well-behaved request handler: everything allocated inside the
    // region is dropped before the region ends.
    let mut vm = vm();
    let c = vm.register_class("Request", &["next"]);
    let m = vm.main();
    vm.start_region(m).unwrap();
    vm.push_frame(m).unwrap();
    let mut prev = ObjRef::NULL;
    for _ in 0..20 {
        let r = vm.alloc_rooted(m, c, 1, 4).unwrap();
        vm.set_field(r, 0, prev).ok();
        prev = r;
    }
    vm.pop_frame(m).unwrap(); // request done; all locals dropped
    let asserted = vm.assert_alldead(m).unwrap();
    assert_eq!(asserted, 20);
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
}

#[test]
fn region_leak_is_reported() {
    // The handler stashes one request object in a global cache: a leak.
    let mut vm = vm();
    let c = vm.register_class("Request", &[]);
    let cache_class = vm.register_class("Cache", &["entry"]);
    let m = vm.main();
    let cache = vm.alloc_rooted(m, cache_class, 1, 0).unwrap();

    vm.start_region(m).unwrap();
    vm.push_frame(m).unwrap();
    let mut leaked = ObjRef::NULL;
    for i in 0..10 {
        let r = vm.alloc_rooted(m, c, 0, 0).unwrap();
        if i == 3 {
            vm.set_field(cache, 0, r).unwrap(); // the bug
            leaked = r;
        }
    }
    vm.pop_frame(m).unwrap();
    vm.assert_alldead(m).unwrap();

    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    match &report.violations[0].kind {
        ViolationKind::DeadReachable { object, .. } => assert_eq!(*object, leaked),
        other => panic!("wrong kind {other:?}"),
    }
    // The path identifies the cache as the culprit.
    assert!(report.violations[0]
        .path
        .passes_through(vm.registry(), "Cache"));
}

#[test]
fn objects_dying_mid_region_pass_trivially() {
    // A GC inside the region reclaims short-lived allocations; the region
    // queue must not keep them alive (weak entries), and the stale queue
    // entries must not break assert_alldead.
    let mut vm = Vm::new(common::cfg().heap_budget(64).grow_on_oom(false).build());
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    vm.start_region(m).unwrap();
    for _ in 0..50 {
        vm.alloc(m, c, 0, 8).unwrap(); // churn forces GCs inside the region
    }
    assert!(vm.gc_stats().collections > 0);
    let asserted = vm.assert_alldead(m).unwrap();
    // Everything already dead was purged from the queue by the mid-region
    // collections and at most a handful of still-live queue entries remain.
    assert!(asserted <= 7, "queue purged, got {asserted}");
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
}

#[test]
fn regions_do_not_nest() {
    let mut vm = vm();
    let m = vm.main();
    vm.start_region(m).unwrap();
    assert_eq!(vm.start_region(m), Err(VmError::RegionActive(m)));
    vm.assert_alldead(m).unwrap();
    // After the region ends, a new one may start.
    vm.start_region(m).unwrap();
}

#[test]
fn alldead_without_region_errors() {
    let mut vm = vm();
    let m = vm.main();
    assert_eq!(vm.assert_alldead(m), Err(VmError::NoRegion(m)));
}

#[test]
fn regions_are_per_mutator() {
    // "each thread can independently be either in or out of a region"
    let mut vm = vm();
    let c = vm.register_class("T", &[]);
    let m1 = vm.main();
    let m2 = vm.spawn_mutator();

    vm.start_region(m1).unwrap();
    // m2 allocates outside any region: not tracked.
    let keep = vm.alloc_rooted(m2, c, 0, 0).unwrap();
    // m1 allocates inside its region: tracked.
    let _tracked = vm.alloc(m1, c, 0, 0).unwrap();
    let asserted = vm.assert_alldead(m1).unwrap();
    assert_eq!(asserted, 1);

    // m2's allocation is rooted and NOT asserted dead: clean collection.
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
    assert!(vm.is_live(keep));
}

#[test]
fn concurrent_regions_on_two_mutators() {
    let mut vm = vm();
    let c = vm.register_class("T", &[]);
    let m1 = vm.main();
    let m2 = vm.spawn_mutator();
    vm.start_region(m1).unwrap();
    vm.start_region(m2).unwrap();
    let a = vm.alloc_rooted(m1, c, 0, 0).unwrap(); // m1 leaks it
    let _b = vm.alloc(m2, c, 0, 0).unwrap(); // m2 is clean
    assert_eq!(vm.assert_alldead(m1).unwrap(), 1);
    assert_eq!(vm.assert_alldead(m2).unwrap(), 1);
    let report = vm.collect().unwrap();
    // Only m1's rooted object violates.
    assert_eq!(report.violations.len(), 1);
    assert!(vm.is_live(a));
}

#[test]
fn empty_region_asserts_nothing() {
    let mut vm = vm();
    let m = vm.main();
    vm.start_region(m).unwrap();
    assert_eq!(vm.assert_alldead(m).unwrap(), 0);
    assert!(vm.collect().unwrap().is_clean());
}
