//! VM façade behaviour: allocation policy, roots, frames, globals, modes.

use gc_assertions::{HeapError, Mode, ObjRef, Vm, VmConfig, VmError};

fn small_vm(budget: usize, grow: bool) -> Vm {
    Vm::new(
        VmConfig::builder()
            .heap_budget(budget)
            .grow_on_oom(grow)
            .build(),
    )
}

#[test]
fn alloc_triggers_gc_at_budget() {
    // Budget fits ~4 of our 10-word objects; unrooted garbage must be
    // collected automatically as allocation pressure mounts.
    let mut vm = small_vm(40, false);
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    for _ in 0..100 {
        vm.alloc(m, c, 0, 8).unwrap(); // 2 header + 8 data = 10 words
    }
    assert!(vm.gc_stats().collections > 0, "budget pressure forces GCs");
    assert!(vm.heap().occupied_words() <= 40);
}

#[test]
fn oom_when_rooted_objects_fill_fixed_heap() {
    let mut vm = small_vm(40, false);
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let mut last = Ok(ObjRef::NULL);
    for _ in 0..10 {
        last = vm.alloc_rooted(m, c, 0, 8);
        if last.is_err() {
            break;
        }
    }
    match last {
        Err(VmError::Heap(HeapError::OutOfMemory { .. })) => {}
        other => panic!("expected OOM, got {other:?}"),
    }
}

#[test]
fn growable_heap_never_ooms() {
    let mut vm = small_vm(40, true);
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    for _ in 0..50 {
        vm.alloc_rooted(m, c, 0, 8).unwrap();
    }
    assert!(vm.heap_budget() > 40, "budget must have grown");
    assert_eq!(vm.heap().live_objects(), 50);
}

#[test]
fn rooted_objects_survive_unrooted_die() {
    let mut vm = small_vm(1 << 20, true);
    let c = vm.register_class("T", &["f"]);
    let m = vm.main();
    let kept = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let child = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(kept, 0, child).unwrap();
    let garbage = vm.alloc(m, c, 1, 0).unwrap();
    vm.collect().unwrap();
    assert!(vm.is_live(kept));
    assert!(vm.is_live(child));
    assert!(!vm.is_live(garbage));
}

#[test]
fn pop_frame_drops_roots() {
    let mut vm = small_vm(1 << 20, true);
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let outer = vm.alloc_rooted(m, c, 0, 0).unwrap();
    vm.push_frame(m).unwrap();
    let inner = vm.alloc_rooted(m, c, 0, 0).unwrap();
    vm.collect().unwrap();
    assert!(vm.is_live(inner));
    vm.pop_frame(m).unwrap();
    vm.collect().unwrap();
    assert!(vm.is_live(outer));
    assert!(!vm.is_live(inner));
}

#[test]
fn base_frame_cannot_be_popped() {
    let mut vm = small_vm(1 << 20, true);
    let m = vm.main();
    assert_eq!(vm.pop_frame(m), Err(VmError::NoFrame(m)));
}

#[test]
fn set_root_models_local_reassignment() {
    let mut vm = small_vm(1 << 20, true);
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let a = vm.alloc(m, c, 0, 0).unwrap();
    let slot = vm.add_root(m, a).unwrap();
    assert_eq!(vm.root(m, slot).unwrap(), a);
    // x = null
    vm.set_root(m, slot, ObjRef::NULL).unwrap();
    vm.collect().unwrap();
    assert!(!vm.is_live(a));
    // Bad slot is reported.
    assert!(matches!(
        vm.set_root(m, 999, ObjRef::NULL),
        Err(VmError::BadRootSlot { slot: 999, .. })
    ));
}

#[test]
fn globals_keep_objects_alive_until_removed() {
    let mut vm = small_vm(1 << 20, true);
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let g = vm.alloc(m, c, 0, 0).unwrap();
    vm.add_global(g).unwrap();
    vm.collect().unwrap();
    assert!(vm.is_live(g));
    vm.remove_global(g).unwrap();
    assert_eq!(vm.remove_global(g), Err(VmError::GlobalNotFound(g)));
    vm.collect().unwrap();
    assert!(!vm.is_live(g));
}

#[test]
fn multiple_mutators_have_independent_stacks() {
    let mut vm = small_vm(1 << 20, true);
    let c = vm.register_class("T", &[]);
    let m1 = vm.main();
    let m2 = vm.spawn_mutator();
    assert_eq!(vm.mutator_count(), 2);
    let a = vm.alloc_rooted(m1, c, 0, 0).unwrap();
    let b = vm.alloc_rooted(m2, c, 0, 0).unwrap();
    vm.push_frame(m2).unwrap();
    let b2 = vm.alloc_rooted(m2, c, 0, 0).unwrap();
    vm.pop_frame(m2).unwrap();
    vm.collect().unwrap();
    assert!(vm.is_live(a));
    assert!(vm.is_live(b));
    assert!(!vm.is_live(b2));
}

#[test]
fn base_mode_rejects_assertion_api() {
    let mut vm = Vm::new(VmConfig::builder().mode(Mode::Base).build());
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let a = vm.alloc_rooted(m, c, 0, 0).unwrap();
    let b = vm.alloc_rooted(m, c, 0, 0).unwrap();
    assert_eq!(vm.assert_dead(a), Err(VmError::BaseMode));
    assert_eq!(vm.assert_unshared(a), Err(VmError::BaseMode));
    assert_eq!(vm.assert_instances(c, 1), Err(VmError::BaseMode));
    assert_eq!(vm.assert_owned_by(a, b), Err(VmError::BaseMode));
    assert_eq!(vm.start_region(m), Err(VmError::BaseMode));
    // But ordinary execution and collection work.
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
}

#[test]
fn stale_handles_are_checked_errors() {
    let mut vm = small_vm(1 << 20, true);
    let c = vm.register_class("T", &["f"]);
    let m = vm.main();
    let a = vm.alloc(m, c, 1, 0).unwrap(); // unrooted
    vm.collect().unwrap();
    assert!(!vm.is_live(a));
    assert!(matches!(vm.field(a, 0), Err(VmError::Heap(_))));
    assert!(matches!(
        vm.set_field(a, 0, ObjRef::NULL),
        Err(VmError::Heap(_))
    ));
    assert!(matches!(vm.add_root(m, a), Err(VmError::Heap(_))));
}

#[test]
fn unknown_mutator_is_rejected() {
    let mut vm = small_vm(1 << 20, true);
    let c = vm.register_class("T", &[]);
    let bogus = Vm::new(VmConfig::builder().build()).spawn_mutator();
    assert!(matches!(
        vm.alloc(bogus, c, 0, 0),
        Err(VmError::NoSuchMutator(_))
    ));
}

#[test]
fn assertion_call_counts_accumulate() {
    let mut vm = small_vm(1 << 20, true);
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let a = vm.alloc_rooted(m, c, 0, 0).unwrap();
    let b = vm.alloc_rooted(m, c, 0, 0).unwrap();
    vm.assert_dead(a).unwrap();
    vm.assert_unshared(b).unwrap();
    vm.assert_instances(c, 5).unwrap();
    vm.assert_owned_by(a, b).unwrap();
    vm.start_region(m).unwrap();
    vm.alloc(m, c, 0, 0).unwrap();
    vm.alloc(m, c, 0, 0).unwrap();
    let n = vm.assert_alldead(m).unwrap();
    assert_eq!(n, 2);
    let calls = vm.assertion_calls();
    assert_eq!(calls.dead, 1);
    assert_eq!(calls.unshared, 1);
    assert_eq!(calls.instances, 1);
    assert_eq!(calls.owned_by, 1);
    assert_eq!(calls.regions_started, 1);
    assert_eq!(calls.region_objects, 2);
}
