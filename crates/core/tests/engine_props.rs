//! Property tests: on arbitrary random object graphs, `assert-dead` and
//! `assert-unshared` violations match independently computed oracles.

use gc_assertions::{ObjRef, ViolationKind, Vm, VmConfig};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};

/// A randomly generated heap: `n` objects with up to 3 fields, random
/// edges, random roots, and random assertion targets.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    edges: Vec<(usize, usize, usize)>,
    roots: Vec<usize>,
    dead_asserts: Vec<usize>,
    unshared_asserts: Vec<usize>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..30).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0usize..3, 0..n), 0..n * 3),
            proptest::collection::vec(0..n, 0..5),
            proptest::collection::vec(0..n, 0..6),
            proptest::collection::vec(0..n, 0..6),
        )
            .prop_map(
                |(n, edges, roots, dead_asserts, unshared_asserts)| Scenario {
                    n,
                    edges,
                    roots,
                    dead_asserts,
                    unshared_asserts,
                },
            )
    })
}

fn build(vm: &mut Vm, s: &Scenario) -> Vec<ObjRef> {
    let c = vm.register_class("N", &["f0", "f1", "f2"]);
    let m = vm.main();
    let objs: Vec<ObjRef> = (0..s.n).map(|_| vm.alloc(m, c, 3, 0).unwrap()).collect();
    for &(from, field, to) in &s.edges {
        vm.set_field(objs[from], field, objs[to]).unwrap();
    }
    for &r in &s.roots {
        vm.add_root(m, objs[r]).unwrap();
    }
    objs
}

fn oracle_reachable(vm: &Vm, objs: &[ObjRef], roots: &[usize]) -> HashSet<ObjRef> {
    let mut seen = HashSet::new();
    let mut q: VecDeque<ObjRef> = roots.iter().map(|&i| objs[i]).collect();
    while let Some(r) = q.pop_front() {
        if !seen.insert(r) {
            continue;
        }
        for f in 0..3 {
            let c = vm.field(r, f).unwrap();
            if c.is_some() && !seen.contains(&c) {
                q.push_back(c);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn dead_violations_match_reachability_oracle(s in scenario()) {
        let mut vm = Vm::new(VmConfig::builder().build());
        let objs = build(&mut vm, &s);
        let reachable = oracle_reachable(&vm, &objs, &s.roots);

        let mut asserted: HashSet<ObjRef> = HashSet::new();
        for &i in &s.dead_asserts {
            vm.assert_dead(objs[i]).unwrap();
            asserted.insert(objs[i]);
        }
        let expected: HashSet<ObjRef> =
            asserted.intersection(&reachable).copied().collect();

        let report = vm.collect().unwrap();
        let fired: HashSet<ObjRef> = report
            .violations
            .iter()
            .filter_map(|v| match &v.kind {
                ViolationKind::DeadReachable { object, .. } => Some(*object),
                _ => None,
            })
            .collect();
        prop_assert_eq!(&fired, &expected);

        // And every reported path actually ends at the object and starts
        // at a root.
        for v in &report.violations {
            prop_assert!(!v.path.is_empty());
            if let ViolationKind::DeadReachable { object, .. } = &v.kind {
                prop_assert_eq!(v.path.target(), Some(*object));
                let first = v.path.steps()[0].object;
                prop_assert!(reachable.contains(&first));
            }
        }
    }

    #[test]
    fn unshared_violations_match_indegree_oracle(s in scenario()) {
        let mut vm = Vm::new(VmConfig::builder().build());
        let objs = build(&mut vm, &s);
        let reachable = oracle_reachable(&vm, &objs, &s.roots);

        // Oracle: encounters(obj) = root occurrences + edges from
        // reachable objects. A violation fires iff the object is asserted
        // unshared and is encountered at least twice.
        let mut encounters: HashMap<ObjRef, usize> = HashMap::new();
        for &r in &s.roots {
            *encounters.entry(objs[r]).or_default() += 1;
        }
        for &src in &reachable {
            for f in 0..3 {
                let dst = vm.field(src, f).unwrap();
                if dst.is_some() {
                    *encounters.entry(dst).or_default() += 1;
                }
            }
        }

        let mut asserted: HashSet<ObjRef> = HashSet::new();
        for &i in &s.unshared_asserts {
            vm.assert_unshared(objs[i]).unwrap();
            asserted.insert(objs[i]);
        }
        let expected: HashSet<ObjRef> = asserted
            .iter()
            .filter(|o| encounters.get(o).copied().unwrap_or(0) >= 2)
            .copied()
            .collect();

        let report = vm.collect().unwrap();
        let fired: HashSet<ObjRef> = report
            .violations
            .iter()
            .filter_map(|v| match &v.kind {
                ViolationKind::Shared { object, .. } => Some(*object),
                _ => None,
            })
            .collect();
        prop_assert_eq!(&fired, &expected);
    }

    #[test]
    fn collection_with_assertions_preserves_reachable_set(s in scenario()) {
        // Assertions must never change what survives (Log reaction).
        let mut vm = Vm::new(VmConfig::builder().build());
        let objs = build(&mut vm, &s);
        let reachable = oracle_reachable(&vm, &objs, &s.roots);
        for &i in &s.dead_asserts {
            vm.assert_dead(objs[i]).unwrap();
        }
        for &i in &s.unshared_asserts {
            vm.assert_unshared(objs[i]).unwrap();
        }
        vm.collect().unwrap();
        for &o in &objs {
            prop_assert_eq!(vm.is_live(o), reachable.contains(&o));
        }
    }
}
