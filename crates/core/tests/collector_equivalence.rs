//! Property test: the generational collector and the full-heap MarkSweep
//! collector agree — on arbitrary random programs over rooted objects,
//! final liveness (after a closing major collection) is identical, and
//! the heap verifies clean throughout.
//!
//! The op language and interpreter are the shared ones from
//! `gca-modelcheck` (see `common`): this suite drives the mutation-only
//! subset (no assertion sites), since generational engines are compared
//! on liveness rather than full observables.

mod common;

use common::{mutation_op_strategy, run_program, FuzzOp};
use gc_assertions::{CollectorKind, VmConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generational_agrees_with_marksweep(
        ops in proptest::collection::vec(mutation_op_strategy(), 1..120),
    ) {
        let base = VmConfig::builder().heap_budget(1_200).grow_on_oom(true).build();
        let ms = run_program(base.clone(), &ops);
        let cp = run_program(base.clone().collector(CollectorKind::Copying), &ops);
        prop_assert_eq!(&ms.live, &cp.live, "divergence at copying");
        for major_every in [1usize, 3, 16] {
            let gen = run_program(base.clone().generational(major_every), &ops);
            prop_assert_eq!(&ms.live, &gen.live, "divergence at generational({})", major_every);
        }
    }

    #[test]
    fn minor_collections_never_change_final_liveness(
        ops in proptest::collection::vec(
            prop_oneof![
                4 => mutation_op_strategy(),
                1 => Just(FuzzOp::MinorGc),
            ],
            1..120,
        ),
    ) {
        // Interleaving minor collections anywhere in a generational run
        // must not change what the closing major finds live — and the
        // generational answer must still match full-heap mark-sweep on
        // the same program (minors are no-ops there).
        let base = VmConfig::builder().heap_budget(1_200).grow_on_oom(true).build();
        let ms = run_program(base.clone(), &ops);
        for major_every in [1usize, 3, 16] {
            let gen = run_program(base.clone().generational(major_every), &ops);
            prop_assert_eq!(&ms.live, &gen.live, "divergence at generational({})", major_every);
        }
    }
}
