//! Property test: the generational collector and the full-heap MarkSweep
//! collector agree — on arbitrary random programs over rooted objects,
//! final liveness (after a closing major collection) is identical, and
//! the heap verifies clean throughout.

use gc_assertions::{CollectorKind, ObjRef, Vm, VmConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc {
        data: usize,
        root: bool,
    },
    Link {
        from: usize,
        field: usize,
        to: usize,
    },
    Unlink {
        from: usize,
        field: usize,
    },
    UnrootTo {
        keep: usize,
    },
    Collect,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..6, any::<bool>()).prop_map(|(data, root)| Op::Alloc { data, root }),
        2 => (0usize..64, 0usize..3, 0usize..64)
            .prop_map(|(from, field, to)| Op::Link { from, field, to }),
        1 => (0usize..64, 0usize..3).prop_map(|(from, field)| Op::Unlink { from, field }),
        1 => (0usize..16).prop_map(|keep| Op::UnrootTo { keep }),
        1 => Just(Op::Collect),
    ]
}

/// Runs the op stream; operations only ever reference *rooted* objects,
/// so the stream is valid under any collection schedule. Returns the
/// allocation-ordered liveness bitmap after a final major collection.
fn run(config: VmConfig, ops: &[Op]) -> Vec<bool> {
    let mut vm = Vm::new(config);
    let c = vm.register_class("N", &["a", "b", "c"]);
    let m = vm.main();
    let mut allocated: Vec<ObjRef> = Vec::new();
    // Rooted handles with their root-slot indices (we unroot suffixes).
    let mut rooted: Vec<(usize, ObjRef)> = Vec::new();

    for op in ops {
        match op {
            Op::Alloc { data, root } => {
                let o = vm.alloc(m, c, 3, *data).unwrap();
                allocated.push(o);
                if *root {
                    let slot = vm.add_root(m, o).unwrap();
                    rooted.push((slot, o));
                }
            }
            Op::Link { from, field, to } if !rooted.is_empty() => {
                let f = rooted[from % rooted.len()].1;
                let t = rooted[to % rooted.len()].1;
                vm.set_field(f, field % 3, t).unwrap();
            }
            Op::Unlink { from, field } if !rooted.is_empty() => {
                let f = rooted[from % rooted.len()].1;
                vm.set_field(f, field % 3, ObjRef::NULL).unwrap();
            }
            Op::UnrootTo { keep } if rooted.len() > *keep => {
                for &(slot, _) in &rooted[*keep..] {
                    vm.set_root(m, slot, ObjRef::NULL).unwrap();
                }
                rooted.truncate(*keep);
            }
            Op::Collect => {
                vm.collect().unwrap();
                let problems = vm.heap().verify();
                assert!(problems.is_empty(), "heap corruption: {problems:?}");
            }
            _ => {}
        }
    }
    vm.collect().unwrap();
    let problems = vm.heap().verify();
    assert!(problems.is_empty(), "heap corruption: {problems:?}");
    allocated.iter().map(|&o| vm.is_live(o)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generational_agrees_with_marksweep(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let base = VmConfig::builder().heap_budget(1_200).grow_on_oom(true).build();
        let ms = run(base.clone(), &ops);
        let cp = run(base.clone().collector(CollectorKind::Copying), &ops);
        prop_assert_eq!(&ms, &cp, "divergence at copying");
        for major_every in [1usize, 3, 16] {
            let gen = run(base.clone().generational(major_every), &ops);
            prop_assert_eq!(&ms, &gen, "divergence at generational({})", major_every);
        }
    }
}
