//! Semantics of `assert-dead` (§2.3.1) and the violation reactions (§2.6).

mod common;

use gc_assertions::{ObjRef, Reaction, ViolationKind, Vm, VmError};

fn vm() -> Vm {
    Vm::new(common::cfg().build())
}

#[test]
fn reclaimed_object_passes() {
    let mut vm = vm();
    let c = vm.register_class("Order", &[]);
    let m = vm.main();
    let o = vm.alloc(m, c, 0, 0).unwrap(); // unrooted
    vm.assert_dead(o).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
    assert!(!vm.is_live(o));
}

#[test]
fn reachable_object_fires_with_path() {
    let mut vm = vm();
    let holder = vm.register_class("Customer", &["lastOrder"]);
    let order = vm.register_class("Order", &[]);
    let m = vm.main();
    let cust = vm.alloc_rooted(m, holder, 1, 0).unwrap();
    let o = vm.alloc(m, order, 0, 0).unwrap();
    vm.set_field(cust, 0, o).unwrap();
    vm.assert_dead(o).unwrap();

    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    let v = &report.violations[0];
    match &v.kind {
        ViolationKind::DeadReachable { object, class_name } => {
            assert_eq!(*object, o);
            assert_eq!(class_name, "Order");
        }
        other => panic!("wrong kind: {other:?}"),
    }
    // Path: Customer -> .lastOrder Order
    let chain: Vec<ObjRef> = v.path.steps().iter().map(|s| s.object).collect();
    assert_eq!(chain, vec![cust, o]);
    let text = v.render(vm.registry());
    assert!(text.contains("Customer"));
    assert!(text.contains(".lastOrder Order"));
}

#[test]
fn null_assignment_idiom_checked() {
    // The motivating example: assigning null should kill the object, but a
    // second reference keeps it alive.
    let mut vm = vm();
    let c = vm.register_class("Holder", &["a", "b"]);
    let t = vm.register_class("T", &[]);
    let m = vm.main();
    let h = vm.alloc_rooted(m, c, 2, 0).unwrap();
    let x = vm.alloc(m, t, 0, 0).unwrap();
    vm.set_field(h, 0, x).unwrap();
    vm.set_field(h, 1, x).unwrap(); // forgotten alias
    vm.set_field(h, 0, ObjRef::NULL).unwrap(); // "x = null"
    vm.assert_dead(x).unwrap();
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    // The path pinpoints the alias: Holder.b.
    let text = report.violations[0].render(vm.registry());
    assert!(text.contains(".b T"), "path should name field b: {text}");
}

#[test]
fn transient_violation_is_missed() {
    // The price of batching (§1): a violation repaired before the next GC
    // is never observed. Pin this design property.
    let mut vm = vm();
    let c = vm.register_class("Holder", &["f"]);
    let t = vm.register_class("T", &[]);
    let m = vm.main();
    let h = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let x = vm.alloc(m, t, 0, 0).unwrap();
    vm.set_field(h, 0, x).unwrap();
    vm.assert_dead(x).unwrap();
    // Transiently violated... then repaired before any collection.
    vm.set_field(h, 0, ObjRef::NULL).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
}

#[test]
fn report_once_suppresses_repeats() {
    let mut vm = Vm::new(common::cfg().report_once(true).build());
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let x = vm.alloc_rooted(m, c, 0, 0).unwrap();
    vm.assert_dead(x).unwrap();
    assert_eq!(vm.collect().unwrap().violations.len(), 1);
    assert_eq!(vm.collect().unwrap().violations.len(), 0);
    assert_eq!(vm.collect().unwrap().violations.len(), 0);
}

#[test]
fn report_every_gc_when_configured() {
    let mut vm = Vm::new(common::cfg().report_once(false).build());
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let x = vm.alloc_rooted(m, c, 0, 0).unwrap();
    vm.assert_dead(x).unwrap();
    assert_eq!(vm.collect().unwrap().violations.len(), 1);
    assert_eq!(vm.collect().unwrap().violations.len(), 1);
}

#[test]
fn retract_dead_withdraws_the_assertion() {
    let mut vm = vm();
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let x = vm.alloc_rooted(m, c, 0, 0).unwrap();
    vm.assert_dead(x).unwrap();
    vm.retract_dead(x).unwrap();
    assert!(vm.collect().unwrap().is_clean());
}

#[test]
fn halt_reaction_stops_the_vm() {
    let mut vm = Vm::new(common::cfg().reaction(Reaction::Halt).build());
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let x = vm.alloc_rooted(m, c, 0, 0).unwrap();
    vm.assert_dead(x).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.halted);
    assert!(vm.is_halted());
    assert_eq!(vm.alloc(m, c, 0, 0), Err(VmError::Halted));
    assert_eq!(vm.assert_dead(x), Err(VmError::Halted));
    assert_eq!(vm.set_field(x, 0, ObjRef::NULL), Err(VmError::Halted));
}

#[test]
fn halt_only_on_actual_violation() {
    let mut vm = Vm::new(common::cfg().reaction(Reaction::Halt).build());
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let _x = vm.alloc_rooted(m, c, 0, 0).unwrap();
    let report = vm.collect().unwrap();
    assert!(!report.halted);
    assert!(!vm.is_halted());
}

#[test]
fn force_true_reclaims_at_next_gc() {
    // §2.6: the collector nulls incoming references so the object dies at
    // the *next* collection.
    let mut vm = Vm::new(common::cfg().reaction(Reaction::ForceTrue).build());
    let holder = vm.register_class("Holder", &["a", "b"]);
    let t = vm.register_class("T", &[]);
    let m = vm.main();
    let h1 = vm.alloc_rooted(m, holder, 2, 0).unwrap();
    let h2 = vm.alloc_rooted(m, holder, 2, 0).unwrap();
    let x = vm.alloc(m, t, 0, 0).unwrap();
    vm.set_field(h1, 0, x).unwrap();
    vm.set_field(h2, 1, x).unwrap(); // two incoming references
    vm.assert_dead(x).unwrap();

    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1, "still reported");
    assert!(vm.is_live(x), "survives the reporting collection");
    // Both incoming references were severed...
    assert_eq!(vm.field(h1, 0).unwrap(), ObjRef::NULL);
    assert_eq!(vm.field(h2, 1).unwrap(), ObjRef::NULL);
    // ...so the next collection reclaims it.
    vm.collect().unwrap();
    assert!(!vm.is_live(x));
}

#[test]
fn force_true_cannot_sever_roots() {
    // A rooted object has no heap parent to null; it survives, and the
    // report (once) is all the programmer gets.
    let mut vm = Vm::new(common::cfg().reaction(Reaction::ForceTrue).build());
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let x = vm.alloc_rooted(m, c, 0, 0).unwrap();
    vm.assert_dead(x).unwrap();
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    vm.collect().unwrap();
    assert!(vm.is_live(x));
}

#[test]
fn dead_bit_survives_until_reclamation() {
    // An object asserted dead that survives several GCs keeps firing its
    // counter (dead_bits_seen) even with report_once.
    let mut vm = Vm::new(common::cfg().report_once(true).build());
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let x = vm.alloc_rooted(m, c, 0, 0).unwrap();
    vm.assert_dead(x).unwrap();
    let r1 = vm.collect().unwrap();
    let r2 = vm.collect().unwrap();
    assert_eq!(r1.counters.dead_bits_seen, 1);
    assert_eq!(r2.counters.dead_bits_seen, 1);
    assert_eq!(r2.violations.len(), 0);
}

#[test]
fn many_dead_asserts_batch_in_one_collection() {
    let mut vm = vm();
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let mut leaked = Vec::new();
    for i in 0..100 {
        let x = vm.alloc(m, c, 0, 0).unwrap();
        vm.assert_dead(x).unwrap();
        if i % 2 == 0 {
            vm.add_root(m, x).unwrap(); // half actually leak
            leaked.push(x);
        }
    }
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 50);
    for v in &report.violations {
        assert!(matches!(v.kind, ViolationKind::DeadReachable { .. }));
    }
}
