//! Cross-engine differential fuzz suite: the semispace copying collector
//! must be *observationally identical* to the mark-sweep family.
//!
//! Copying changes *when* (at which address) objects live, not *whether*
//! they are live — so on arbitrary random heap programs mixing mutation
//! with every assertion kind, the copying backend must produce exactly the
//! same final live set, the same violation log (kind, object, report-once
//! — paths excluded, since a breadth-first scan discovers the same edge
//! *set* in a different *order*), the same assertion check counters (which
//! pins the visit multiplicities: one `visit_new` per object, one
//! `visit_marked` per extra incoming edge), and the same per-class /
//! per-site census tables as the sequential and parallel mark-sweep
//! engines.
//!
//! The generational engine is compared on final liveness only: its minor
//! cycles deliberately skip assertion checks (the paper's §2.2
//! observation), so violation *timing* legitimately differs while the live
//! set after a closing major collection may not.
//!
//! Failures shrink twice: proptest shrinks the generated input as usual,
//! and the failure path additionally runs the model checker's greedy
//! 1-minimal shrinker ([`gca_modelcheck::minimize_counterexample`]) and
//! prints a compact replay seed plus a runnable `.gca` script for the
//! implicated engine — zero overhead on passing cases.
//!
//! Case count: each property runs 256 random programs (64 for the
//! ForceTrue property), overridable with `PROPTEST_CASES`.

mod common;

use common::{fuzz_op_strategy, FuzzOp};
use gc_assertions::{CollectorKind, Reaction, VmConfig};
use gca_modelcheck::{check_program_with, minimize_counterexample, EngineSpec};
use proptest::prelude::*;

/// The shared base configuration: small growable heap so collections are
/// frequent, census on so the census tables are part of the comparison.
fn base() -> VmConfig {
    VmConfig::builder()
        .heap_budget(1_200)
        .grow_on_oom(true)
        .census(true)
        .build()
}

/// Differential check against an explicit engine matrix; on divergence,
/// minimizes the failing program and fails the property with the replay
/// seed and the runnable `.gca` counterexample.
fn check_minimized(matrix: &[EngineSpec], ops: &[FuzzOp]) {
    if let Err(error) = check_program_with(matrix, ops) {
        let cx = minimize_counterexample(matrix, ops);
        panic!(
            "{error}\nminimized {} ops -> {} ops: {}\nreplay seed: {}\n{}",
            ops.len(),
            cx.ops.len(),
            cx.error,
            cx.seed,
            cx.script
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Copying vs sequential mark-sweep and the 2- and 4-worker parallel
    /// mark: full-outcome equality (liveness, violations, check counters,
    /// census).
    #[test]
    fn copying_agrees_with_mark_sweep_family(
        ops in proptest::collection::vec(fuzz_op_strategy(), 1..120),
    ) {
        let matrix = [
            EngineSpec { name: "ms", config: base() },
            EngineSpec { name: "par2", config: base().gc_threads(2) },
            EngineSpec { name: "par4", config: base().gc_threads(4) },
            EngineSpec { name: "copying", config: base().collector(CollectorKind::Copying) },
        ];
        check_minimized(&matrix, &ops);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Copying vs generational: final-liveness equality only. Minor cycles
    /// check no assertions, so the violation log and check counters can
    /// legitimately differ in when (and, with report-once, whether) a
    /// violation is recorded; the live set after the closing major
    /// collection cannot. One matrix per period: distinct major schedules
    /// legitimately differ from *each other* on full outcomes, so they
    /// must not land in the same minor-strategy pairing group.
    #[test]
    fn copying_agrees_with_generational_on_liveness(
        ops in proptest::collection::vec(fuzz_op_strategy(), 1..120),
    ) {
        for (name, major_every) in [("gen-1", 1usize), ("gen-3", 3), ("gen-16", 16)] {
            let matrix = [
                EngineSpec { name: "copying", config: base().collector(CollectorKind::Copying) },
                EngineSpec { name, config: base().generational(major_every) },
            ];
            check_minimized(&matrix, &ops);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ForceTrue reaction (§2.6): the collector severs every encountered
    /// incoming edge to an asserted-dead object. A breadth-first scan
    /// encounters the same edge set as a depth-first one, so the severed
    /// set — and therefore both the violation log and which objects die
    /// at the *next* collection — must be identical.
    #[test]
    fn force_true_severs_the_same_edges(
        ops in proptest::collection::vec(fuzz_op_strategy(), 1..120),
    ) {
        let matrix = [
            EngineSpec { name: "ms", config: base().reaction(Reaction::ForceTrue) },
            EngineSpec {
                name: "copying",
                config: base().reaction(Reaction::ForceTrue).collector(CollectorKind::Copying),
            },
        ];
        check_minimized(&matrix, &ops);
    }
}
