//! Cross-engine differential fuzz suite: the semispace copying collector
//! must be *observationally identical* to the mark-sweep family.
//!
//! Copying changes *when* (at which address) objects live, not *whether*
//! they are live — so on arbitrary random heap programs mixing mutation
//! with every assertion kind, the copying backend must produce exactly the
//! same final live set, the same violation log (kind, object, report-once
//! — paths excluded, since a breadth-first scan discovers the same edge
//! *set* in a different *order*), the same assertion check counters (which
//! pins the visit multiplicities: one `visit_new` per object, one
//! `visit_marked` per extra incoming edge), and the same per-class /
//! per-site census tables as the sequential and parallel mark-sweep
//! engines.
//!
//! The generational engine is compared on final liveness only: its minor
//! cycles deliberately skip assertion checks (the paper's §2.2
//! observation), so violation *timing* legitimately differs while the live
//! set after a closing major collection may not.
//!
//! Failures shrink: proptest prints the minimal op sequence that still
//! diverges.
//!
//! Case count: each property runs 256 random programs (64 for the
//! ForceTrue property), overridable with `PROPTEST_CASES`.

mod common;

use common::{fuzz_op_strategy, run_program, FuzzOp, Outcome};
use gc_assertions::{CollectorKind, Reaction, VmConfig};
use proptest::prelude::*;

/// The shared base configuration: small growable heap so collections are
/// frequent, census on so the census tables are part of the comparison.
fn base() -> VmConfig {
    VmConfig::builder()
        .heap_budget(1_200)
        .grow_on_oom(true)
        .census(true)
        .build()
}

fn copying(ops: &[FuzzOp]) -> Outcome {
    run_program(base().collector(CollectorKind::Copying), ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Copying vs sequential mark-sweep and the 2- and 4-worker parallel
    /// mark: full-outcome equality (liveness, violations, check counters,
    /// census).
    #[test]
    fn copying_agrees_with_mark_sweep_family(
        ops in proptest::collection::vec(fuzz_op_strategy(), 1..120),
    ) {
        let cp = copying(&ops);
        let ms = run_program(base(), &ops);
        prop_assert_eq!(&ms, &cp, "copying diverged from sequential mark-sweep");
        for workers in [2usize, 4] {
            let par = run_program(base().gc_threads(workers), &ops);
            prop_assert_eq!(
                &par, &cp,
                "copying diverged from parallel({}) mark", workers
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Copying vs generational: final-liveness equality only. Minor cycles
    /// check no assertions, so the violation log and check counters can
    /// legitimately differ in when (and, with report-once, whether) a
    /// violation is recorded; the live set after the closing major
    /// collection cannot.
    #[test]
    fn copying_agrees_with_generational_on_liveness(
        ops in proptest::collection::vec(fuzz_op_strategy(), 1..120),
    ) {
        let cp = copying(&ops);
        for major_every in [1usize, 3, 16] {
            let gen = run_program(base().generational(major_every), &ops);
            prop_assert_eq!(
                &gen.live, &cp.live,
                "copying diverged from generational({}) on liveness", major_every
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ForceTrue reaction (§2.6): the collector severs every encountered
    /// incoming edge to an asserted-dead object. A breadth-first scan
    /// encounters the same edge set as a depth-first one, so the severed
    /// set — and therefore both the violation log and which objects die
    /// at the *next* collection — must be identical.
    #[test]
    fn force_true_severs_the_same_edges(
        ops in proptest::collection::vec(fuzz_op_strategy(), 1..120),
    ) {
        let cfg = base().reaction(Reaction::ForceTrue);
        let ms = run_program(cfg.clone(), &ops);
        let cp = run_program(cfg.collector(CollectorKind::Copying), &ops);
        prop_assert_eq!(&ms, &cp, "ForceTrue diverged between mark-sweep and copying");
    }
}
