//! Shared helpers for the integration-test corpus and the cross-engine
//! differential fuzz suites.
//!
//! The assertion corpus (`assert_*.rs`, `interactions.rs`) builds every VM
//! through [`cfg()`], which honours the `GCA_TEST_COLLECTOR` environment
//! variable: unset (the default) runs the paper's mark-sweep collector, so
//! tier-1 is unchanged; `GCA_TEST_COLLECTOR=copying` re-runs the exact same
//! corpus against the semispace copying backend — CI runs both legs.
//!
//! The random heap-program language the fuzz suites replay lives in the
//! `gca-modelcheck` crate ([`gca_modelcheck::program`]) and is re-exported
//! here: the exhaustive model checker, the proptest fuzzers, and the
//! counterexample shrinker all consume the *same* `FuzzOp` definition and
//! interpreter, so they can never drift apart.

#![allow(dead_code)]

// One op language, one interpreter, shared with the model checker. Each
// test binary compiles its own copy of this module and uses a different
// subset of the re-exports.
#[allow(unused_imports)]
pub use gca_modelcheck::{
    fuzz_op_strategy, minimize_counterexample, mutation_op_strategy, normalize_violations,
    run_program, violation_key, FuzzOp, Outcome,
};

use gc_assertions::{CollectorKind, VmConfig, VmConfigBuilder};

// ---------------------------------------------------------------------------
// Corpus engine selection
// ---------------------------------------------------------------------------

/// The collector backend the corpus runs against, from `GCA_TEST_COLLECTOR`.
///
/// Panics on an unknown value so a typo in CI fails loudly instead of
/// silently re-testing mark-sweep.
pub fn corpus_collector() -> CollectorKind {
    match std::env::var("GCA_TEST_COLLECTOR") {
        Err(_) => CollectorKind::MarkSweep,
        Ok(v) => match v.as_str() {
            "" | "mark-sweep" | "marksweep" => CollectorKind::MarkSweep,
            "copying" => CollectorKind::Copying,
            other => panic!("GCA_TEST_COLLECTOR: unknown collector {other:?}"),
        },
    }
}

/// The corpus' replacement for `VmConfig::builder()`: identical, except the
/// collector backend comes from `GCA_TEST_COLLECTOR`.
pub fn cfg() -> VmConfigBuilder {
    VmConfig::builder().collector(corpus_collector())
}
