//! Shared helpers for the integration-test corpus and the cross-engine
//! differential fuzz suite (`copying_equivalence.rs`).
//!
//! The assertion corpus (`assert_*.rs`, `interactions.rs`) builds every VM
//! through [`cfg()`], which honours the `GCA_TEST_COLLECTOR` environment
//! variable: unset (the default) runs the paper's mark-sweep collector, so
//! tier-1 is unchanged; `GCA_TEST_COLLECTOR=copying` re-runs the exact same
//! corpus against the semispace copying backend — CI runs both legs.
//!
//! The fuzz half of this module defines a random heap-program language
//! ([`FuzzOp`]), a proptest strategy for it, and a deterministic interpreter
//! ([`run_program`]) that replays one program on one engine and returns the
//! full observable [`Outcome`] (liveness, normalized violation log, check
//! counters, census tables) for cross-engine comparison.

#![allow(dead_code)]

use gc_assertions::{
    CollectorKind, ObjRef, Violation, ViolationKind, Vm, VmConfig, VmConfigBuilder,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Corpus engine selection
// ---------------------------------------------------------------------------

/// The collector backend the corpus runs against, from `GCA_TEST_COLLECTOR`.
///
/// Panics on an unknown value so a typo in CI fails loudly instead of
/// silently re-testing mark-sweep.
pub fn corpus_collector() -> CollectorKind {
    match std::env::var("GCA_TEST_COLLECTOR") {
        Err(_) => CollectorKind::MarkSweep,
        Ok(v) => match v.as_str() {
            "" | "mark-sweep" | "marksweep" => CollectorKind::MarkSweep,
            "copying" => CollectorKind::Copying,
            other => panic!("GCA_TEST_COLLECTOR: unknown collector {other:?}"),
        },
    }
}

/// The corpus' replacement for `VmConfig::builder()`: identical, except the
/// collector backend comes from `GCA_TEST_COLLECTOR`.
pub fn cfg() -> VmConfigBuilder {
    VmConfig::builder().collector(corpus_collector())
}

// ---------------------------------------------------------------------------
// Differential fuzz language
// ---------------------------------------------------------------------------

/// One step of a random heap program. Object-referencing operations index
/// into the *rooted* set (modulo its length), so every program is valid
/// under any collection schedule — an engine can never make an op dangle.
#[derive(Debug, Clone)]
pub enum FuzzOp {
    /// Allocate a 3-field `N` object, optionally rooting it.
    Alloc { data: usize, root: bool },
    /// `rooted[from].field = rooted[to]`.
    Link {
        from: usize,
        field: usize,
        to: usize,
    },
    /// `rooted[from].field = null`.
    Unlink { from: usize, field: usize },
    /// Unroot every rooted object past the first `keep`.
    UnrootTo { keep: usize },
    /// Full collection + heap verification.
    Collect,
    /// `assert-dead` on a rooted object. It passes if a later `UnrootTo`
    /// kills the object before the next collection, and reports a
    /// `DeadReachable` violation otherwise — both outcomes must be
    /// engine-independent.
    AssertDead { target: usize },
    /// `assert-unshared` on a rooted object.
    AssertUnshared { target: usize },
    /// `assert-instances` on class `N`.
    AssertInstances { limit: u32 },
    /// A bracketed `start_region` / `assert_alldead` pair allocating
    /// `1 + len % 4` objects inline; with `leak` the first one is rooted,
    /// which must produce a `DeadReachable` violation on every engine.
    Region { len: usize, leak: bool },
    /// Allocate an owner and an ownee, pin both as globals (so no
    /// collection schedule can kill a participant mid-program), link
    /// `owner -> ownee` and `assert_owned_by`.
    OwnPair,
    /// Leak the most recent ownee: `rooted[from].field = ownee`. Harmless
    /// while the owner edge stands (the pre-phase marks the ownee owned),
    /// but after `BreakOwner` the root scan reaches an unowned ownee.
    LeakOwnee { from: usize },
    /// Sever the most recent owner's edge to its ownee.
    BreakOwner,
}

/// Strategy over [`FuzzOp`], weighted so programs mix heap mutation with
/// every assertion kind.
pub fn fuzz_op_strategy() -> impl Strategy<Value = FuzzOp> {
    prop_oneof![
        4 => (0usize..6, any::<bool>()).prop_map(|(data, root)| FuzzOp::Alloc { data, root }),
        3 => (0usize..64, 0usize..3, 0usize..64)
            .prop_map(|(from, field, to)| FuzzOp::Link { from, field, to }),
        2 => (0usize..64, 0usize..3).prop_map(|(from, field)| FuzzOp::Unlink { from, field }),
        1 => (0usize..16).prop_map(|keep| FuzzOp::UnrootTo { keep }),
        2 => Just(FuzzOp::Collect),
        2 => (0usize..64).prop_map(|target| FuzzOp::AssertDead { target }),
        2 => (0usize..64).prop_map(|target| FuzzOp::AssertUnshared { target }),
        1 => (0u32..4).prop_map(|limit| FuzzOp::AssertInstances { limit }),
        1 => (0usize..4, any::<bool>()).prop_map(|(len, leak)| FuzzOp::Region { len, leak }),
        1 => Just(FuzzOp::OwnPair),
        1 => (0usize..64).prop_map(|from| FuzzOp::LeakOwnee { from }),
        1 => Just(FuzzOp::BreakOwner),
    ]
}

/// Everything one engine run observably produced. Two engines agree on a
/// program iff their `Outcome`s are equal (`PartialEq` derives field-wise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Allocation-ordered liveness bitmap after the closing collection.
    pub live: Vec<bool>,
    /// Normalized, sorted violation log across the whole run — one string
    /// per report keyed by (kind, object slot, class names); paths are
    /// deliberately excluded (a BFS scan reports edges in a different
    /// *order* than a DFS scan, but must report the same *set*).
    pub violations: Vec<String>,
    /// Cumulative assertion-checking work: this pins the visit
    /// *multiplicities* (one `visit_new` per object, one `visit_marked`
    /// per extra edge), not just the verdicts.
    pub check_totals: (u64, u64, u64, u64, u64, u64),
    /// Per-class live totals from the final collection's census.
    pub census_classes: Vec<(String, u64, u64)>,
    /// Per-allocation-site live totals from the final collection's census.
    pub census_sites: Vec<(String, u64, u64)>,
}

/// Collapses a violation to an order-independent, path-independent key.
pub fn violation_key(v: &Violation) -> String {
    match &v.kind {
        ViolationKind::DeadReachable { object, class_name } => {
            format!("dead:{}:{}", object.index(), class_name)
        }
        ViolationKind::InstanceLimit {
            class_name,
            limit,
            count,
        } => format!("instances:{class_name}:{limit}:{count}"),
        ViolationKind::Shared { object, class_name } => {
            format!("shared:{}:{}", object.index(), class_name)
        }
        ViolationKind::NotOwned {
            ownee,
            ownee_class,
            owner,
            owner_class,
        } => format!(
            "notowned:{}:{}:{}:{}",
            ownee.index(),
            ownee_class,
            owner.index(),
            owner_class
        ),
        ViolationKind::ImproperOwnership {
            ownee,
            ownee_class,
            scanned_owner,
            scanned_owner_class,
        } => format!(
            "improper:{}:{}:{}:{}",
            ownee.index(),
            ownee_class,
            scanned_owner.index(),
            scanned_owner_class
        ),
        ViolationKind::OwneeOutlivedOwner {
            ownee,
            ownee_class,
            owner_class,
        } => format!("outlived:{}:{}:{}", ownee.index(), ownee_class, owner_class),
        other => panic!("violation_key: unhandled violation kind {other:?}"),
    }
}

/// Normalizes a violation log for cross-engine comparison: per-violation
/// keys, sorted.
pub fn normalize_violations(vs: &[Violation]) -> Vec<String> {
    let mut out: Vec<String> = vs.iter().map(violation_key).collect();
    out.sort();
    out
}

/// Replays `ops` on a fresh VM built from `config` and returns the full
/// [`Outcome`]. Panics (failing the property) on any VM error or heap
/// verification failure.
pub fn run_program(config: VmConfig, ops: &[FuzzOp]) -> Outcome {
    let mut vm = Vm::new(config);
    let n = vm.register_class("N", &["a", "b", "c"]);
    let owner_c = vm.register_class("Owner", &["prop"]);
    let ownee_c = vm.register_class("Ownee", &["x"]);
    let m = vm.main();

    let mut allocated: Vec<ObjRef> = Vec::new();
    // Rooted handles with their root-slot indices (we unroot suffixes).
    let mut rooted: Vec<(usize, ObjRef)> = Vec::new();
    // Ownership participants are pinned as globals, never unrooted.
    let mut owners: Vec<ObjRef> = Vec::new();
    let mut ownees: Vec<ObjRef> = Vec::new();

    let verify = |vm: &Vm| {
        // One backend-dispatched check: page/card structure, dangling
        // references, and the active space's address invariants.
        let problems = vm.heap().verify();
        assert!(problems.is_empty(), "heap corruption: {problems:?}");
    };

    for op in ops {
        match op {
            FuzzOp::Alloc { data, root } => {
                let o = vm.alloc(m, n, 3, *data).unwrap();
                allocated.push(o);
                if *root {
                    let slot = vm.add_root(m, o).unwrap();
                    rooted.push((slot, o));
                }
            }
            FuzzOp::Link { from, field, to } if !rooted.is_empty() => {
                let f = rooted[from % rooted.len()].1;
                let t = rooted[to % rooted.len()].1;
                vm.set_field(f, field % 3, t).unwrap();
            }
            FuzzOp::Unlink { from, field } if !rooted.is_empty() => {
                let f = rooted[from % rooted.len()].1;
                vm.set_field(f, field % 3, ObjRef::NULL).unwrap();
            }
            FuzzOp::UnrootTo { keep } if rooted.len() > *keep => {
                for &(slot, _) in &rooted[*keep..] {
                    vm.set_root(m, slot, ObjRef::NULL).unwrap();
                }
                rooted.truncate(*keep);
            }
            FuzzOp::Collect => {
                vm.collect().unwrap();
                verify(&vm);
            }
            FuzzOp::AssertDead { target } if !rooted.is_empty() => {
                let t = rooted[target % rooted.len()].1;
                vm.assert_dead(t).unwrap();
            }
            FuzzOp::AssertUnshared { target } if !rooted.is_empty() => {
                let t = rooted[target % rooted.len()].1;
                vm.assert_unshared(t).unwrap();
            }
            FuzzOp::AssertInstances { limit } => {
                vm.assert_instances(n, *limit).unwrap();
            }
            FuzzOp::Region { len, leak } => {
                vm.start_region(m).unwrap();
                let mut first = None;
                for _ in 0..(len % 4) + 1 {
                    let o = vm.alloc(m, n, 3, 0).unwrap();
                    allocated.push(o);
                    first.get_or_insert(o);
                }
                if *leak {
                    let o = first.unwrap();
                    let slot = vm.add_root(m, o).unwrap();
                    rooted.push((slot, o));
                }
                vm.assert_alldead(m).unwrap();
            }
            FuzzOp::OwnPair => {
                let o = vm.alloc(m, owner_c, 1, 0).unwrap();
                let e = vm.alloc(m, ownee_c, 1, 0).unwrap();
                allocated.push(o);
                allocated.push(e);
                vm.add_global(o).unwrap();
                // The ownee is pinned too: after `BreakOwner` it must stay
                // referenceable (for `LeakOwnee`) and the global root then
                // reaches an unowned ownee — a deterministic `NotOwned`.
                vm.add_global(e).unwrap();
                vm.set_field(o, 0, e).unwrap();
                vm.assert_owned_by(o, e).unwrap();
                owners.push(o);
                ownees.push(e);
            }
            FuzzOp::LeakOwnee { from } if !rooted.is_empty() && !ownees.is_empty() => {
                let f = rooted[from % rooted.len()].1;
                vm.set_field(f, from % 3, *ownees.last().unwrap()).unwrap();
            }
            FuzzOp::BreakOwner if !owners.is_empty() => {
                vm.set_field(*owners.last().unwrap(), 0, ObjRef::NULL)
                    .unwrap();
            }
            _ => {}
        }
    }
    vm.collect().unwrap();
    verify(&vm);

    let t = vm.check_totals();
    let check_totals = (
        t.owners_scanned,
        t.ownees_checked,
        t.deferred_ownees_processed,
        t.dead_bits_seen,
        t.tracked_instances_counted,
        t.unshared_bits_seen,
    );
    let census = vm.census();
    let (census_classes, census_sites) = match census.latest() {
        None => (Vec::new(), Vec::new()),
        Some(cycle) => (
            cycle
                .data
                .classes
                .iter()
                .map(|e| (e.name.clone(), e.objects, e.bytes))
                .collect(),
            cycle
                .data
                .sites
                .iter()
                .map(|e| (e.name.clone(), e.objects, e.bytes))
                .collect(),
        ),
    };
    Outcome {
        live: allocated.iter().map(|&o| vm.is_live(o)).collect(),
        violations: normalize_violations(vm.violation_log()),
        check_totals,
        census_classes,
        census_sites,
    }
}
