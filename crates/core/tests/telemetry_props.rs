//! Property tests for the telemetry invariants: on arbitrary random object
//! graphs and VM configurations,
//!
//! 1. phase durations sum to at most the cycle total,
//! 2. per-worker mark timings cover all `gc_threads` workers,
//! 3. per-assertion overhead counters are zero when no assertions were
//!    registered,
//! 4. the pause histogram's sample count equals the cycle count.

use gc_assertions::{CycleKind, GcPhase, Mode, ObjRef, Vm, VmConfig};
use proptest::prelude::*;

/// A randomly generated heap: `n` objects with up to 3 fields, random
/// edges, random roots, plus optional assertion targets.
#[derive(Debug, Clone)]
struct Scenario {
    n: usize,
    edges: Vec<(usize, usize, usize)>,
    roots: Vec<usize>,
    dead_asserts: Vec<usize>,
    unshared_asserts: Vec<usize>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..30).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0usize..3, 0..n), 0..n * 3),
            proptest::collection::vec(0..n, 0..5),
            proptest::collection::vec(0..n, 0..6),
            proptest::collection::vec(0..n, 0..6),
        )
            .prop_map(
                |(n, edges, roots, dead_asserts, unshared_asserts)| Scenario {
                    n,
                    edges,
                    roots,
                    dead_asserts,
                    unshared_asserts,
                },
            )
    })
}

fn build(vm: &mut Vm, s: &Scenario) -> Vec<ObjRef> {
    let c = vm.register_class("N", &["f0", "f1", "f2"]);
    let m = vm.main();
    let objs: Vec<ObjRef> = (0..s.n).map(|_| vm.alloc(m, c, 3, 0).unwrap()).collect();
    for &(from, field, to) in &s.edges {
        vm.set_field(objs[from], field, objs[to]).unwrap();
    }
    for &r in &s.roots {
        vm.add_root(m, objs[r]).unwrap();
    }
    objs
}

fn telemetry_config(gc_threads: usize) -> VmConfig {
    VmConfig::builder()
        .heap_budget(1 << 20)
        .gc_threads(gc_threads)
        .telemetry(true)
        .build()
}

proptest! {
    /// Invariant 1: for every major record, pre_root + mark + sweep never
    /// exceeds the cycle total (the phases are disjoint sub-spans).
    #[test]
    fn phase_spans_sum_within_total(s in scenario(), threads in 1usize..4) {
        let mut vm = Vm::new(telemetry_config(threads));
        build(&mut vm, &s);
        vm.collect().unwrap();
        vm.collect().unwrap();
        let t = vm.telemetry();
        prop_assert!(t.enabled());
        for r in t.records() {
            prop_assert!(
                r.pre_root_ns + r.mark_ns + r.sweep_ns <= r.total_ns,
                "phases {} + {} + {} exceed total {}",
                r.pre_root_ns, r.mark_ns, r.sweep_ns, r.total_ns
            );
        }
        // The cumulative roll-up preserves the invariant.
        let phases = t.phase_total(GcPhase::PreRoot)
            + t.phase_total(GcPhase::Mark)
            + t.phase_total(GcPhase::Sweep);
        prop_assert!(phases <= t.total_pause());
    }

    /// Invariant 2: every major record carries exactly `gc_threads`
    /// per-worker mark spans (one span for the sequential tracer).
    #[test]
    fn worker_timings_cover_all_workers(s in scenario(), threads in 1usize..5) {
        let mut vm = Vm::new(telemetry_config(threads));
        build(&mut vm, &s);
        vm.collect().unwrap();
        let t = vm.telemetry();
        for r in t.records() {
            prop_assert_eq!(
                r.worker_mark_ns.len(),
                threads,
                "expected one mark span per worker"
            );
        }
        prop_assert_eq!(t.worker_mark_ns().len(), threads);
    }

    /// Invariant 3: with no assertions registered, every per-kind overhead
    /// counter stays zero — checking work is attributable only to
    /// registered assertions (the Infrastructure configuration).
    #[test]
    fn overhead_zero_without_assertions(s in scenario(), threads in 1usize..4) {
        let mut vm = Vm::new(telemetry_config(threads));
        build(&mut vm, &s);
        vm.collect().unwrap();
        vm.collect().unwrap();
        let t = vm.telemetry();
        prop_assert!(
            t.overhead().is_zero(),
            "unattributable overhead: {:?}",
            t.overhead()
        );
        for r in t.records() {
            prop_assert!(r.overhead.is_zero());
        }
    }

    /// Invariant 3b: with assertions registered, the registration columns
    /// match the API call deltas.
    #[test]
    fn registrations_are_attributed(s in scenario(), threads in 1usize..4) {
        let mut vm = Vm::new(telemetry_config(threads));
        let objs = build(&mut vm, &s);
        let mut dead = 0u64;
        for &i in &s.dead_asserts {
            if vm.assert_dead(objs[i]).is_ok() {
                dead += 1;
            }
        }
        let mut unshared = 0u64;
        for &i in &s.unshared_asserts {
            if vm.assert_unshared(objs[i]).is_ok() {
                unshared += 1;
            }
        }
        vm.collect().unwrap();
        let t = vm.telemetry();
        prop_assert_eq!(t.overhead().dead.registered, dead);
        prop_assert_eq!(t.overhead().unshared.registered, unshared);
        // A second collection registers nothing new.
        vm.collect().unwrap();
        let t = vm.telemetry();
        prop_assert_eq!(t.overhead().dead.registered, dead);
        prop_assert_eq!(t.overhead().unshared.registered, unshared);
    }

    /// Invariant 4: the pause histogram counts exactly the major cycles
    /// and every record is a major (no generational mode here).
    #[test]
    fn histogram_count_equals_cycle_count(s in scenario(), cycles in 1usize..5) {
        let mut vm = Vm::new(telemetry_config(1));
        build(&mut vm, &s);
        for _ in 0..cycles {
            vm.collect().unwrap();
        }
        let t = vm.telemetry();
        prop_assert_eq!(t.cycles(), cycles as u64);
        prop_assert_eq!(t.pause_histogram().count(), cycles as u64);
        prop_assert_eq!(t.records().len(), cycles);
        prop_assert!(t.records().iter().all(|r| r.kind == CycleKind::Major));
        // Sequence numbers are 1..=cycles in order.
        for (i, r) in t.records().iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64 + 1);
        }
    }

    /// The knob is observably dark: a disabled VM yields the default
    /// (disabled, empty) snapshot no matter how much it collects.
    #[test]
    fn disabled_snapshot_is_empty(s in scenario(), threads in 1usize..4) {
        let mut vm = Vm::new(
            VmConfig::builder().heap_budget(1 << 20).gc_threads(threads).build(),
        );
        build(&mut vm, &s);
        vm.collect().unwrap();
        let t = vm.telemetry();
        prop_assert!(!t.enabled());
        prop_assert_eq!(t.cycles(), 0);
        prop_assert!(t.records().is_empty());
        prop_assert!(t.pause_histogram().is_empty());
    }
}

/// Base mode also records telemetry (spans and worker timings, with an
/// all-zero overhead matrix).
#[test]
fn base_mode_records_spans() {
    let mut vm = Vm::new(
        VmConfig::builder()
            .heap_budget(1 << 20)
            .mode(Mode::Base)
            .gc_threads(2)
            .telemetry(true)
            .build(),
    );
    let c = vm.register_class("N", &["f"]);
    let m = vm.main();
    let a = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let b = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(a, 0, b).unwrap();
    vm.collect().unwrap();
    let t = vm.telemetry();
    assert_eq!(t.cycles(), 1);
    assert_eq!(t.records()[0].worker_mark_ns.len(), 2);
    assert!(t.overhead().is_zero());
    assert_eq!(t.records()[0].pre_root_edges, 0);
}

/// Generational mode: minor collections appear as minor records and feed
/// the minor-pause histogram.
#[test]
fn minor_cycles_are_recorded() {
    let mut vm = Vm::new(
        VmConfig::builder()
            .heap_budget(1 << 20)
            .generational(8)
            .telemetry(true)
            .build(),
    );
    let c = vm.register_class("N", &["f"]);
    let m = vm.main();
    let keep = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let _ = keep;
    for _ in 0..3 {
        vm.alloc(m, c, 1, 0).unwrap();
    }
    vm.collect_minor().unwrap();
    vm.collect().unwrap();
    let t = vm.telemetry();
    assert_eq!(t.minor_cycles(), 1);
    assert_eq!(t.cycles(), 1);
    assert_eq!(t.minor_pause_histogram().count(), 1);
    let minor = &t.records()[0];
    assert_eq!(minor.kind, CycleKind::Minor);
    assert!(minor.objects_swept > 0 || minor.promoted > 0);
    assert_eq!(t.records()[1].kind, CycleKind::Major);
}
