//! Semantics of `assert-ownedby` (§2.5.2): the ownership phase, deferred
//! ownee processing, disjointness warnings, dead-owner floating garbage,
//! and the strict-owner-lifetime extension.

mod common;

use gc_assertions::{ObjRef, ViolationKind, Vm};

fn vm() -> Vm {
    Vm::new(common::cfg().build())
}

/// Container with three element slots, a cache with one slot.
fn container_setup(vm: &mut Vm) -> (ObjRef, ObjRef, Vec<ObjRef>) {
    let container = vm.register_class("Container", &["e0", "e1", "e2"]);
    let cache = vm.register_class("Cache", &["hit"]);
    let elem = vm.register_class("Elem", &["data"]);
    let m = vm.main();
    let cont = vm.alloc_rooted(m, container, 3, 0).unwrap();
    let cache_obj = vm.alloc_rooted(m, cache, 1, 0).unwrap();
    let mut elems = Vec::new();
    for i in 0..3 {
        let e = vm.alloc(m, elem, 1, 0).unwrap();
        vm.set_field(cont, i, e).unwrap();
        vm.assert_owned_by(cont, e).unwrap();
        elems.push(e);
    }
    (cont, cache_obj, elems)
}

#[test]
fn owned_elements_pass() {
    let mut vm = vm();
    let (_cont, _cache, _elems) = container_setup(&mut vm);
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
    assert_eq!(report.counters.owners_scanned, 1);
    assert_eq!(report.counters.ownees_checked, 3);
}

#[test]
fn cached_alias_is_fine_while_container_path_exists() {
    // The definition: at least ONE path must pass through the owner. An
    // extra cache alias is allowed.
    let mut vm = vm();
    let (_cont, cache, elems) = container_setup(&mut vm);
    vm.set_field(cache, 0, elems[1]).unwrap();
    assert!(vm.collect().unwrap().is_clean());
}

#[test]
fn element_only_reachable_from_cache_fires() {
    // The leak pattern from the paper: removed from the container, still
    // cached in a hash table.
    let mut vm = vm();
    let (cont, cache, elems) = container_setup(&mut vm);
    vm.set_field(cache, 0, elems[1]).unwrap();
    vm.set_field(cont, 1, ObjRef::NULL).unwrap(); // removed from container

    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    match &report.violations[0].kind {
        ViolationKind::NotOwned {
            ownee,
            ownee_class,
            owner,
            owner_class,
        } => {
            assert_eq!(*ownee, elems[1]);
            assert_eq!(ownee_class, "Elem");
            assert_eq!(*owner, cont);
            assert_eq!(owner_class, "Container");
        }
        other => panic!("wrong kind {other:?}"),
    }
    // The path goes through the cache — the reference to clear.
    assert!(report.violations[0]
        .path
        .passes_through(vm.registry(), "Cache"));
}

#[test]
fn removed_and_released_is_clean() {
    // Legitimate removal: the program releases the ownership assertion
    // when it takes the element out for good.
    let mut vm = vm();
    let (cont, cache, elems) = container_setup(&mut vm);
    vm.set_field(cache, 0, elems[1]).unwrap();
    vm.set_field(cont, 1, ObjRef::NULL).unwrap();
    assert!(vm.release_ownee(elems[1]).unwrap());
    assert!(vm.collect().unwrap().is_clean());
}

#[test]
fn ownee_dying_entirely_is_clean_and_retired() {
    let mut vm = vm();
    let (cont, _cache, elems) = container_setup(&mut vm);
    vm.set_field(cont, 2, ObjRef::NULL).unwrap(); // truly dropped
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
    assert!(!vm.is_live(elems[2]));
    // The pair was retired: only 2 ownees remain registered.
    assert_eq!(vm.ownee_count(), 2);
}

#[test]
fn ownee_reachable_through_sibling_ownee_counts_as_owned() {
    // owner -> e0 -> e1 (e1 only reachable via e0): the deferred-queue
    // processing must still credit e1 as owned.
    let mut vm = vm();
    let cls = vm.register_class("C", &["a", "b"]);
    let m = vm.main();
    let owner = vm.alloc_rooted(m, cls, 2, 0).unwrap();
    let e0 = vm.alloc(m, cls, 2, 0).unwrap();
    vm.set_field(owner, 0, e0).unwrap();
    let e1 = vm.alloc(m, cls, 2, 0).unwrap();
    vm.set_field(e0, 0, e1).unwrap();
    vm.assert_owned_by(owner, e0).unwrap();
    vm.assert_owned_by(owner, e1).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.counters.deferred_ownees_processed, 2);
}

#[test]
fn two_disjoint_owners_pass() {
    let mut vm = vm();
    let cls = vm.register_class("C", &["x"]);
    let m = vm.main();
    let o1 = vm.alloc_rooted(m, cls, 1, 0).unwrap();
    let o2 = vm.alloc_rooted(m, cls, 1, 0).unwrap();
    let e1 = vm.alloc(m, cls, 1, 0).unwrap();
    vm.set_field(o1, 0, e1).unwrap();
    let e2 = vm.alloc(m, cls, 1, 0).unwrap();
    vm.set_field(o2, 0, e2).unwrap();
    vm.assert_owned_by(o1, e1).unwrap();
    vm.assert_owned_by(o2, e2).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
    assert_eq!(report.counters.owners_scanned, 2);
}

#[test]
fn overlapping_owner_regions_warn_improper_use() {
    // o1's region contains an ownee of o2: disjointness violated.
    // o1 -> mid -> e2 where e2 is owned by o2.
    let mut vm = vm();
    let cls = vm.register_class("C", &["x", "y"]);
    let m = vm.main();
    let o1 = vm.alloc_rooted(m, cls, 2, 0).unwrap();
    let o2 = vm.alloc_rooted(m, cls, 2, 0).unwrap();
    let mid = vm.alloc(m, cls, 2, 0).unwrap();
    vm.set_field(o1, 0, mid).unwrap();
    let e2 = vm.alloc(m, cls, 2, 0).unwrap();
    vm.set_field(mid, 0, e2).unwrap();
    vm.set_field(o2, 0, e2).unwrap();
    let e1 = vm.alloc(m, cls, 2, 0).unwrap();
    vm.set_field(o1, 1, e1).unwrap();
    vm.assert_owned_by(o1, e1).unwrap();
    vm.assert_owned_by(o2, e2).unwrap();

    let report = vm.collect().unwrap();
    let improper: Vec<_> = report
        .violations
        .iter()
        .filter(|v| matches!(v.kind, ViolationKind::ImproperOwnership { .. }))
        .collect();
    // Whether the warning fires depends on scan order (the paper has the
    // same property); with o1 scanned first, reaching e2 via mid fires.
    assert!(
        !improper.is_empty(),
        "o1 is scanned first and reaches o2's ownee: {report}"
    );
    match &improper[0].kind {
        ViolationKind::ImproperOwnership {
            ownee,
            scanned_owner,
            ..
        } => {
            assert_eq!(*ownee, e2);
            assert_eq!(*scanned_owner, o1);
        }
        _ => unreachable!(),
    }
}

#[test]
fn encountering_another_owner_truncates_scan() {
    // o1 -> o2 -> e2: scanning from o1 stops at o2, so e2 is only
    // credited through o2's own scan — and the assertion holds.
    let mut vm = vm();
    let cls = vm.register_class("C", &["x"]);
    let m = vm.main();
    let o1 = vm.alloc_rooted(m, cls, 1, 0).unwrap();
    let o2 = vm.alloc(m, cls, 1, 0).unwrap();
    vm.set_field(o1, 0, o2).unwrap();
    let e2 = vm.alloc(m, cls, 1, 0).unwrap();
    vm.set_field(o2, 0, e2).unwrap();
    vm.assert_owned_by(o2, e2).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn dead_owner_is_collected_but_its_subgraph_floats_one_gc() {
    // §2.5.2: the owner is never marked by its own scan, so an
    // unreachable owner dies this GC; objects reachable only from it
    // survive until the next GC (memory pressure trade-off).
    let mut vm = vm();
    let cls = vm.register_class("C", &["x"]);
    let m = vm.main();
    let owner = vm.alloc(m, cls, 1, 0).unwrap();
    let slot = vm.add_root(m, owner).unwrap();
    let e = vm.alloc(m, cls, 1, 0).unwrap();
    vm.set_field(owner, 0, e).unwrap();
    vm.assert_owned_by(owner, e).unwrap();
    assert!(vm.collect().unwrap().is_clean());

    // Drop the owner.
    vm.set_root(m, slot, ObjRef::NULL).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
    assert!(!vm.is_live(owner), "owner collected immediately");
    assert!(vm.is_live(e), "ownee floats for one GC");
    assert_eq!(vm.owner_count(), 0, "pair retired");

    // The floating garbage is reclaimed by the following collection.
    vm.collect().unwrap();
    assert!(!vm.is_live(e));
}

#[test]
fn strict_owner_lifetime_extension_reports_survivors() {
    let mut vm = Vm::new(common::cfg().strict_owner_lifetime(true).build());
    let cls = vm.register_class("C", &["x"]);
    let keeper_cls = vm.register_class("Keeper", &["k"]);
    let m = vm.main();
    let owner = vm.alloc(m, cls, 1, 0).unwrap();
    let slot = vm.add_root(m, owner).unwrap();
    let e = vm.alloc(m, cls, 1, 0).unwrap();
    vm.set_field(owner, 0, e).unwrap();
    // Another object also keeps `e` alive.
    let keeper = vm.alloc_rooted(m, keeper_cls, 1, 0).unwrap();
    vm.set_field(keeper, 0, e).unwrap();
    vm.assert_owned_by(owner, e).unwrap();
    assert!(vm.collect().unwrap().is_clean());

    vm.set_root(m, slot, ObjRef::NULL).unwrap();
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    match &report.violations[0].kind {
        ViolationKind::OwneeOutlivedOwner {
            ownee, owner_class, ..
        } => {
            assert_eq!(*ownee, e);
            assert_eq!(owner_class, "C");
        }
        other => panic!("wrong kind {other:?}"),
    }
}

#[test]
fn ownership_conflicts_rejected_at_registration() {
    let mut vm = vm();
    let cls = vm.register_class("C", &[]);
    let m = vm.main();
    let a = vm.alloc_rooted(m, cls, 0, 0).unwrap();
    let b = vm.alloc_rooted(m, cls, 0, 0).unwrap();
    let c = vm.alloc_rooted(m, cls, 0, 0).unwrap();
    assert!(vm.assert_owned_by(a, a).is_err());
    vm.assert_owned_by(a, b).unwrap();
    assert!(vm.assert_owned_by(b, c).is_err(), "ownee cannot be owner");
    assert!(vm.assert_owned_by(c, a).is_err(), "owner cannot be ownee");
}

#[test]
fn ownee_cycles_inside_owner_region_are_handled() {
    // owner -> e0 <-> e1 (ownees point at each other): the truncation at
    // ownees plus the deferred queue must terminate and credit both.
    let mut vm = vm();
    let cls = vm.register_class("C", &["a", "b"]);
    let m = vm.main();
    let owner = vm.alloc_rooted(m, cls, 2, 0).unwrap();
    let e0 = vm.alloc(m, cls, 2, 0).unwrap();
    vm.set_field(owner, 0, e0).unwrap();
    let e1 = vm.alloc(m, cls, 2, 0).unwrap();
    vm.set_field(e0, 0, e1).unwrap();
    vm.set_field(e1, 0, e0).unwrap(); // back edge
    vm.assert_owned_by(owner, e0).unwrap();
    vm.assert_owned_by(owner, e1).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn back_edge_into_other_owner_region_does_not_false_positive() {
    // The SPECjbb shape: two order tables (owners), each owning an order;
    // each order points at a shared Customer whose lastOrder points at the
    // *other* table's order. The back edges cross owner regions below the
    // ownee level, which must neither warn (the owner regions proper are
    // disjoint) nor mask the ownership verdicts.
    let mut vm = vm();
    let table_cls = vm.register_class("Table", &["slot"]);
    let order_cls = vm.register_class("Order", &["customer"]);
    let cust_cls = vm.register_class("Customer", &["lastOrderA", "lastOrderB"]);
    let m = vm.main();
    let t1 = vm.alloc_rooted(m, table_cls, 1, 0).unwrap();
    let t2 = vm.alloc_rooted(m, table_cls, 1, 0).unwrap();
    let cust = vm.alloc_rooted(m, cust_cls, 2, 0).unwrap();
    let o1 = vm.alloc(m, order_cls, 1, 0).unwrap();
    vm.set_field(t1, 0, o1).unwrap();
    let o2 = vm.alloc(m, order_cls, 1, 0).unwrap();
    vm.set_field(t2, 0, o2).unwrap();
    vm.set_field(o1, 0, cust).unwrap();
    vm.set_field(o2, 0, cust).unwrap();
    vm.set_field(cust, 0, o1).unwrap();
    vm.set_field(cust, 1, o2).unwrap();
    vm.assert_owned_by(t1, o1).unwrap();
    vm.assert_owned_by(t2, o2).unwrap();

    let report = vm.collect().unwrap();
    assert!(
        report.is_clean(),
        "both orders are properly owned: {report}"
    );

    // Now remove o2 from its table: only the back edge keeps it alive —
    // a genuine leak that must be the one and only violation.
    vm.set_field(t2, 0, gc_assertions::ObjRef::NULL).unwrap();
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1, "{report}");
    match &report.violations[0].kind {
        ViolationKind::NotOwned { ownee, .. } => assert_eq!(*ownee, o2),
        other => panic!("wrong kind {other:?}"),
    }
}

#[test]
fn large_ownee_set_binary_search_scales() {
    // ~1000 ownees in one container; checked in a single pass.
    let mut vm = Vm::new(common::cfg().heap_budget(1 << 22).build());
    let arr = vm.register_class("Array", &[]);
    let elem = vm.register_class("Elem", &[]);
    let m = vm.main();
    let n = 1000;
    let cont = vm.alloc_rooted(m, arr, n, 0).unwrap();
    for i in 0..n {
        let e = vm.alloc(m, elem, 0, 0).unwrap();
        vm.set_field(cont, i, e).unwrap();
        vm.assert_owned_by(cont, e).unwrap();
    }
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
    assert_eq!(report.counters.ownees_checked, n as u64);
    assert_eq!(vm.ownee_count(), n);
}
