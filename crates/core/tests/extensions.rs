//! Tests for the features the paper lists as future work (§2.6) and our
//! QVM-style probe interface: per-assertion-class reactions, the
//! programmatic violation handler, and immediate heap probes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use gc_assertions::{AssertionClass, ObjRef, Reaction, ViolationKind, Vm, VmConfig, VmError};

fn leaky_vm(config: VmConfig) -> (Vm, ObjRef, ObjRef) {
    let mut vm = Vm::new(config);
    let c = vm.register_class("Holder", &["f"]);
    let m = vm.main();
    let h = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let x = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(h, 0, x).unwrap();
    vm.assert_dead(x).unwrap();
    (vm, h, x)
}

// ---------------------------------------------------------------------
// Per-class reactions
// ---------------------------------------------------------------------

#[test]
fn lifetime_halt_override_halts_on_dead_violation() {
    let config = VmConfig::builder()
        .reaction_for(AssertionClass::Lifetime, Reaction::Halt)
        .build();
    let (mut vm, _h, _x) = leaky_vm(config);
    let report = vm.collect().unwrap();
    assert!(report.halted);
    assert!(vm.is_halted());
}

#[test]
fn volume_halt_override_ignores_lifetime_violations() {
    // Halt only on instance-limit violations; the dead-reachable
    // violation is logged but execution continues.
    let config = VmConfig::builder()
        .reaction_for(AssertionClass::Volume, Reaction::Halt)
        .build();
    let (mut vm, _h, _x) = leaky_vm(config);
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    assert!(!report.halted);
    assert!(!vm.is_halted());
}

#[test]
fn lifetime_force_true_with_default_log() {
    // ForceTrue for lifetime assertions only; everything else logs.
    let config = VmConfig::builder()
        .reaction_for(AssertionClass::Lifetime, Reaction::ForceTrue)
        .build();
    let (mut vm, h, x) = leaky_vm(config);
    vm.collect().unwrap();
    assert_eq!(vm.field(h, 0).unwrap(), ObjRef::NULL, "edge severed");
    vm.collect().unwrap();
    assert!(!vm.is_live(x), "forced dead at the following GC");
}

#[test]
fn later_override_wins() {
    let config = VmConfig::builder()
        .reaction_for(AssertionClass::Lifetime, Reaction::Halt)
        .reaction_for(AssertionClass::Lifetime, Reaction::Log)
        .build();
    assert_eq!(
        config.effective_reaction(AssertionClass::Lifetime),
        Reaction::Log
    );
    assert_eq!(
        config.effective_reaction(AssertionClass::Volume),
        Reaction::Log
    );
}

#[test]
fn connectivity_class_maps_ownership_violations() {
    let config = VmConfig::builder()
        .reaction_for(AssertionClass::Connectivity, Reaction::Halt)
        .build();
    let mut vm = Vm::new(config);
    let c = vm.register_class("C", &["f"]);
    let m = vm.main();
    let owner = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let keeper = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let e = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(owner, 0, e).unwrap();
    vm.set_field(keeper, 0, e).unwrap();
    vm.assert_owned_by(owner, e).unwrap();
    vm.set_field(owner, 0, ObjRef::NULL).unwrap(); // leak via keeper
    let report = vm.collect().unwrap();
    assert!(matches!(
        report.violations[0].kind,
        ViolationKind::NotOwned { .. }
    ));
    assert_eq!(report.violations[0].class(), AssertionClass::Connectivity);
    assert!(report.halted);
}

// ---------------------------------------------------------------------
// Programmatic violation handler
// ---------------------------------------------------------------------

#[test]
fn handler_sees_every_violation() {
    let seen = Arc::new(AtomicUsize::new(0));
    let (mut vm, _h, _x) = leaky_vm(VmConfig::builder().report_once(false).build());
    let seen2 = Arc::clone(&seen);
    vm.set_violation_handler(move |v, registry| {
        assert!(v.render(registry).contains("asserted dead"));
        seen2.fetch_add(1, Ordering::SeqCst);
    });
    vm.collect().unwrap();
    vm.collect().unwrap();
    assert_eq!(seen.load(Ordering::SeqCst), 2);

    vm.clear_violation_handler();
    vm.collect().unwrap();
    assert_eq!(seen.load(Ordering::SeqCst), 2, "handler removed");
}

#[test]
fn handler_fires_for_implicit_collections_too() {
    let seen = Arc::new(AtomicUsize::new(0));
    let mut vm = Vm::new(
        VmConfig::builder()
            .heap_budget(64)
            .grow_on_oom(true)
            .build(),
    );
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let x = vm.alloc_rooted(m, c, 0, 0).unwrap();
    vm.assert_dead(x).unwrap();
    let seen2 = Arc::clone(&seen);
    vm.set_violation_handler(move |_, _| {
        seen2.fetch_add(1, Ordering::SeqCst);
    });
    // Allocation pressure triggers the collection that checks the bit.
    for _ in 0..40 {
        vm.alloc(m, c, 0, 8).unwrap();
    }
    assert!(seen.load(Ordering::SeqCst) >= 1);
}

// ---------------------------------------------------------------------
// QVM-style probes
// ---------------------------------------------------------------------

#[test]
fn probe_path_finds_live_objects() {
    let mut vm = Vm::new(VmConfig::builder().build());
    let c = vm.register_class("Node", &["next"]);
    let m = vm.main();
    let a = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let b = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(a, 0, b).unwrap();

    let path = vm.probe_path(b).unwrap().expect("b is reachable");
    let chain: Vec<ObjRef> = path.steps().iter().map(|s| s.object).collect();
    assert_eq!(chain, vec![a, b]);

    // Unreachable object: no path (even though still live pre-GC).
    vm.set_field(a, 0, ObjRef::NULL).unwrap();
    assert!(vm.probe_path(b).unwrap().is_none());
    assert!(!vm.probe_reachable(b).unwrap());
    assert!(vm.is_live(b), "probe does not sweep");
}

#[test]
fn probe_leaves_heap_state_clean() {
    // Probing must not leave marks that would confuse a later collection.
    let mut vm = Vm::new(VmConfig::builder().build());
    let c = vm.register_class("T", &["f"]);
    let m = vm.main();
    let root = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let child = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(root, 0, child).unwrap();
    let garbage = vm.alloc(m, c, 1, 0).unwrap();

    assert!(vm.probe_reachable(root).unwrap());
    assert!(!vm.probe_reachable(garbage).unwrap());

    // The collection after probing behaves normally.
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
    assert!(vm.is_live(child));
    assert!(!vm.is_live(garbage));
    // And a second probe still works after the GC.
    assert!(vm.probe_reachable(child).unwrap());
}

#[test]
fn probe_instances_counts_reachable_only() {
    let mut vm = Vm::new(VmConfig::builder().build());
    let c = vm.register_class("Searcher", &[]);
    let other = vm.register_class("Other", &[]);
    let m = vm.main();
    for _ in 0..5 {
        vm.alloc_rooted(m, c, 0, 0).unwrap();
    }
    vm.alloc_rooted(m, other, 0, 0).unwrap();
    let _unreachable = vm.alloc(m, c, 0, 0).unwrap();
    assert_eq!(vm.probe_instances(c).unwrap(), 5);
    assert_eq!(vm.probe_instances(other).unwrap(), 1);
}

#[test]
fn probe_of_dead_handle_is_none() {
    let mut vm = Vm::new(VmConfig::builder().build());
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let x = vm.alloc(m, c, 0, 0).unwrap();
    vm.collect().unwrap();
    assert!(vm.probe_path(x).unwrap().is_none());
}

#[test]
fn explain_instances_gives_a_path_per_instance() {
    // The lusearch follow-up: the instance-limit report has no paths, so
    // explain_instances supplies them.
    let mut vm = Vm::new(VmConfig::builder().build());
    let searcher = vm.register_class("IndexSearcher", &[]);
    let thread_cls = vm.register_class("SearchThread", &["searcher"]);
    let m = vm.main();
    let mut expected = Vec::new();
    for _ in 0..4 {
        let t = vm.alloc_rooted(m, thread_cls, 1, 0).unwrap();
        let s = vm.alloc(m, searcher, 0, 0).unwrap();
        vm.set_field(t, 0, s).unwrap();
        expected.push(s);
    }
    let found = vm.explain_instances(searcher).unwrap();
    assert_eq!(found.len(), 4);
    for (obj, path) in &found {
        assert!(expected.contains(obj));
        assert!(path.passes_through(vm.registry(), "SearchThread"));
        assert_eq!(path.target(), Some(*obj));
    }
    // The heap is usable afterwards (marks cleared).
    assert!(vm.collect().unwrap().is_clean());
}

#[test]
fn incoming_references_enumerates_all_edges() {
    let mut vm = Vm::new(VmConfig::builder().build());
    let c = vm.register_class("N", &["a", "b"]);
    let m = vm.main();
    let p1 = vm.alloc_rooted(m, c, 2, 0).unwrap();
    let p2 = vm.alloc_rooted(m, c, 2, 0).unwrap();
    let x = vm.alloc(m, c, 2, 0).unwrap();
    vm.set_field(p1, 0, x).unwrap();
    vm.set_field(p1, 1, x).unwrap();
    vm.set_field(p2, 1, x).unwrap();

    let (edges, rooted) = vm.incoming_references(x).unwrap();
    assert!(!rooted);
    let mut got = edges.clone();
    got.sort();
    assert_eq!(got, vec![(p1, 0), (p1, 1), (p2, 1)]);

    // Rooting is reported separately.
    vm.add_root(m, x).unwrap();
    let (_, rooted) = vm.incoming_references(x).unwrap();
    assert!(rooted);

    // Dead targets are rejected.
    let dead = vm.alloc(m, c, 2, 0).unwrap();
    vm.collect().unwrap();
    assert!(vm.incoming_references(dead).is_err());
}

#[test]
fn probes_respect_halt() {
    let (mut vm, _h, x) = leaky_vm(VmConfig::builder().reaction(Reaction::Halt).build());
    vm.collect().unwrap();
    assert!(matches!(vm.probe_path(x), Err(VmError::Halted)));
    assert!(matches!(
        vm.probe_instances(vm.registry().lookup("Holder").unwrap()),
        Err(VmError::Halted)
    ));
}
