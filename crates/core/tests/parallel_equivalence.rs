//! Differential property test for the parallel mark phase: on randomized
//! heap programs exercising **all five assertion kinds**, a VM collecting
//! with `gc_threads = 1` (the sequential §2.7 tracer) and VMs collecting
//! with 2 and 4 work-stealing tracers must agree on
//!
//! * the final live set (allocation-ordered liveness bitmap),
//! * the multiset of violations (kind + objects, paths excluded — the
//!   parallel reconstruction may legally pick a different valid path),
//! * the cumulative check counters (owners scanned, ownees checked,
//!   deferred ownees, dead bits, tracked instances).
//!
//! Ownership assertions are registered in the paper's supported shape —
//! the owner references its ownee directly (disjoint regions) — because
//! for *improper* overlapping regions the sequential verdicts are
//! scan-order-dependent and a parallel trace is free to order scans
//! differently.

use gc_assertions::{ObjRef, Vm, VmConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a 3-ref-field node, optionally rooting it.
    Alloc { root: bool },
    /// Link field of one rooted object to another.
    Link {
        from: usize,
        field: usize,
        to: usize,
    },
    /// Null out a field of a rooted object.
    Unlink { from: usize, field: usize },
    /// `assert-dead` on a rooted (guaranteed-reachable) or recent object.
    AssertDead { idx: usize },
    /// `assert-unshared` on a rooted object.
    AssertUnshared { idx: usize },
    /// Allocate a fresh rooted owner and its ownee (owner.f0 = ownee),
    /// then `assert-ownedby`.
    Own,
    /// Null out an owner's direct edge to its ownee: the ownee becomes
    /// `NotOwned` if a foreign edge still reaches it, or dies.
    DropOwnEdge { idx: usize },
    /// Foreign edge: point a rooted object's field at an ownee.
    LinkOwnee { from: usize, ownee: usize },
    /// Region assertion: allocate `n` scratch objects in a region;
    /// optionally leak one into the rooted graph before `assert-alldead`.
    Region { n: usize, leak: bool },
    /// Unroot every rooted handle past `keep`.
    UnrootTo { keep: usize },
    /// Force a full collection.
    Collect,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<bool>().prop_map(|root| Op::Alloc { root }),
        3 => (0usize..64, 0usize..3, 0usize..64)
            .prop_map(|(from, field, to)| Op::Link { from, field, to }),
        2 => (0usize..64, 0usize..3).prop_map(|(from, field)| Op::Unlink { from, field }),
        2 => (0usize..64).prop_map(|idx| Op::AssertDead { idx }),
        2 => (0usize..64).prop_map(|idx| Op::AssertUnshared { idx }),
        2 => Just(Op::Own),
        1 => (0usize..16).prop_map(|idx| Op::DropOwnEdge { idx }),
        1 => (0usize..64, 0usize..16).prop_map(|(from, ownee)| Op::LinkOwnee { from, ownee }),
        1 => (1usize..4, any::<bool>()).prop_map(|(n, leak)| Op::Region { n, leak }),
        1 => (0usize..16).prop_map(|keep| Op::UnrootTo { keep }),
        2 => Just(Op::Collect),
    ]
}

#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    liveness: Vec<bool>,
    violations: Vec<String>,
    totals: (u64, u64, u64, u64, u64),
}

/// Runs the op stream on a VM with `workers` tracing threads. Operations
/// only reference rooted objects (or track deaths), so the stream is
/// valid under any collection schedule — and the schedule itself is
/// identical across worker counts (same budget, same ops).
fn run(workers: usize, ops: &[Op]) -> Outcome {
    let config = VmConfig::builder()
        .heap_budget(200_000)
        .gc_threads(workers)
        .build();
    let mut vm = Vm::new(config);
    let n = vm.register_class("N", &["a", "b", "c"]);
    let owner_class = vm.register_class("Owner", &["ownee"]);
    let ownee_class = vm.register_class("Ownee", &["x"]);
    let scratch = vm.register_class("Scratch", &[]);
    let m = vm.main();

    // Volume assertion up front: at most 5 live `N` instances at GC.
    vm.assertions().instances(n, 5).unwrap();

    let mut allocated: Vec<ObjRef> = Vec::new();
    let mut rooted: Vec<(usize, ObjRef)> = Vec::new();
    let mut owners: Vec<ObjRef> = Vec::new();
    let mut ownees: Vec<ObjRef> = Vec::new();
    let mut violations: Vec<String> = Vec::new();

    let do_collect = |vm: &mut Vm, violations: &mut Vec<String>| {
        let report = vm.collect().unwrap();
        violations.extend(report.violations.iter().map(|v| format!("{:?}", v.kind)));
        let problems = vm.heap().verify();
        assert!(problems.is_empty(), "heap corruption: {problems:?}");
    };

    for op in ops {
        match op {
            Op::Alloc { root } => {
                let o = vm.alloc(m, n, 3, 1).unwrap();
                allocated.push(o);
                if *root {
                    let slot = vm.add_root(m, o).unwrap();
                    rooted.push((slot, o));
                }
            }
            Op::Link { from, field, to } if !rooted.is_empty() => {
                let f = rooted[from % rooted.len()].1;
                let t = rooted[to % rooted.len()].1;
                vm.set_field(f, field % 3, t).unwrap();
            }
            Op::Unlink { from, field } if !rooted.is_empty() => {
                let f = rooted[from % rooted.len()].1;
                vm.set_field(f, field % 3, ObjRef::NULL).unwrap();
            }
            Op::AssertDead { idx } if !rooted.is_empty() => {
                let o = rooted[idx % rooted.len()].1;
                vm.assertions().dead(o).unwrap();
            }
            Op::AssertUnshared { idx } if !rooted.is_empty() => {
                let o = rooted[idx % rooted.len()].1;
                vm.assertions().unshared(o).unwrap();
            }
            Op::Own => {
                let owner = vm.alloc_rooted(m, owner_class, 1, 0).unwrap();
                let ownee = vm.alloc(m, ownee_class, 1, 0).unwrap();
                vm.set_field(owner, 0, ownee).unwrap();
                vm.assertions().owned_by(owner, ownee).unwrap();
                owners.push(owner);
                ownees.push(ownee);
                allocated.push(owner);
                allocated.push(ownee);
            }
            Op::DropOwnEdge { idx } if !owners.is_empty() => {
                let owner = owners[idx % owners.len()];
                if vm.is_live(owner) {
                    vm.set_field(owner, 0, ObjRef::NULL).unwrap();
                }
            }
            Op::LinkOwnee { from, ownee } if !rooted.is_empty() && !ownees.is_empty() => {
                let f = rooted[from % rooted.len()].1;
                let o = ownees[ownee % ownees.len()];
                if vm.is_live(o) {
                    // Field 2 is reserved for foreign ownee edges so the
                    // random Link/Unlink churn on fields 0..3 of class N
                    // cannot silently overwrite ownership topology wired
                    // here (class N objects also use field 2, but any
                    // overwrite is itself deterministic).
                    vm.set_field(f, 2, o).unwrap();
                }
            }
            Op::Region { n: num, leak } => {
                let mut region = vm.assertions().region(m).unwrap();
                let mut last = ObjRef::NULL;
                for _ in 0..*num {
                    last = region.alloc(m, scratch, 0, 2).unwrap();
                }
                if *leak && !rooted.is_empty() && last.is_some() {
                    let f = rooted[0].1;
                    region.set_field(f, 1, last).unwrap();
                }
                drop(region); // assert-alldead fires here
            }
            Op::UnrootTo { keep } if rooted.len() > *keep => {
                for &(slot, _) in &rooted[*keep..] {
                    vm.set_root(m, slot, ObjRef::NULL).unwrap();
                }
                rooted.truncate(*keep);
            }
            Op::Collect => do_collect(&mut vm, &mut violations),
            _ => {}
        }
    }
    do_collect(&mut vm, &mut violations);
    violations.sort();

    let t = vm.check_totals();
    Outcome {
        liveness: allocated.iter().map(|&o| vm.is_live(o)).collect(),
        violations,
        totals: (
            t.owners_scanned,
            t.ownees_checked,
            t.deferred_ownees_processed,
            t.dead_bits_seen,
            t.tracked_instances_counted,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_marking_matches_sequential(
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let seq = run(1, &ops);
        for workers in [2usize, 4] {
            let par = run(workers, &ops);
            prop_assert_eq!(
                &seq.liveness, &par.liveness,
                "live-set divergence at {} workers", workers
            );
            prop_assert_eq!(
                &seq.violations, &par.violations,
                "violation divergence at {} workers", workers
            );
            prop_assert_eq!(
                &seq.totals, &par.totals,
                "check-counter divergence at {} workers", workers
            );
        }
    }
}
