//! Interactions between assertion kinds within a single collection: the
//! checks share one trace, one set of header bits, and one engine, so
//! their combinations deserve their own coverage.

mod common;

use gc_assertions::{ObjRef, Reaction, ViolationKind, Vm};

fn vm() -> Vm {
    Vm::new(common::cfg().build())
}

#[test]
fn all_five_assertions_in_one_collection() {
    let mut vm = vm();
    let m = vm.main();
    let holder_cls = vm.register_class("Holder", &["a", "b"]);
    let item_cls = vm.register_class("Item", &[]);
    let singleton_cls = vm.register_class("Singleton", &[]);

    // assert-dead violation.
    let h = vm.alloc_rooted(m, holder_cls, 2, 0).unwrap();
    let dead = vm.alloc(m, item_cls, 0, 0).unwrap();
    vm.set_field(h, 0, dead).unwrap();
    vm.assert_dead(dead).unwrap();

    // assert-unshared violation.
    let shared = vm.alloc(m, item_cls, 0, 0).unwrap();
    vm.set_field(h, 1, shared).unwrap();
    let h2 = vm.alloc_rooted(m, holder_cls, 2, 0).unwrap();
    vm.set_field(h2, 0, shared).unwrap();
    vm.assert_unshared(shared).unwrap();

    // assert-instances violation.
    vm.assert_instances(singleton_cls, 1).unwrap();
    vm.alloc_rooted(m, singleton_cls, 0, 0).unwrap();
    vm.alloc_rooted(m, singleton_cls, 0, 0).unwrap();

    // assert-owned-by violation.
    let owner = vm.alloc_rooted(m, holder_cls, 2, 0).unwrap();
    let ownee = vm.alloc(m, item_cls, 0, 0).unwrap();
    vm.set_field(owner, 0, ownee).unwrap();
    let keeper = vm.alloc_rooted(m, holder_cls, 2, 0).unwrap();
    vm.set_field(keeper, 0, ownee).unwrap();
    vm.assert_owned_by(owner, ownee).unwrap();
    vm.set_field(owner, 0, ObjRef::NULL).unwrap();

    // region violation (assert-dead via region).
    vm.start_region(m).unwrap();
    let region_leak = vm.alloc_rooted(m, item_cls, 0, 0).unwrap();
    let _ = region_leak;
    vm.assert_alldead(m).unwrap();

    let report = vm.collect().unwrap();
    let kinds: Vec<&'static str> = report
        .violations
        .iter()
        .map(|v| match v.kind {
            ViolationKind::DeadReachable { .. } => "dead",
            ViolationKind::Shared { .. } => "shared",
            ViolationKind::InstanceLimit { .. } => "instances",
            ViolationKind::NotOwned { .. } => "not-owned",
            _ => "other",
        })
        .collect();
    assert_eq!(
        kinds.iter().filter(|k| **k == "dead").count(),
        2,
        "direct + region: {kinds:?}"
    );
    assert_eq!(kinds.iter().filter(|k| **k == "shared").count(), 1);
    assert_eq!(kinds.iter().filter(|k| **k == "instances").count(), 1);
    assert_eq!(kinds.iter().filter(|k| **k == "not-owned").count(), 1);
}

#[test]
fn dead_ownee_inside_owner_region_reports_both_facts() {
    // An object both asserted dead and owned: reached via the ownership
    // phase, its DEAD bit fires there; ownership holds (reachable through
    // the owner), so no NotOwned.
    let mut vm = vm();
    let m = vm.main();
    let c = vm.register_class("C", &["f"]);
    let owner = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let x = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(owner, 0, x).unwrap();
    vm.assert_owned_by(owner, x).unwrap();
    vm.assert_dead(x).unwrap();

    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1, "{report}");
    assert!(matches!(
        report.violations[0].kind,
        ViolationKind::DeadReachable { .. }
    ));
}

#[test]
fn force_true_on_ownee_retires_pair_next_gc() {
    // ForceTrue severs the edges to an asserted-dead ownee; once it dies,
    // its ownership pair is retired and later GCs are clean.
    let mut vm = Vm::new(common::cfg().reaction(Reaction::ForceTrue).build());
    let m = vm.main();
    let c = vm.register_class("C", &["f"]);
    let owner = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let x = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(owner, 0, x).unwrap();
    vm.assert_owned_by(owner, x).unwrap();
    vm.assert_dead(x).unwrap();

    vm.collect().unwrap(); // reports dead-reachable, severs owner.f
    assert_eq!(vm.field(owner, 0).unwrap(), ObjRef::NULL);
    vm.collect().unwrap(); // x reclaimed; pair retired
    assert!(!vm.is_live(x));
    assert_eq!(vm.ownee_count(), 0);
    let report = vm.collect().unwrap();
    assert!(report.is_clean());
}

#[test]
fn unshared_checked_during_ownership_phase_scans() {
    // The second incoming pointer to an unshared object can be discovered
    // during the ownership phase (both edges inside an owner region).
    let mut vm = vm();
    let m = vm.main();
    let c = vm.register_class("C", &["a", "b"]);
    let owner = vm.alloc_rooted(m, c, 2, 0).unwrap();
    let mid = vm.alloc(m, c, 2, 0).unwrap();
    vm.set_field(owner, 0, mid).unwrap();
    let shared = vm.alloc(m, c, 2, 0).unwrap();
    vm.set_field(mid, 0, shared).unwrap();
    vm.set_field(mid, 1, shared).unwrap(); // two edges
    vm.assert_unshared(shared).unwrap();
    let dummy_ownee = vm.alloc(m, c, 2, 0).unwrap();
    vm.set_field(owner, 1, dummy_ownee).unwrap();
    vm.assert_owned_by(owner, dummy_ownee).unwrap();

    let report = vm.collect().unwrap();
    let shared_hits = report
        .violations
        .iter()
        .filter(|v| matches!(v.kind, ViolationKind::Shared { .. }))
        .count();
    assert_eq!(shared_hits, 1, "{report}");
}

#[test]
fn report_once_is_per_object_not_per_kind() {
    // One object with both DEAD and UNSHARED asserted: the REPORTED bit
    // is shared, so only the first-detected kind is reported under
    // report-once (documented coupling).
    let mut vm = Vm::new(common::cfg().report_once(true).build());
    let m = vm.main();
    let c = vm.register_class("C", &["a", "b"]);
    let h = vm.alloc_rooted(m, c, 2, 0).unwrap();
    let x = vm.alloc(m, c, 2, 0).unwrap();
    vm.set_field(h, 0, x).unwrap();
    vm.set_field(h, 1, x).unwrap();
    vm.assert_dead(x).unwrap();
    vm.assert_unshared(x).unwrap();
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1, "{report}");
    // Without report-once, both kinds fire.
    let mut vm2 = Vm::new(common::cfg().report_once(false).build());
    let m2 = vm2.main();
    let c2 = vm2.register_class("C", &["a", "b"]);
    let h2 = vm2.alloc_rooted(m2, c2, 2, 0).unwrap();
    let x2 = vm2.alloc(m2, c2, 2, 0).unwrap();
    vm2.set_field(h2, 0, x2).unwrap();
    vm2.set_field(h2, 1, x2).unwrap();
    vm2.assert_dead(x2).unwrap();
    vm2.assert_unshared(x2).unwrap();
    let report2 = vm2.collect().unwrap();
    assert_eq!(report2.violations.len(), 2, "{report2}");
}

#[test]
fn instance_counts_unaffected_by_other_violations() {
    // A collection with many dead-reachable violations still counts
    // tracked instances exactly.
    let mut vm = vm();
    let m = vm.main();
    let c = vm.register_class("T", &[]);
    vm.assert_instances(c, 1000).unwrap();
    for _ in 0..50 {
        let x = vm.alloc_rooted(m, c, 0, 0).unwrap();
        vm.assert_dead(x).unwrap(); // all violated
    }
    let report = vm.collect().unwrap();
    assert_eq!(report.counters.tracked_instances_counted, 50);
    assert_eq!(report.violations.len(), 50);
    assert!(report
        .violations
        .iter()
        .all(|v| matches!(v.kind, ViolationKind::DeadReachable { .. })));
}

#[test]
fn halt_mid_collection_still_produces_full_report() {
    // Halt stops the *mutator*, not the collection: the report contains
    // every violation found in the cycle, not just the first.
    let mut vm = Vm::new(common::cfg().reaction(Reaction::Halt).build());
    let m = vm.main();
    let c = vm.register_class("T", &[]);
    for _ in 0..5 {
        let x = vm.alloc_rooted(m, c, 0, 0).unwrap();
        vm.assert_dead(x).unwrap();
    }
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 5);
    assert!(report.halted);
}
