//! Generational-mode semantics (paper §2.2): minor collections are cheap
//! and frequent but check no assertions, so violations are detected only
//! when a major collection runs — "allowing some assertions to go
//! unchecked for long periods of time".

use gc_assertions::{ObjRef, Vm, VmConfig};

fn gen_vm(major_every: usize) -> Vm {
    Vm::new(
        VmConfig::builder()
            .heap_budget(2_000)
            .grow_on_oom(true)
            .generational(major_every)
            .build(),
    )
}

#[test]
fn minor_reclaims_young_garbage() {
    let mut vm = gen_vm(1000);
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let keep = vm.alloc_rooted(m, c, 0, 4).unwrap();
    for _ in 0..10 {
        vm.alloc(m, c, 0, 4).unwrap();
    }
    let stats = vm.collect_minor().unwrap();
    assert_eq!(stats.objects_swept, 10);
    assert_eq!(stats.promoted, 1);
    assert!(vm.is_live(keep));
    assert_eq!(vm.minor_collections(), 1);
}

#[test]
fn promoted_objects_survive_minors_without_roots_scanning_them() {
    let mut vm = gen_vm(1000);
    let c = vm.register_class("T", &["f"]);
    let m = vm.main();
    let a = vm.alloc_rooted(m, c, 1, 0).unwrap();
    vm.collect_minor().unwrap(); // a promoted
                                 // Old garbage: drop the root; minors never reclaim old objects.
    vm.set_root(m, 0, ObjRef::NULL).unwrap();
    vm.collect_minor().unwrap();
    assert!(vm.is_live(a), "old garbage survives minors");
    // The major reclaims it.
    vm.collect().unwrap();
    assert!(!vm.is_live(a));
}

#[test]
fn write_barrier_keeps_old_to_young_edges_alive() {
    let mut vm = gen_vm(1000);
    let c = vm.register_class("T", &["f"]);
    let m = vm.main();
    let old = vm.alloc_rooted(m, c, 1, 0).unwrap();
    vm.collect_minor().unwrap(); // promote `old`
                                 // Create an old -> young edge; the barrier must remember it.
    let young = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(old, 0, young).unwrap();
    let stats = vm.collect_minor().unwrap();
    assert!(stats.remembered_scanned >= 1, "barrier fed the minor");
    assert!(vm.is_live(young), "old->young edge honoured");
    // And the promoted young object keeps surviving.
    vm.collect_minor().unwrap();
    assert!(vm.is_live(young));
}

#[test]
fn young_to_young_chains_survive_via_roots() {
    let mut vm = gen_vm(1000);
    let c = vm.register_class("T", &["f"]);
    let m = vm.main();
    let head = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let tail = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(head, 0, tail).unwrap();
    let stats = vm.collect_minor().unwrap();
    assert_eq!(stats.promoted, 2);
    assert!(vm.is_live(tail));
}

#[test]
fn assertions_go_unchecked_until_the_major() {
    // The §2.2 trade-off, pinned: an assert_dead violation survives any
    // number of minors unreported and is caught by the first major.
    let mut vm = gen_vm(1000);
    let c = vm.register_class("T", &["f"]);
    let m = vm.main();
    let holder = vm.alloc_rooted(m, c, 1, 0).unwrap();
    let x = vm.alloc(m, c, 1, 0).unwrap();
    vm.set_field(holder, 0, x).unwrap();
    vm.assert_dead(x).unwrap();

    for _ in 0..5 {
        vm.collect_minor().unwrap();
        assert!(
            vm.violation_log().is_empty(),
            "minor collections check no assertions"
        );
    }
    assert!(vm.is_live(x));

    let report = vm.collect().unwrap(); // the major
    assert_eq!(report.violations.len(), 1, "detected only now");
}

#[test]
fn satisfied_dead_assertions_resolve_silently_in_minors() {
    // An object that really dies young is reclaimed by the nursery with
    // its DEAD bit set and never reported — correct behaviour.
    let mut vm = gen_vm(1000);
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    let x = vm.alloc(m, c, 0, 0).unwrap();
    vm.assert_dead(x).unwrap();
    let stats = vm.collect_minor().unwrap();
    assert_eq!(stats.objects_swept, 1);
    assert!(vm.violation_log().is_empty());
    assert!(vm.collect().unwrap().is_clean(), "nothing left to report");
}

#[test]
fn allocation_pressure_drives_minors_then_scheduled_major() {
    let mut vm = Vm::new(
        VmConfig::builder()
            .heap_budget(600)
            .grow_on_oom(true)
            .generational(4)
            .build(),
    );
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    for _ in 0..600 {
        vm.alloc(m, c, 0, 6).unwrap(); // churn; everything dies young
    }
    assert!(vm.minor_collections() > 0, "pressure ran minors");
    assert!(
        vm.gc_stats().collections > 0,
        "the every-4th-policy forced majors"
    );
    assert!(
        vm.minor_collections() >= vm.gc_stats().collections,
        "minors at least as frequent as majors"
    );
}

#[test]
fn generational_and_marksweep_agree_on_final_liveness() {
    // Same program under both collectors: after a final major, the
    // surviving object set is identical.
    fn run(config: VmConfig) -> (Vm, Vec<ObjRef>, Vec<ObjRef>) {
        let mut vm = Vm::new(config);
        let c = vm.register_class("T", &["a", "b"]);
        let m = vm.main();
        let mut kept = Vec::new();
        let mut dropped = Vec::new();
        for i in 0..300 {
            let o = vm.alloc(m, c, 2, 2).unwrap();
            if i % 7 == 0 {
                vm.add_root(m, o).unwrap();
                kept.push(o);
            } else if i % 11 == 0 {
                // Hang it off the most recent kept object.
                if let Some(&parent) = kept.last() {
                    vm.set_field(parent, 0, o).unwrap();
                    kept.push(o);
                } else {
                    dropped.push(o);
                }
            } else {
                dropped.push(o);
            }
        }
        vm.collect().unwrap();
        (vm, kept, dropped)
    }

    let base_cfg = VmConfig::builder()
        .heap_budget(1_500)
        .grow_on_oom(true)
        .build();
    let (vm_ms, kept_ms, dropped_ms) = run(base_cfg.clone());
    let (vm_gen, kept_gen, dropped_gen) = run(base_cfg.generational(3));

    for (a, b) in kept_ms.iter().zip(&kept_gen) {
        assert_eq!(vm_ms.is_live(*a), vm_gen.is_live(*b));
        assert!(vm_gen.is_live(*b));
    }
    for (a, b) in dropped_ms.iter().zip(&dropped_gen) {
        assert_eq!(vm_ms.is_live(*a), vm_gen.is_live(*b), "{a} vs {b}");
    }
}

#[test]
fn minors_are_cheaper_than_majors_with_large_old_generation() {
    // Build a large old generation, then compare one minor against one
    // major: the minor must trace far less.
    let mut vm = Vm::new(
        VmConfig::builder()
            .heap_budget(1 << 22)
            .generational(1_000)
            .build(),
    );
    let c = vm.register_class("T", &["f"]);
    let m = vm.main();
    // 20k-object old structure.
    let mut prev = vm.alloc_rooted(m, c, 1, 2).unwrap();
    for _ in 0..20_000 {
        let o = vm.alloc(m, c, 1, 2).unwrap();
        vm.set_field(o, 0, prev).unwrap();
        vm.set_root(m, 0, o).unwrap();
        prev = o;
    }
    vm.collect().unwrap(); // promote everything

    // Some young churn.
    for _ in 0..100 {
        vm.alloc(m, c, 1, 2).unwrap();
    }
    let minor = vm.collect_minor().unwrap();
    // Fresh young churn for the major to chew on.
    for _ in 0..100 {
        vm.alloc(m, c, 1, 2).unwrap();
    }
    let major = vm.collect().unwrap();
    assert!(
        minor.total < major.cycle.total,
        "minor {:?} should be cheaper than major {:?}",
        minor.total,
        major.cycle.total
    );
}

#[test]
fn regions_work_under_generational_collection() {
    let mut vm = gen_vm(3);
    let c = vm.register_class("T", &[]);
    let m = vm.main();
    vm.start_region(m).unwrap();
    let leaked = vm.alloc_rooted(m, c, 0, 0).unwrap();
    vm.alloc(m, c, 0, 0).unwrap();
    vm.assert_alldead(m).unwrap();
    // Minors don't check; the major does.
    vm.collect_minor().unwrap();
    assert!(vm.violation_log().is_empty());
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    assert!(vm.is_live(leaked));
}
