//! Semantics of `assert-instances` (§2.4.1).

mod common;

use gc_assertions::{ViolationKind, Vm};

fn vm() -> Vm {
    Vm::new(common::cfg().build())
}

#[test]
fn under_limit_passes() {
    let mut vm = vm();
    let c = vm.register_class("Conn", &[]);
    let m = vm.main();
    vm.assert_instances(c, 4).unwrap();
    for _ in 0..4 {
        vm.alloc_rooted(m, c, 0, 0).unwrap();
    }
    assert!(vm.collect().unwrap().is_clean());
}

#[test]
fn over_limit_fires_with_counts() {
    // The lusearch scenario: one IndexSearcher recommended, 32 live.
    let mut vm = vm();
    let c = vm.register_class("IndexSearcher", &[]);
    let m = vm.main();
    vm.assert_instances(c, 1).unwrap();
    for _ in 0..32 {
        vm.alloc_rooted(m, c, 0, 0).unwrap();
    }
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    match &report.violations[0].kind {
        ViolationKind::InstanceLimit {
            class_name,
            limit,
            count,
        } => {
            assert_eq!(class_name, "IndexSearcher");
            assert_eq!(*limit, 1);
            assert_eq!(*count, 32);
        }
        other => panic!("wrong kind {other:?}"),
    }
}

#[test]
fn zero_limit_asserts_no_instances() {
    let mut vm = vm();
    let c = vm.register_class("Forbidden", &[]);
    let m = vm.main();
    vm.assert_instances(c, 0).unwrap();
    assert!(vm.collect().unwrap().is_clean());
    let x = vm.alloc_rooted(m, c, 0, 0).unwrap();
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    // Once the instance dies the assertion passes again.
    let _ = x;
    vm.pop_frame(m).err(); // base frame; instead clear via set_root
    let mut vm2 = Vm::new(common::cfg().build());
    let c2 = vm2.register_class("Forbidden", &[]);
    vm2.assert_instances(c2, 0).unwrap();
    let m2 = vm2.main();
    let _temp = vm2.alloc(m2, c2, 0, 0).unwrap(); // unrooted: dies at GC
    assert!(vm2.collect().unwrap().is_clean());
}

#[test]
fn count_reflects_only_live_instances() {
    let mut vm = vm();
    let c = vm.register_class("Singleton", &[]);
    let m = vm.main();
    vm.assert_instances(c, 1).unwrap();
    // Churn: many instances allocated but at most one live at any GC.
    for _ in 0..10 {
        let slot_obj = vm.alloc(m, c, 0, 0).unwrap();
        let _ = slot_obj; // immediately dropped (unrooted)
    }
    let keep = vm.alloc_rooted(m, c, 0, 0).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.is_clean(), "only {keep} is live");
}

#[test]
fn dead_instances_uncount_across_gcs() {
    let mut vm = vm();
    let c = vm.register_class("S", &[]);
    let m = vm.main();
    vm.assert_instances(c, 1).unwrap();
    let a = vm.alloc(m, c, 0, 0).unwrap();
    let sa = vm.add_root(m, a).unwrap();
    let b = vm.alloc_rooted(m, c, 0, 0).unwrap();
    assert_eq!(vm.collect().unwrap().violations.len(), 1); // 2 > 1
                                                           // Drop one; the next GC sees exactly 1 and passes.
    vm.set_root(m, sa, gc_assertions::ObjRef::NULL).unwrap();
    assert!(vm.collect().unwrap().is_clean());
    assert!(vm.is_live(b));
}

#[test]
fn multiple_tracked_classes_independent() {
    let mut vm = vm();
    let a = vm.register_class("A", &[]);
    let b = vm.register_class("B", &[]);
    let m = vm.main();
    vm.assert_instances(a, 1).unwrap();
    vm.assert_instances(b, 2).unwrap();
    for _ in 0..2 {
        vm.alloc_rooted(m, a, 0, 0).unwrap(); // violates A (2 > 1)
        vm.alloc_rooted(m, b, 0, 0).unwrap(); // ok for B (2 <= 2)
    }
    let report = vm.collect().unwrap();
    assert_eq!(report.violations.len(), 1);
    match &report.violations[0].kind {
        ViolationKind::InstanceLimit { class_name, .. } => assert_eq!(class_name, "A"),
        other => panic!("wrong kind {other:?}"),
    }
}

#[test]
fn reasserting_updates_limit() {
    let mut vm = vm();
    let c = vm.register_class("C", &[]);
    let m = vm.main();
    vm.assert_instances(c, 1).unwrap();
    for _ in 0..3 {
        vm.alloc_rooted(m, c, 0, 0).unwrap();
    }
    assert_eq!(vm.collect().unwrap().violations.len(), 1);
    vm.assert_instances(c, 10).unwrap();
    assert!(vm.collect().unwrap().is_clean());
}

#[test]
fn instances_counted_in_ownership_phase_too() {
    // Tracked objects reachable only through an owner subgraph are counted
    // during the ownership phase and must not be double-counted when the
    // root scan reaches the (already marked) region.
    let mut vm = vm();
    let container = vm.register_class("Container", &["e0", "e1"]);
    let elem = vm.register_class("Elem", &[]);
    let m = vm.main();
    vm.assert_instances(elem, 2).unwrap();
    let cont = vm.alloc_rooted(m, container, 2, 0).unwrap();
    let e0 = vm.alloc(m, elem, 0, 0).unwrap();
    vm.set_field(cont, 0, e0).unwrap();
    let e1 = vm.alloc(m, elem, 0, 0).unwrap();
    vm.set_field(cont, 1, e1).unwrap();
    vm.assert_owned_by(cont, e0).unwrap();
    vm.assert_owned_by(cont, e1).unwrap();
    let report = vm.collect().unwrap();
    assert!(report.is_clean(), "2 instances == limit 2: {report}");
    assert_eq!(report.counters.tracked_instances_counted, 2);
}
