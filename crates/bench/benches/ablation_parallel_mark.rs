//! Ablation: parallel work-stealing mark phase vs the sequential tracer.
//!
//! Sweeps `gc_threads` over 1/2/4/8 on a large randomly-meshed live heap
//! and measures the **mark-phase time only** (`CycleStats::mark`), with
//! path tracking off so the 1-worker baseline is the plain sequential
//! worklist rather than the more expensive §2.7 path-tracking one. A
//! shard of assertion-flagged objects rides along so the parallel
//! visitors exercise their real (non-no-op) paths.

use criterion::{criterion_group, criterion_main, Criterion};
use gc_assertions::{ObjRef, Vm, VmConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const NODES: usize = 120_000;
const EXTRA_EDGES: usize = 60_000;
const FLAGGED: usize = 1_000;

/// Builds a VM with a `NODES`-object live mesh: a spine chain keeping
/// everything reachable from one root, plus random cross edges, plus a
/// sprinkling of unshared assertions. Deterministic for a given seed.
fn build_vm(workers: usize) -> Vm {
    let mut vm = Vm::new(
        VmConfig::builder()
            .heap_budget(16 << 20)
            .path_tracking(false)
            .gc_threads(workers)
            .build(),
    );
    let class = vm.register_class("Node", &["next", "a", "b", "c"]);
    let m = vm.main();
    let mut rng = SmallRng::seed_from_u64(0x6ca5);

    let mut nodes: Vec<ObjRef> = Vec::with_capacity(NODES);
    let first = vm.alloc_rooted(m, class, 4, 0).unwrap();
    nodes.push(first);
    for i in 1..NODES {
        let o = vm.alloc(m, class, 4, 0).unwrap();
        vm.set_field(nodes[i - 1], 0, o).unwrap();
        nodes.push(o);
    }
    for _ in 0..EXTRA_EDGES {
        let from = rng.gen_range(0..NODES);
        let to = rng.gen_range(0..NODES);
        let field = rng.gen_range(1..4);
        vm.set_field(nodes[from], field, nodes[to]).unwrap();
    }
    // Flag spine nodes: each has exactly one incoming spine edge, so the
    // assertion machinery runs without drowning the report in violations
    // (any extra random edge is reported once and then deduplicated).
    for i in 0..FLAGGED {
        vm.assertions()
            .unshared(nodes[i * (NODES / FLAGGED)])
            .unwrap();
    }
    vm
}

fn bench_parallel_mark(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel_mark");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for workers in [1usize, 2, 4, 8] {
        let mut vm = build_vm(workers);
        // Prime: sweep the build-time garbage and drain first-time
        // violation reports so timed cycles see a steady-state heap.
        vm.collect().unwrap();
        group.bench_function(format!("mark/{workers}_workers"), |b| {
            b.iter_custom(|iters| {
                let mut mark = Duration::ZERO;
                for _ in 0..iters {
                    mark += vm.collect().unwrap().cycle.mark;
                }
                mark
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_mark);
criterion_main!(benches);
