//! Figure 2: total-run-time overhead of the assertion infrastructure.
//!
//! Benchmarks every suite workload (plus pseudojbb) under Base and under
//! Infrastructure; comparing the two criterion groups reproduces the
//! normalized-execution-time bars of Figure 2.

use criterion::{criterion_group, criterion_main, Criterion};
use gca_workloads::pseudojbb::PseudoJbb;
use gca_workloads::runner::{run_once, ExpConfig, Workload};
use gca_workloads::suite;

const SCALE: f64 = 0.25;

fn scaled_suite() -> Vec<suite::SyntheticWorkload> {
    suite::full_suite()
        .into_iter()
        .map(|mut w| {
            w.iterations = ((w.iterations as f64 * SCALE) as usize).max(2);
            w
        })
        .collect()
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_total_time");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for w in scaled_suite() {
        group.bench_function(format!("{}/base", w.name()), |b| {
            b.iter(|| run_once(&w, ExpConfig::Base).unwrap().total)
        });
        group.bench_function(format!("{}/infrastructure", w.name()), |b| {
            b.iter(|| run_once(&w, ExpConfig::Infrastructure).unwrap().total)
        });
    }
    let mut jbb = PseudoJbb::for_figures();
    jbb.transactions = ((jbb.transactions as f64 * SCALE) as usize).max(100);
    group.bench_function("pseudojbb/base", |b| {
        b.iter(|| run_once(&jbb, ExpConfig::Base).unwrap().total)
    });
    group.bench_function("pseudojbb/infrastructure", |b| {
        b.iter(|| run_once(&jbb, ExpConfig::Infrastructure).unwrap().total)
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
