//! Ablation H: the retired free-list heap substrate vs the BiBOP page
//! substrate, on the two loops the rewrite targets.
//!
//! * **alloc churn** — steady-state scattered free + re-allocate rounds
//!   over a 50k-object heap of header-only objects (no libc traffic in
//!   the timed region, so the numbers isolate substrate bookkeeping);
//! * **mark loop** — scan for marked objects and clear the per-GC bits:
//!   per-slot header probing on the free list vs 64-slot bitmap words on
//!   BiBOP.
//!
//! `gca_bench::ablation_bibop` produces the same comparison as a single
//! medians row for the figures binary; this bench exposes each leg to
//! criterion's statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use gca_bench::freelist::FreeListHeap;
use gca_heap::{Flags, Heap};
use std::time::{Duration, Instant};

const OBJECTS: usize = 50_000;
const ROUNDS: usize = 4;

/// Deterministic LCG step; both substrates see the identical free
/// schedule and therefore identical fragmentation.
fn churn_step(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

fn bench_alloc_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bibop_alloc");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("freelist/churn", |b| {
        b.iter_custom(|iters| {
            let mut h = FreeListHeap::new();
            let mut rng = 0x9e3779b97f4a7c15u64;
            let mut live: Vec<(u32, u32)> = (0..OBJECTS).map(|_| h.alloc(0, 0)).collect();
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let t = Instant::now();
                for _ in 0..ROUNDS {
                    let mut kept = Vec::with_capacity(live.len());
                    for idx in live {
                        if churn_step(&mut rng) & 1 == 0 {
                            kept.push(idx);
                        } else {
                            h.free(idx);
                        }
                    }
                    let freed = OBJECTS - kept.len();
                    for _ in 0..freed {
                        kept.push(h.alloc(0, 0));
                    }
                    live = kept;
                }
                total += t.elapsed();
            }
            total
        })
    });

    group.bench_function("bibop/churn", |b| {
        b.iter_custom(|iters| {
            let mut heap = Heap::new();
            let class = heap.register_class("Churn", &[]);
            let mut rng = 0x9e3779b97f4a7c15u64;
            let mut live: Vec<_> = (0..OBJECTS)
                .map(|_| heap.alloc(class, 0, 0).expect("alloc"))
                .collect();
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let t = Instant::now();
                for _ in 0..ROUNDS {
                    let mut kept = Vec::with_capacity(live.len());
                    for r in live {
                        if churn_step(&mut rng) & 1 == 0 {
                            kept.push(r);
                        } else {
                            heap.free(r).expect("free");
                        }
                    }
                    let freed = OBJECTS - kept.len();
                    for _ in 0..freed {
                        kept.push(heap.alloc(class, 0, 0).expect("alloc"));
                    }
                    live = kept;
                }
                total += t.elapsed();
            }
            total
        })
    });

    group.finish();
}

fn bench_mark_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bibop_mark");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("freelist/mark_loop", |b| {
        let mut h = FreeListHeap::new();
        let live: Vec<(u32, u32)> = (0..OBJECTS).map(|_| h.alloc(0, 0)).collect();
        for (i, &idx) in live.iter().enumerate() {
            if i % 3 == 0 {
                h.set_flag(idx, Flags::MARK);
            }
        }
        b.iter(|| {
            let marked = h.mark_scan();
            criterion::black_box(marked)
        });
    });

    group.bench_function("bibop/mark_loop", |b| {
        let mut heap = Heap::new();
        let class = heap.register_class("Churn", &[]);
        let live: Vec<_> = (0..OBJECTS)
            .map(|_| heap.alloc(class, 0, 0).expect("alloc"))
            .collect();
        for (i, &r) in live.iter().enumerate() {
            if i % 3 == 0 {
                heap.set_flag(r, Flags::MARK).expect("live");
            }
        }
        b.iter(|| {
            let mut marked = 0u32;
            for pid in 0..heap.page_count() {
                let meta = heap.page_meta(pid);
                marked += (meta.live_mask() & meta.flag_word(Flags::MARK)).count_ones();
            }
            criterion::black_box(marked)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_alloc_churn, bench_mark_loop);
criterion_main!(benches);
