//! Figure 5: GC-time overhead with real assertion loads (the ownership
//! phase plus per-object checks), isolated with `iter_custom`.

use criterion::{criterion_group, criterion_main, Criterion};
use gca_workloads::db::Db209;
use gca_workloads::pseudojbb::PseudoJbb;
use gca_workloads::runner::{run_once, ExpConfig, Workload};
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_gc_time_with_assertions");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));

    let db = Db209 {
        operations: 1_000,
        initial_entries: 800,
        ..Db209::default()
    };
    let mut jbb = PseudoJbb::for_figures();
    jbb.transactions = 1_000;

    for config in [
        ExpConfig::Base,
        ExpConfig::Infrastructure,
        ExpConfig::WithAssertions,
    ] {
        for (name, w) in [("209_db", &db as &dyn Workload), ("pseudojbb", &jbb)] {
            let label = format!("{}/{}", name, config.label().to_lowercase());
            group.bench_function(label, |b| {
                b.iter_custom(|iters| {
                    let mut gc = Duration::ZERO;
                    for _ in 0..iters {
                        gc += run_once(w, config).unwrap().gc;
                    }
                    gc
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
