//! Figure 4: total-run-time overhead with real assertion loads on
//! `_209_db` (ownership + dead assertions) and pseudojbb (ownership +
//! instance assertions), under all three configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use gca_workloads::db::Db209;
use gca_workloads::pseudojbb::PseudoJbb;
use gca_workloads::runner::{run_once, ExpConfig};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_total_time_with_assertions");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));

    let db = Db209 {
        operations: 1_000,
        initial_entries: 800,
        ..Db209::default()
    };
    let mut jbb = PseudoJbb::for_figures();
    jbb.transactions = 1_000;

    for config in [
        ExpConfig::Base,
        ExpConfig::Infrastructure,
        ExpConfig::WithAssertions,
    ] {
        group.bench_function(format!("209_db/{}", config.label().to_lowercase()), |b| {
            b.iter(|| run_once(&db, config).unwrap().total)
        });
        group.bench_function(
            format!("pseudojbb/{}", config.label().to_lowercase()),
            |b| b.iter(|| run_once(&jbb, config).unwrap().total),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
