//! Figure 3: GC-time overhead of the assertion infrastructure.
//!
//! Uses `iter_custom` to accumulate only the collector's wall time, so
//! the Base-vs-Infrastructure comparison isolates GC time exactly as the
//! paper's Figure 3 does.

use criterion::{criterion_group, criterion_main, Criterion};
use gca_workloads::runner::{run_once, ExpConfig, Workload};
use gca_workloads::suite;
use std::time::Duration;

const SCALE: f64 = 0.25;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_gc_time");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for mut w in suite::full_suite() {
        w.iterations = ((w.iterations as f64 * SCALE) as usize).max(2);
        for config in [ExpConfig::Base, ExpConfig::Infrastructure] {
            let label = format!("{}/{}", w.name(), config.label().to_lowercase());
            group.bench_function(label, |b| {
                b.iter_custom(|iters| {
                    let mut gc = Duration::ZERO;
                    for _ in 0..iters {
                        gc += run_once(&w, config).unwrap().gc;
                    }
                    gc
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
