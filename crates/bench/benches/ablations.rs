//! Ablations: design-choice costs not broken out in the paper's figures.
//!
//! * path-tracking worklist on/off (the §2.7 debugging-information cost);
//! * binary-search ownership checks at two ownee-set sizes (the paper's
//!   n log n worst case);
//! * eager (JML-style) per-mutation invariant checking vs GC assertions
//!   (the §4.1 trade-off);
//! * mark-sweep vs semispace copying backend with assertions attached
//!   (the Cheney scan checks the same properties during evacuation).

use criterion::{criterion_group, criterion_main, Criterion};
use gc_assertions::{CollectorKind, Vm, VmConfig};
use gca_bench::baseline_eager;
use gca_workloads::runner::{run_once_config, ExpConfig, Workload};
use gca_workloads::structures::HArrayList;
use gca_workloads::suite;
use std::time::Duration;

fn bench_path_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_path_tracking");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for mut w in suite::full_suite().into_iter().take(4) {
        w.iterations = (w.iterations / 4).max(2);
        for (label, paths) in [("plain", false), ("paths", true)] {
            let cfg = VmConfig::builder()
                .heap_budget(w.heap_budget())
                .grow_on_oom(true)
                .path_tracking(paths)
                .build();
            group.bench_function(format!("{}/{}", w.name(), label), |b| {
                let cfg = cfg.clone();
                b.iter_custom(|iters| {
                    let mut gc = Duration::ZERO;
                    for _ in 0..iters {
                        gc += run_once_config(&w, ExpConfig::Infrastructure, cfg.clone())
                            .unwrap()
                            .gc;
                    }
                    gc
                })
            });
        }
    }
    group.finish();
}

fn bench_ownership_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ownership_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [100usize, 1_000, 5_000] {
        group.bench_function(format!("ownees_{n}/gc_cycle"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut vm = Vm::new(VmConfig::builder().heap_budget(1 << 22).build());
                    let m = vm.main();
                    let db_class = vm.register_class("Owner", &["list"]);
                    let e_class = vm.register_class("Ownee", &[]);
                    let db = vm.alloc(m, db_class, 1, 0).unwrap();
                    vm.add_root(m, db).unwrap();
                    let list = HArrayList::new(&mut vm, m, n).unwrap();
                    vm.set_field(db, 0, list.handle()).unwrap();
                    for _ in 0..n {
                        let e = vm.alloc(m, e_class, 0, 2).unwrap();
                        list.push(&mut vm, m, e).unwrap();
                        vm.assert_owned_by(db, e).unwrap();
                    }
                    let report = vm.collect().unwrap();
                    total += report.cycle.total;
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_eager_vs_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eager_vs_gc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("comparison_300_entries_500_mutations", |b| {
        b.iter(|| {
            let cmp = baseline_eager(300, 500);
            assert!(cmp.eager >= cmp.gc_assertions / 2); // keep the work live
            cmp.eager_slowdown()
        })
    });
    group.finish();
}

fn bench_copying_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_copying");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for mut w in suite::full_suite().into_iter().take(4) {
        w.iterations = (w.iterations / 4).max(2);
        for (label, collector) in [
            ("marksweep", CollectorKind::MarkSweep),
            ("copying", CollectorKind::Copying),
        ] {
            let cfg = VmConfig::builder()
                .heap_budget(w.heap_budget())
                .grow_on_oom(true)
                .collector(collector)
                .build();
            group.bench_function(format!("{}/{}", w.name(), label), |b| {
                let cfg = cfg.clone();
                b.iter_custom(|iters| {
                    let mut gc = Duration::ZERO;
                    for _ in 0..iters {
                        gc += run_once_config(&w, ExpConfig::WithAssertions, cfg.clone())
                            .unwrap()
                            .gc;
                    }
                    gc
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_path_tracking,
    bench_ownership_scaling,
    bench_eager_vs_gc,
    bench_copying_backend
);
criterion_main!(benches);
