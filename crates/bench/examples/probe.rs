use gc_assertions::{Mode, Vm, VmConfig};
use gca_workloads::pseudojbb::PseudoJbb;
use gca_workloads::runner::Workload;

fn main() {
    for (label, mode, asserts) in [
        ("base", Mode::Base, false),
        ("infra", Mode::Instrumented, false),
        ("with", Mode::Instrumented, true),
    ] {
        let jbb = PseudoJbb::for_figures();
        let mut vm = Vm::new(
            VmConfig::builder()
                .heap_budget(jbb.heap_budget())
                .mode(mode)
                .build(),
        );
        let t = std::time::Instant::now();
        jbb.run(&mut vm, asserts).unwrap();
        let total = t.elapsed();
        let s = vm.gc_stats();
        println!("{label}: total={total:?} collections={} gc={:?} pre_root={:?} mark={:?} sweep={:?} marked={} owners={} ownees={}",
            s.collections, s.total_gc_time, s.pre_root_time, s.mark_time, s.sweep_time, s.objects_marked, vm.owner_count(), vm.ownee_count());
    }
}
