//! Regenerates every figure of the paper's evaluation as a text table.
//!
//! ```text
//! figures [--fig1] [--fig2] [--fig3] [--fig4] [--fig5]
//!         [--ablations] [--baselines] [--all]
//!         [--telemetry PATH] [--census PATH] [--soak-bench PATH]
//!         [--collector mark-sweep|copying]
//!         [--reps N] [--scale F]
//! ```
//!
//! With no figure flags, `--all` is assumed. `--reps` (default 3) sets
//! runs per cell (median taken); `--scale` (default 1.0) shrinks workload
//! iteration counts for quick runs. `--telemetry PATH` is its own mode:
//! it runs the full suite once with telemetry recording enabled and
//! writes one JSON-lines record per GC cycle (tagged with the benchmark
//! name) to PATH. `--census PATH` does the same with the heap census
//! also enabled, so every record carries per-class live tallies and top
//! allocation sites. `--soak-bench PATH` runs the deterministic 2-shard
//! fleet soak (virtual pacing, one injected leak) and writes its
//! `BENCH_soak.json` summary — detection latency, per-shard latency
//! quantiles, false-positive rate — to PATH. `--collector` picks the
//! backend the telemetry and
//! census suites run on (default mark-sweep); the figure tables always
//! measure the paper's mark-sweep configuration, and the copying
//! comparison has its own table (Ablation G) under `--ablations`.

use gc_assertions::CollectorKind;
use gca_bench::{
    ablation_bibop, ablation_census, ablation_copying, ablation_path_tracking, baseline_detectors,
    baseline_eager, baseline_generational, baseline_probes, census_jsonl_collector, figure1,
    figures_2_3, figures_4_5, summarize_infra, telemetry_jsonl_collector,
};

struct Args {
    fig1: bool,
    fig23: bool,
    fig45: bool,
    ablations: bool,
    baselines: bool,
    telemetry: Option<String>,
    census: Option<String>,
    soak_bench: Option<String>,
    collector: CollectorKind,
    reps: usize,
    scale: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        fig1: false,
        fig23: false,
        fig45: false,
        ablations: false,
        baselines: false,
        telemetry: None,
        census: None,
        soak_bench: None,
        collector: CollectorKind::MarkSweep,
        reps: 3,
        scale: 1.0,
    };
    let mut any = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig1" => {
                args.fig1 = true;
                any = true;
            }
            "--fig2" | "--fig3" => {
                args.fig23 = true;
                any = true;
            }
            "--fig4" | "--fig5" => {
                args.fig45 = true;
                any = true;
            }
            "--ablations" => {
                args.ablations = true;
                any = true;
            }
            "--baselines" => {
                args.baselines = true;
                any = true;
            }
            "--all" => {
                args.fig1 = true;
                args.fig23 = true;
                args.fig45 = true;
                args.ablations = true;
                args.baselines = true;
                any = true;
            }
            "--telemetry" => {
                args.telemetry = Some(it.next().expect("--telemetry takes an output path"));
                any = true;
            }
            "--census" => {
                args.census = Some(it.next().expect("--census takes an output path"));
                any = true;
            }
            "--soak-bench" => {
                args.soak_bench = Some(it.next().expect("--soak-bench takes an output path"));
                any = true;
            }
            "--collector" => {
                let v = it.next().expect("--collector takes mark-sweep|copying");
                args.collector = match v.as_str() {
                    "mark-sweep" | "marksweep" => CollectorKind::MarkSweep,
                    "copying" => CollectorKind::Copying,
                    other => {
                        eprintln!("--collector expects mark-sweep|copying, got {other}");
                        std::process::exit(2);
                    }
                };
            }
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps takes a positive integer");
            }
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale takes a float");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if !any {
        args.fig1 = true;
        args.fig23 = true;
        args.fig45 = true;
        args.ablations = true;
        args.baselines = true;
    }
    args
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.telemetry {
        let jsonl = telemetry_jsonl_collector(args.scale, args.collector);
        let records = jsonl.lines().count();
        std::fs::write(path, &jsonl).expect("writing the telemetry JSONL file");
        println!(
            "telemetry: wrote {records} GC-cycle records ({:?} collector) to {path}",
            args.collector
        );
        println!();
    }

    if let Some(path) = &args.census {
        let jsonl = census_jsonl_collector(args.scale, args.collector);
        let records = jsonl.lines().count();
        std::fs::write(path, &jsonl).expect("writing the census JSONL file");
        println!(
            "census: wrote {records} GC-cycle records (with census fields, {:?} collector) to {path}",
            args.collector
        );
        println!();
    }

    if let Some(path) = &args.soak_bench {
        // The deterministic smoke fleet plus one seeded leak, so the
        // bench records a real detection-latency figure.
        let mut config = gca_soak::SoakConfig::smoke();
        config.faults = vec![gca_soak::FaultPlan::new(1, gca_soak::FaultKind::Leak, 100)];
        config.bench_out = Some(path.into());
        let report = gca_soak::run_soak(config).expect("running the smoke soak");
        print!("{}", report.summary());
        println!("soak: wrote BENCH summary to {path}");
        if !report.passed() {
            eprintln!("soak smoke FAILED");
            std::process::exit(1);
        }
        println!();
    }

    if args.fig1 {
        println!("==============================================================");
        println!("Figure 1: full-path error report (buggy pseudojbb, assert-dead)");
        println!("==============================================================");
        println!("{}", figure1());
        println!();
    }

    if args.fig23 {
        println!("=======================================================================");
        println!("Figures 2 & 3: infrastructure overhead, Base vs Infrastructure");
        println!("(paper: total +2.75% geomean; mutator +1.12%; GC +13.36%, worst ~30%)");
        println!("=======================================================================");
        let rows = figures_2_3(args.reps, args.scale);
        println!(
            "{:<12} {:>10} {:>10} {:>9} | {:>10} {:>10} {:>9} | {:>9}",
            "benchmark",
            "base(ms)",
            "infra(ms)",
            "total%",
            "baseGC(ms)",
            "infGC(ms)",
            "gc%",
            "mutator%"
        );
        for r in &rows {
            println!(
                "{:<12} {:>10.2} {:>10.2} {:>8.2}% | {:>10.2} {:>10.2} {:>8.2}% | {:>8.2}%  (90% CI ±{:.2}/±{:.2}ms)",
                r.name,
                r.base.total.as_secs_f64() * 1e3,
                r.infra.total.as_secs_f64() * 1e3,
                r.total_overhead(),
                r.base.gc.as_secs_f64() * 1e3,
                r.infra.gc.as_secs_f64() * 1e3,
                r.gc_overhead(),
                r.mutator_overhead(),
                r.base_stats.ci90_half.as_secs_f64() * 1e3,
                r.infra_stats.ci90_half.as_secs_f64() * 1e3,
            );
        }
        let (total, mutator, gc) = summarize_infra(&rows);
        println!("--------------------------------------------------------------");
        println!(
            "geomean: total {total:+.2}%  mutator {mutator:+.2}%  gc {gc:+.2}%   (paper: +2.75% / +1.12% / +13.36%)"
        );
        // Pick the worst case among benchmarks that actually spend
        // meaningful time in GC (sub-millisecond baselines are noise).
        if let Some(worst) = rows
            .iter()
            .filter(|r| r.base.gc.as_secs_f64() >= 1e-3)
            .max_by(|a, b| a.gc_overhead().total_cmp(&b.gc_overhead()))
        {
            println!(
                "worst GC overhead (GC-significant benchmarks): {} {:+.2}%   (paper: bloat ~+30%)",
                worst.name,
                worst.gc_overhead()
            );
        }
        println!();
    }

    if args.fig45 {
        println!("=======================================================================");
        println!("Figures 4 & 5: overhead with assertions (Base/Infrastructure/With)");
        println!("(paper: 209_db +1.02% total, +49.7% GC; pseudojbb +1.84%, +15.3%)");
        println!("=======================================================================");
        let rows = figures_4_5(args.reps, args.scale);
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>9} | {:>10} {:>10} {:>9} | {:>12}",
            "benchmark",
            "base(ms)",
            "infra(ms)",
            "with(ms)",
            "total%",
            "baseGC(ms)",
            "withGC(ms)",
            "gc%",
            "ownees/GC"
        );
        for r in &rows {
            println!(
                "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>8.2}% | {:>10.2} {:>10.2} {:>8.2}% | {:>12.0}  (90% CI ±{:.2}/±{:.2}ms)",
                r.name,
                r.base.total.as_secs_f64() * 1e3,
                r.infra.total.as_secs_f64() * 1e3,
                r.with.total.as_secs_f64() * 1e3,
                r.total_overhead(),
                r.base.gc.as_secs_f64() * 1e3,
                r.with.gc.as_secs_f64() * 1e3,
                r.gc_overhead(),
                r.with.ownees_checked_per_gc,
                r.base_stats.ci90_half.as_secs_f64() * 1e3,
                r.with_stats.ci90_half.as_secs_f64() * 1e3,
            );
        }
        println!();
    }

    if args.ablations {
        println!("=======================================================================");
        println!("Ablation A: path-tracking worklist cost (GC time, Infrastructure)");
        println!("=======================================================================");
        let rows = ablation_path_tracking(args.reps, args.scale, 6);
        println!(
            "{:<12} {:>12} {:>12} {:>9}",
            "benchmark", "plain(ms)", "paths(ms)", "delta%"
        );
        for r in &rows {
            let delta = if r.gc_plain.is_zero() {
                0.0
            } else {
                (r.gc_paths.as_secs_f64() / r.gc_plain.as_secs_f64() - 1.0) * 100.0
            };
            println!(
                "{:<12} {:>12.2} {:>12.2} {:>8.2}%",
                r.name,
                r.gc_plain.as_secs_f64() * 1e3,
                r.gc_paths.as_secs_f64() * 1e3,
                delta
            );
        }
        println!();

        println!("=======================================================================");
        println!("Ablation F: heap-census accumulator cost (GC time, Infrastructure)");
        println!("=======================================================================");
        let rows = ablation_census(args.reps, args.scale, 6);
        println!(
            "{:<12} {:>12} {:>12} {:>9}",
            "benchmark", "off(ms)", "on(ms)", "delta%"
        );
        for r in &rows {
            println!(
                "{:<12} {:>12.2} {:>12.2} {:>8.2}%",
                r.name,
                r.gc_off.as_secs_f64() * 1e3,
                r.gc_on.as_secs_f64() * 1e3,
                r.overhead()
            );
        }
        println!();

        println!("=======================================================================");
        println!("Ablation G: mark-sweep vs semispace copying backend (GC time)");
        println!("(same assertions, same verdicts; Cheney scan vs mark/sweep traversal)");
        println!("=======================================================================");
        let rows = ablation_copying(args.reps, args.scale, 6);
        println!(
            "{:<12} {:>10} {:>10} {:>9} | {:>10} {:>10} {:>9}",
            "benchmark",
            "ms-inf(ms)",
            "cp-inf(ms)",
            "infra%",
            "ms-ast(ms)",
            "cp-ast(ms)",
            "assert%"
        );
        for r in &rows {
            println!(
                "{:<12} {:>10.2} {:>10.2} {:>8.2}% | {:>10.2} {:>10.2} {:>8.2}%",
                r.name,
                r.ms_infra.as_secs_f64() * 1e3,
                r.cp_infra.as_secs_f64() * 1e3,
                r.infra_delta(),
                r.ms_assert.as_secs_f64() * 1e3,
                r.cp_assert.as_secs_f64() * 1e3,
                r.assert_delta()
            );
        }
        println!();

        println!("=======================================================================");
        println!("Ablation H: free-list substrate vs BiBOP page substrate");
        println!("(steady-state alloc churn and mark-loop scan; negative = BiBOP faster)");
        println!("=======================================================================");
        let row = ablation_bibop(args.reps.max(3), (50_000.0 * args.scale) as usize, 8);
        println!(
            "{:<22} {:>12} {:>12} {:>9}",
            "loop", "freelist", "bibop", "delta"
        );
        println!(
            "{:<22} {:>10.2}ms {:>10.2}ms {:>8.2}%",
            format!("alloc churn ({}x{})", row.objects, row.rounds),
            row.freelist_alloc.as_secs_f64() * 1e3,
            row.bibop_alloc.as_secs_f64() * 1e3,
            row.alloc_delta()
        );
        println!(
            "{:<22} {:>10.2}us {:>10.2}us {:>8.2}%",
            "mark loop",
            row.freelist_mark.as_secs_f64() * 1e6,
            row.bibop_mark.as_secs_f64() * 1e6,
            row.mark_delta()
        );
        println!();

        println!("=======================================================================");
        println!("Ablation B: eager (JML-style) invariant checking vs GC assertions");
        println!("(paper S4.1: eager checking can be 10x-100x; GC assertions ~free)");
        println!("=======================================================================");
        let cmp = baseline_eager(300, 2_000);
        println!(
            "unchecked: {:>10.2?}   gc-assertions: {:>10.2?} ({:.2}x)   eager: {:>10.2?} ({:.1}x)",
            cmp.unchecked,
            cmp.gc_assertions,
            cmp.gc_slowdown(),
            cmp.eager,
            cmp.eager_slowdown()
        );
        println!(
            "eager checker traversed {} objects across {} mutations",
            cmp.eager_traversed, cmp.mutations
        );
        println!();

        println!("=======================================================================");
        println!("Ablation D: QVM-style immediate probes vs batched GC assertions");
        println!("(probes trigger a full traversal each; assertions batch into one GC)");
        println!("=======================================================================");
        let p = baseline_probes(20_000, 64);
        println!(
            "{} liveness questions: probes {:?}  batched {:?}  ({:.1}x)",
            p.questions,
            p.probes,
            p.batched,
            p.slowdown()
        );
        println!();

        println!("=======================================================================");
        println!("Ablation E: full-heap MarkSweep vs generational collection");
        println!("(paper S2.2: generational lets assertions go unchecked for long periods)");
        println!("=======================================================================");
        let g = baseline_generational();
        println!(
            "marksweep   : total {:?}  gc {:?}  ({} majors)          violation seen after {} collections",
            g.marksweep_total, g.marksweep_gc, g.marksweep_majors, g.marksweep_detection_gcs
        );
        println!(
            "generational: total {:?}  gc {:?}  ({} majors + {} minors) violation seen after {} collections",
            g.generational_total,
            g.generational_gc,
            g.generational_majors,
            g.generational_minors,
            g.generational_detection_gcs
        );
        println!();
    }

    if args.baselines {
        println!("=======================================================================");
        println!("Ablation C: precision vs heuristic detectors on a planted leak");
        println!("=======================================================================");
        let c = baseline_detectors();
        println!("planted leaks: {}", c.leaked);
        println!(
            "GC assertions : {} true positives, {} false positives (instance-level, with paths)",
            c.gca_true_positives, c.gca_false_positives
        );
        println!(
            "staleness     : {} true positives, {} false positives (candidates only)",
            c.stale_true_positives, c.stale_false_positives
        );
        println!(
            "cork growth   : flagged leaking class: {} (type-level only)",
            c.cork_flagged_entry_class
        );
        println!();
    }
}
