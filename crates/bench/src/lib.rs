//! # gca-bench — figure and table regeneration
//!
//! Programmatic versions of every figure in the paper's evaluation
//! (§3.1), shared by the `figures` binary, the Criterion benches, and the
//! smoke tests:
//!
//! * [`figure1`] — the full-path warning for a reachable asserted-dead
//!   `Order` (Figure 1);
//! * [`figures_2_3`] — Base vs Infrastructure total-time and GC-time
//!   overheads across the 19-benchmark suite (Figures 2 and 3);
//! * [`figures_4_5`] — Base vs Infrastructure vs WithAssertions for
//!   `_209_db` and pseudojbb (Figures 4 and 5);
//! * [`ablation_path_tracking`] — cost of the path-tracking worklist
//!   alone (ours);
//! * [`ablation_census`] — mark-time cost of the heap census
//!   accumulators, on vs off (ours);
//! * [`census_jsonl`] — the telemetry export with per-class/per-site
//!   census fields on every cycle record (ours);
//! * [`baseline_eager`] — eager (JML-style) invariant checking vs GC
//!   assertions on the same ownership property (ours, quantifying §4.1's
//!   10×–100× claim);
//! * [`baseline_detectors`] — precision of the heuristic detectors vs GC
//!   assertions on a planted leak (ours).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod freelist;

use std::time::{Duration, Instant};

use gc_assertions::{CollectorKind, ViolationKind, Vm, VmConfig};
use gca_detectors::{CorkDetector, EagerOwnershipChecker, StalenessDetector};
use gca_workloads::db::Db209;
use gca_workloads::pseudojbb::PseudoJbb;
use gca_workloads::runner::{
    geomean_overhead_percent, overhead_percent, run_once, run_once_config, ExpConfig, Measurement,
    Workload,
};
use gca_workloads::suite;

/// Mean and 90% confidence half-interval of a sample of durations — the
/// paper's figures carry 90% confidence error bars (§3.1.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleStats {
    /// Sample mean.
    pub mean: Duration,
    /// Half-width of the 90% confidence interval of the mean (normal
    /// approximation, z = 1.645; adequate for the ~10-sample runs here).
    pub ci90_half: Duration,
}

/// Computes [`SampleStats`] for a duration sample.
pub fn sample_stats(xs: &[Duration]) -> SampleStats {
    if xs.is_empty() {
        return SampleStats::default();
    }
    let n = xs.len() as f64;
    let mean = xs.iter().map(Duration::as_secs_f64).sum::<f64>() / n;
    let var = xs
        .iter()
        .map(|x| {
            let d = x.as_secs_f64() - mean;
            d * d
        })
        .sum::<f64>()
        / (n - 1.0).max(1.0);
    let se = (var / n).sqrt();
    SampleStats {
        mean: Duration::from_secs_f64(mean),
        ci90_half: Duration::from_secs_f64(1.645 * se),
    }
}

/// One row of Figures 2/3: a benchmark measured under Base and
/// Infrastructure.
#[derive(Debug, Clone)]
pub struct InfraRow {
    /// Benchmark name.
    pub name: String,
    /// Base measurement (median run).
    pub base: Measurement,
    /// Infrastructure measurement (median run).
    pub infra: Measurement,
    /// Total-time statistics across the Base repetitions.
    pub base_stats: SampleStats,
    /// Total-time statistics across the Infrastructure repetitions.
    pub infra_stats: SampleStats,
}

impl InfraRow {
    /// Total-time overhead in percent (Figure 2).
    pub fn total_overhead(&self) -> f64 {
        overhead_percent(self.base.total, self.infra.total)
    }

    /// GC-time overhead in percent (Figure 3).
    pub fn gc_overhead(&self) -> f64 {
        overhead_percent(self.base.gc, self.infra.gc)
    }

    /// Mutator-time overhead in percent.
    pub fn mutator_overhead(&self) -> f64 {
        overhead_percent(self.base.mutator, self.infra.mutator)
    }
}

/// One row of Figures 4/5: a benchmark under all three configurations.
#[derive(Debug, Clone)]
pub struct AssertRow {
    /// Benchmark name.
    pub name: String,
    /// Base measurement.
    pub base: Measurement,
    /// Infrastructure measurement.
    pub infra: Measurement,
    /// WithAssertions measurement.
    pub with: Measurement,
    /// Total-time statistics across the Base repetitions.
    pub base_stats: SampleStats,
    /// Total-time statistics across the WithAssertions repetitions.
    pub with_stats: SampleStats,
}

impl AssertRow {
    /// Total-time overhead of WithAssertions vs Base, percent (Figure 4).
    pub fn total_overhead(&self) -> f64 {
        overhead_percent(self.base.total, self.with.total)
    }

    /// GC-time overhead of WithAssertions vs Base, percent (Figure 5).
    pub fn gc_overhead(&self) -> f64 {
        overhead_percent(self.base.gc, self.with.gc)
    }
}

/// Scales a suite workload's iteration count (for fast smoke runs).
fn scaled(mut w: suite::SyntheticWorkload, scale: f64) -> suite::SyntheticWorkload {
    w.iterations = ((w.iterations as f64 * scale) as usize).max(2);
    w
}

fn scaled_jbb(scale: f64) -> PseudoJbb {
    let mut jbb = PseudoJbb::for_figures();
    jbb.transactions = ((jbb.transactions as f64 * scale) as usize).max(100);
    jbb
}

fn scaled_db(scale: f64) -> Db209 {
    let mut db = Db209::default();
    db.operations = ((db.operations as f64 * scale) as usize).max(100);
    db.initial_entries = ((db.initial_entries as f64 * scale.max(0.3)) as usize).max(100);
    db
}

/// Regenerates Figure 1: runs the buggy pseudojbb with `assert_dead`
/// instrumentation and returns the first dead-reachable report, whose
/// path runs `Company -> … -> longBTree -> longBTreeNode -> … -> Order`.
pub fn figure1() -> String {
    let jbb = PseudoJbb::buggy_with_dead_asserts();
    let mut vm = Vm::new(VmConfig::builder().heap_budget(jbb.heap_budget()).build());
    jbb.run(&mut vm, true).expect("pseudojbb runs");
    let _ = vm.collect();
    let log = vm.take_violation_log();
    let interesting = log
        .iter()
        .filter(|v| matches!(&v.kind, ViolationKind::DeadReachable { class_name, .. } if class_name == "Order"))
        .find(|v| v.path.passes_through(vm.registry(), "longBTreeNode"));
    match interesting.or_else(|| {
        log.iter()
            .find(|v| matches!(v.kind, ViolationKind::DeadReachable { .. }))
    }) {
        Some(v) => v.render(vm.registry()),
        None => "no violation detected (unexpected)".to_owned(),
    }
}

/// Measures `workload` under each configuration with one warmup run and
/// the per-config runs interleaved round-robin, so allocator/cache drift
/// over the process lifetime affects every configuration equally. Returns
/// the median run per configuration.
fn measure_interleaved(
    workload: &dyn Workload,
    configs: &[ExpConfig],
    reps: usize,
) -> Vec<(Measurement, SampleStats)> {
    let _warmup = run_once(workload, configs[0]).expect("workload runs");
    let mut per_config: Vec<Vec<Measurement>> = vec![Vec::new(); configs.len()];
    for _ in 0..reps.max(1) {
        for (i, &cfg) in configs.iter().enumerate() {
            per_config[i].push(run_once(workload, cfg).expect("workload runs"));
        }
    }
    per_config
        .into_iter()
        .map(|mut runs| {
            let totals: Vec<Duration> = runs.iter().map(|r| r.total).collect();
            let stats = sample_stats(&totals);
            runs.sort_by_key(|r| r.total);
            (runs.swap_remove(runs.len() / 2), stats)
        })
        .collect()
}

/// Regenerates the data behind Figures 2 and 3: every suite benchmark
/// plus pseudojbb, measured under Base and Infrastructure (interleaved;
/// medians of `reps` runs). `scale` shrinks iteration counts.
pub fn figures_2_3(reps: usize, scale: f64) -> Vec<InfraRow> {
    let configs = [ExpConfig::Base, ExpConfig::Infrastructure];
    let mut rows = Vec::new();
    for w in suite::full_suite() {
        let w = scaled(w, scale);
        let mut ms = measure_interleaved(&w, &configs, reps);
        let (infra, infra_stats) = ms.pop().expect("two configs");
        let (base, base_stats) = ms.pop().expect("two configs");
        rows.push(InfraRow {
            name: w.name().to_owned(),
            base,
            infra,
            base_stats,
            infra_stats,
        });
    }
    let jbb = scaled_jbb(scale);
    let mut ms = measure_interleaved(&jbb, &configs, reps);
    let (infra, infra_stats) = ms.pop().expect("two configs");
    let (base, base_stats) = ms.pop().expect("two configs");
    rows.push(InfraRow {
        name: jbb.name().to_owned(),
        base,
        infra,
        base_stats,
        infra_stats,
    });
    rows
}

/// Regenerates the data behind Figures 4 and 5: `_209_db` and pseudojbb
/// with real assertion loads, under all three configurations.
pub fn figures_4_5(reps: usize, scale: f64) -> Vec<AssertRow> {
    let configs = [
        ExpConfig::Base,
        ExpConfig::Infrastructure,
        ExpConfig::WithAssertions,
    ];
    let db = scaled_db(scale);
    let jbb = scaled_jbb(scale);
    let mut rows = Vec::new();
    for w in [&db as &dyn Workload, &jbb as &dyn Workload] {
        let mut ms = measure_interleaved(w, &configs, reps);
        let (with, with_stats) = ms.pop().expect("three configs");
        let (infra, _) = ms.pop().expect("three configs");
        let (base, base_stats) = ms.pop().expect("three configs");
        rows.push(AssertRow {
            name: w.name().to_owned(),
            base,
            infra,
            with,
            base_stats,
            with_stats,
        });
    }
    rows
}

/// Runs the whole suite once with telemetry recording enabled and returns
/// the per-benchmark JSON-lines export: every DaCapo/SPECjvm98 analogue
/// under the Infrastructure configuration, plus `_209_db` and pseudojbb
/// under WithAssertions (so the artifact carries non-zero per-assertion
/// overhead attribution). One record per GC cycle, tagged with the
/// benchmark name. `scale` shrinks iteration counts as for the figures.
pub fn telemetry_jsonl(scale: f64) -> String {
    telemetry_jsonl_collector(scale, CollectorKind::MarkSweep)
}

/// As [`telemetry_jsonl`], but on the chosen collector backend — the CI
/// copying artifact leg calls this via `figures --telemetry --collector
/// copying`.
pub fn telemetry_jsonl_collector(scale: f64, collector: CollectorKind) -> String {
    let workloads: Vec<suite::SyntheticWorkload> = suite::full_suite()
        .into_iter()
        .map(|w| scaled(w, scale))
        .collect();
    let mut out =
        suite::suite_telemetry_jsonl_collector(&workloads, ExpConfig::Infrastructure, collector)
            .expect("suite workloads are infallible");
    let db = scaled_db(scale);
    let jbb = scaled_jbb(scale);
    for w in [&db as &dyn Workload, &jbb as &dyn Workload] {
        let (_, telemetry) = gca_workloads::runner::run_once_telemetry_collector(
            w,
            ExpConfig::WithAssertions,
            collector,
        )
        .expect("case-study workloads are infallible");
        out.push_str(&telemetry.to_jsonl(Some(w.name())));
    }
    out
}

/// Runs the whole suite once with telemetry *and* the heap census enabled
/// and returns the per-benchmark JSON-lines export: as [`telemetry_jsonl`],
/// but every cycle record additionally carries per-class live tallies and
/// top allocation sites. This is the artifact behind `figures --census`
/// and the CI census step.
pub fn census_jsonl(scale: f64) -> String {
    census_jsonl_collector(scale, CollectorKind::MarkSweep)
}

/// As [`census_jsonl`], but on the chosen collector backend — the copying
/// engine observes the census at evacuation time, so its per-class
/// tallies are bit-identical to mark-sweep's.
pub fn census_jsonl_collector(scale: f64, collector: CollectorKind) -> String {
    let workloads: Vec<suite::SyntheticWorkload> = suite::full_suite()
        .into_iter()
        .map(|w| scaled(w, scale))
        .collect();
    let mut out =
        suite::suite_census_jsonl_collector(&workloads, ExpConfig::Infrastructure, collector)
            .expect("suite workloads are infallible");
    let db = scaled_db(scale);
    let jbb = scaled_jbb(scale);
    for w in [&db as &dyn Workload, &jbb as &dyn Workload] {
        let (_, telemetry, _) = gca_workloads::runner::run_once_census_collector(
            w,
            ExpConfig::WithAssertions,
            collector,
        )
        .expect("case-study workloads are infallible");
        out.push_str(&telemetry.to_jsonl(Some(w.name())));
    }
    out
}

/// Geometric-mean overheads across Figure 2/3 rows:
/// `(total%, mutator%, gc%)` — the paper reports +2.75%, +1.12%, +13.36%.
pub fn summarize_infra(rows: &[InfraRow]) -> (f64, f64, f64) {
    let total: Vec<_> = rows.iter().map(|r| (r.base.total, r.infra.total)).collect();
    let mutator: Vec<_> = rows
        .iter()
        .map(|r| (r.base.mutator, r.infra.mutator))
        .collect();
    let gc: Vec<_> = rows.iter().map(|r| (r.base.gc, r.infra.gc)).collect();
    (
        geomean_overhead_percent(&total),
        geomean_overhead_percent(&mutator),
        geomean_overhead_percent(&gc),
    )
}

/// One row of the path-tracking ablation: Infrastructure with and without
/// the path-tracking worklist.
#[derive(Debug, Clone)]
pub struct PathAblationRow {
    /// Benchmark name.
    pub name: String,
    /// GC time with the plain worklist (checks only).
    pub gc_plain: Duration,
    /// GC time with the path-tracking worklist.
    pub gc_paths: Duration,
}

/// Ablation A: isolates the cost of the path-tracking worklist by running
/// the infrastructure configuration with paths on vs off.
pub fn ablation_path_tracking(reps: usize, scale: f64, take: usize) -> Vec<PathAblationRow> {
    let mut rows = Vec::new();
    for w in suite::full_suite().into_iter().take(take) {
        let w = scaled(w, scale);
        let base_cfg = VmConfig::builder()
            .heap_budget(w.heap_budget())
            .grow_on_oom(true)
            .build();
        let mut plain = Vec::new();
        let mut paths = Vec::new();
        for _ in 0..reps.max(1) {
            plain.push(
                run_once_config(
                    &w,
                    ExpConfig::Infrastructure,
                    base_cfg.clone().path_tracking(false),
                )
                .expect("runs")
                .gc,
            );
            paths.push(
                run_once_config(
                    &w,
                    ExpConfig::Infrastructure,
                    base_cfg.clone().path_tracking(true),
                )
                .expect("runs")
                .gc,
            );
        }
        plain.sort();
        paths.sort();
        rows.push(PathAblationRow {
            name: w.name().to_owned(),
            gc_plain: plain[plain.len() / 2],
            gc_paths: paths[paths.len() / 2],
        });
    }
    rows
}

/// One row of the census ablation: Infrastructure with and without the
/// heap census accumulators.
#[derive(Debug, Clone)]
pub struct CensusAblationRow {
    /// Benchmark name.
    pub name: String,
    /// GC time with the census off (the default).
    pub gc_off: Duration,
    /// GC time with the census accumulating per-class/per-site tallies.
    pub gc_on: Duration,
}

impl CensusAblationRow {
    /// Census GC-time overhead in percent.
    pub fn overhead(&self) -> f64 {
        overhead_percent(self.gc_off, self.gc_on)
    }
}

/// Ablation F: isolates the mark-time cost of the heap census by running
/// the infrastructure configuration with the census on vs off
/// (interleaved medians of `reps` runs over the first `take` suite
/// benchmarks).
pub fn ablation_census(reps: usize, scale: f64, take: usize) -> Vec<CensusAblationRow> {
    let mut rows = Vec::new();
    for w in suite::full_suite().into_iter().take(take) {
        let w = scaled(w, scale);
        let base_cfg = VmConfig::builder()
            .heap_budget(w.heap_budget())
            .grow_on_oom(true)
            .build();
        let mut off = Vec::new();
        let mut on = Vec::new();
        for _ in 0..reps.max(1) {
            off.push(
                run_once_config(
                    &w,
                    ExpConfig::Infrastructure,
                    base_cfg.clone().census(false),
                )
                .expect("runs")
                .gc,
            );
            on.push(
                run_once_config(&w, ExpConfig::Infrastructure, base_cfg.clone().census(true))
                    .expect("runs")
                    .gc,
            );
        }
        off.sort();
        on.sort();
        rows.push(CensusAblationRow {
            name: w.name().to_owned(),
            gc_off: off[off.len() / 2],
            gc_on: on[on.len() / 2],
        });
    }
    rows
}

/// One row of the copying-collector ablation: mark-sweep vs semispace
/// copying, each with the assertion infrastructure alone and with the
/// workload's assertions registered.
#[derive(Debug, Clone)]
pub struct CopyingAblationRow {
    /// Benchmark name.
    pub name: String,
    /// GC time: mark-sweep, Infrastructure.
    pub ms_infra: Duration,
    /// GC time: copying, Infrastructure.
    pub cp_infra: Duration,
    /// GC time: mark-sweep, WithAssertions.
    pub ms_assert: Duration,
    /// GC time: copying, WithAssertions.
    pub cp_assert: Duration,
}

impl CopyingAblationRow {
    /// Copying GC-time delta vs mark-sweep under Infrastructure, in
    /// percent (negative = copying is faster).
    pub fn infra_delta(&self) -> f64 {
        overhead_percent(self.ms_infra, self.cp_infra)
    }

    /// Copying GC-time delta vs mark-sweep under WithAssertions.
    pub fn assert_delta(&self) -> f64 {
        overhead_percent(self.ms_assert, self.cp_assert)
    }
}

/// Ablation G: the semispace copying backend vs mark-sweep, with
/// assertions off and on (interleaved medians of `reps` runs over the
/// first `take` suite benchmarks). The assertion verdicts are identical
/// by construction — the differential fuzz suite pins that — so this
/// measures pure engine cost: evacuation+compaction against mark+sweep,
/// and whether the assertion hooks price out the same on both.
pub fn ablation_copying(reps: usize, scale: f64, take: usize) -> Vec<CopyingAblationRow> {
    let mut rows = Vec::new();
    for w in suite::full_suite().into_iter().take(take) {
        let w = scaled(w, scale);
        let base_cfg = VmConfig::builder()
            .heap_budget(w.heap_budget())
            .grow_on_oom(true)
            .build();
        let mut samples = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for _ in 0..reps.max(1) {
            // Interleave all four legs so drift hits each equally.
            for (i, (exp, collector)) in [
                (ExpConfig::Infrastructure, CollectorKind::MarkSweep),
                (ExpConfig::Infrastructure, CollectorKind::Copying),
                (ExpConfig::WithAssertions, CollectorKind::MarkSweep),
                (ExpConfig::WithAssertions, CollectorKind::Copying),
            ]
            .into_iter()
            .enumerate()
            {
                samples[i].push(
                    run_once_config(&w, exp, base_cfg.clone().collector(collector))
                        .expect("runs")
                        .gc,
                );
            }
        }
        for s in &mut samples {
            s.sort();
        }
        let median = |s: &[Duration]| s[s.len() / 2];
        rows.push(CopyingAblationRow {
            name: w.name().to_owned(),
            ms_infra: median(&samples[0]),
            cp_infra: median(&samples[1]),
            ms_assert: median(&samples[2]),
            cp_assert: median(&samples[3]),
        });
    }
    rows
}

/// Result of the heap-substrate ablation (Ablation H): the retired
/// free-list layout vs the BiBOP page substrate on identical
/// allocation-churn and mark-loop workloads.
#[derive(Debug, Clone)]
pub struct BibopAblationRow {
    /// Objects live at steady state.
    pub objects: usize,
    /// Churn rounds (free half, re-allocate half) per measurement.
    pub rounds: usize,
    /// Alloc/free churn time on the free-list replica.
    pub freelist_alloc: Duration,
    /// Alloc/free churn time on the BiBOP heap.
    pub bibop_alloc: Duration,
    /// Mark-loop (scan + per-GC clear) time on the free-list replica.
    pub freelist_mark: Duration,
    /// Mark-loop (scan + per-GC clear) time on the BiBOP heap.
    pub bibop_mark: Duration,
}

impl BibopAblationRow {
    /// BiBOP allocation-time delta vs the free list, in percent
    /// (negative = BiBOP is faster).
    pub fn alloc_delta(&self) -> f64 {
        overhead_percent(self.freelist_alloc, self.bibop_alloc)
    }

    /// BiBOP mark-loop delta vs the free list, in percent.
    pub fn mark_delta(&self) -> f64 {
        overhead_percent(self.freelist_mark, self.bibop_mark)
    }
}

/// Deterministic LCG step for the churn's scattered free pattern — the
/// same schedule drives both substrates, so they see identical
/// fragmentation.
fn churn_step(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

/// Ablation H: the free-list substrate this repository used before the
/// BiBOP rewrite vs the current page-based heap, on the two loops the
/// redesign targets.
///
/// * **Allocation churn** — build `objects` live objects, run two
///   untimed warm-up rounds, then time `rounds` steady-state rounds that
///   free every other object (LCG-scattered) and re-allocate the same
///   count. The free-list replica pays a dependent load per reuse (the
///   next-free index lives in the freed slot's memory) plus a validated
///   free; BiBOP pops a dense per-size-class stack and bumps within a
///   page.
/// * **Mark loop** — mark a third of the live objects, then scan the
///   whole heap for marked objects and clear the per-GC bits, the way a
///   sweep epilogue or stale-mark check does. The free-list replica
///   visits every slot and reads a per-object atomic; BiBOP reads one
///   bitmap word per 64 slots.
///
/// Objects are header-only (no reference or data payload), so neither
/// leg touches the system allocator inside the timed region: payload
/// boxes cost the same on both substrates by construction (the `Object`
/// representation is shared), and with real payloads that identical libc
/// traffic is ~70% of the runtime and its arena-state noise swamps the
/// substrate signal. The deltas here isolate exactly the bookkeeping the
/// BiBOP rewrite replaced. Medians of `reps` runs, leg order alternated
/// per rep so process-allocator drift cancels.
pub fn ablation_bibop(reps: usize, objects: usize, rounds: usize) -> BibopAblationRow {
    use freelist::FreeListHeap;
    use gca_heap::{Flags, Heap};

    // Both legs share one schedule: build `objects`, run two untimed
    // warm-up churn rounds (the build and first-touch transients are
    // start-up costs, not allocation throughput), then time `rounds`
    // steady-state rounds of scattered frees and re-allocation.
    const WARM_ROUNDS: usize = 2;

    fn freelist_leg(objects: usize, rounds: usize) -> (Duration, Duration) {
        let mut h = FreeListHeap::new();
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut live: Vec<(u32, u32)> = (0..objects).map(|_| h.alloc(0, 0)).collect();
        let mut alloc = Duration::ZERO;
        for round in 0..WARM_ROUNDS + rounds {
            let t = Instant::now();
            let mut kept = Vec::with_capacity(live.len());
            for idx in live {
                if churn_step(&mut rng) & 1 == 0 {
                    kept.push(idx);
                } else {
                    h.free(idx);
                }
            }
            let freed = objects - kept.len();
            for _ in 0..freed {
                kept.push(h.alloc(0, 0));
            }
            if round >= WARM_ROUNDS {
                alloc += t.elapsed();
            }
            live = kept;
        }
        for (i, &idx) in live.iter().enumerate() {
            if i % 3 == 0 {
                h.set_flag(idx, Flags::MARK);
            }
        }
        let t = Instant::now();
        let marked = h.mark_scan();
        h.clear_marks();
        let mark = t.elapsed();
        std::hint::black_box(marked);
        (alloc, mark)
    }

    fn bibop_leg(objects: usize, rounds: usize) -> (Duration, Duration) {
        let mut heap = Heap::new();
        let c = heap.register_class("Churn", &[]);
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut live: Vec<_> = (0..objects)
            .map(|_| heap.alloc(c, 0, 0).expect("alloc"))
            .collect();
        let mut alloc = Duration::ZERO;
        for round in 0..WARM_ROUNDS + rounds {
            let t = Instant::now();
            let mut kept = Vec::with_capacity(live.len());
            for r in live {
                if churn_step(&mut rng) & 1 == 0 {
                    kept.push(r);
                } else {
                    heap.free(r).expect("free");
                }
            }
            let freed = objects - kept.len();
            for _ in 0..freed {
                kept.push(heap.alloc(c, 0, 0).expect("alloc"));
            }
            if round >= WARM_ROUNDS {
                alloc += t.elapsed();
            }
            live = kept;
        }
        let alloc_total = alloc;
        for (i, &r) in live.iter().enumerate() {
            if i % 3 == 0 {
                heap.set_flag(r, Flags::MARK).expect("live");
            }
        }
        let t = Instant::now();
        let mut marked = 0u32;
        for pid in 0..heap.page_count() {
            let meta = heap.page_meta(pid);
            marked += (meta.live_mask() & meta.flag_word(Flags::MARK)).count_ones();
        }
        for pid in 0..heap.page_count() {
            heap.clear_flag_word(pid, Flags::PER_GC, u64::MAX);
        }
        let mark = t.elapsed();
        std::hint::black_box(marked);
        (alloc_total, mark)
    }

    let mut fl_alloc = Vec::new();
    let mut bp_alloc = Vec::new();
    let mut fl_mark = Vec::new();
    let mut bp_mark = Vec::new();

    // One unmeasured warm-up leg each, then alternate the leg order per
    // rep: the process allocator's free lists drift as the run ages, and
    // whichever leg runs second inherits the first leg's bin state — the
    // alternation cancels that bias in the medians.
    let _ = freelist_leg(objects, rounds);
    let _ = bibop_leg(objects, rounds);
    for rep in 0..reps.max(1) {
        if rep % 2 == 0 {
            let (a, m) = freelist_leg(objects, rounds);
            fl_alloc.push(a);
            fl_mark.push(m);
            let (a, m) = bibop_leg(objects, rounds);
            bp_alloc.push(a);
            bp_mark.push(m);
        } else {
            let (a, m) = bibop_leg(objects, rounds);
            bp_alloc.push(a);
            bp_mark.push(m);
            let (a, m) = freelist_leg(objects, rounds);
            fl_alloc.push(a);
            fl_mark.push(m);
        }
    }

    let median = |s: &mut Vec<Duration>| {
        s.sort();
        s[s.len() / 2]
    };
    BibopAblationRow {
        objects,
        rounds,
        freelist_alloc: median(&mut fl_alloc),
        bibop_alloc: median(&mut bp_alloc),
        freelist_mark: median(&mut fl_mark),
        bibop_mark: median(&mut bp_mark),
    }
}

/// Result of the eager-vs-GC-assertions comparison (Ablation B).
#[derive(Debug, Clone)]
pub struct EagerComparison {
    /// Wall time with no checking at all.
    pub unchecked: Duration,
    /// Wall time with GC assertions checking ownership.
    pub gc_assertions: Duration,
    /// Wall time with the JML-style eager checker re-verifying ownership
    /// after every mutation.
    pub eager: Duration,
    /// Objects traversed by the eager checker.
    pub eager_traversed: u64,
    /// Mutations performed.
    pub mutations: u64,
}

impl EagerComparison {
    /// Eager slowdown vs unchecked (the paper cites 10×–100× for this
    /// class of checker).
    pub fn eager_slowdown(&self) -> f64 {
        self.eager.as_secs_f64() / self.unchecked.as_secs_f64().max(1e-9)
    }

    /// GC-assertions slowdown vs unchecked (should be near 1×).
    pub fn gc_slowdown(&self) -> f64 {
        self.gc_assertions.as_secs_f64() / self.unchecked.as_secs_f64().max(1e-9)
    }
}

/// Ablation B: the same ownership property — "every entry is owned by the
/// database" — checked three ways on an add/remove churn workload.
pub fn baseline_eager(entries: usize, mutations: usize) -> EagerComparison {
    use gca_workloads::structures::HArrayList;

    // The kernel, parameterized by a per-mutation callback.
    fn run_kernel(
        entries: usize,
        mutations: usize,
        gc_asserts: bool,
        mut after_mutation: impl FnMut(&Vm, gc_assertions::ObjRef, gc_assertions::ObjRef),
    ) -> (Duration, Vm) {
        let mut vm = Vm::new(VmConfig::builder().heap_budget(1 << 20).build());
        let m = vm.main();
        let db_class = vm.register_class("Database", &["entries"]);
        let entry_class = vm.register_class("Entry", &[]);
        let db = vm.alloc(m, db_class, 1, 0).unwrap();
        vm.add_root(m, db).unwrap();
        let list = HArrayList::new(&mut vm, m, entries.max(4)).unwrap();
        vm.set_field(db, 0, list.handle()).unwrap();

        let start = Instant::now();
        for i in 0..entries {
            let e = vm.alloc(m, entry_class, 0, 4).unwrap();
            list.push(&mut vm, m, e).unwrap();
            if gc_asserts {
                vm.assert_owned_by(db, e).unwrap();
            }
            after_mutation(&vm, db, e);
            let _ = i;
        }
        for i in 0..mutations {
            if i % 2 == 0 {
                let e = vm.alloc(m, entry_class, 0, 4).unwrap();
                list.push(&mut vm, m, e).unwrap();
                if gc_asserts {
                    vm.assert_owned_by(db, e).unwrap();
                }
                after_mutation(&vm, db, e);
            } else if list.len(&vm).unwrap() > 0 {
                let e = list.remove(&mut vm, 0).unwrap();
                after_mutation(&vm, db, e);
            }
        }
        vm.collect().unwrap();
        (start.elapsed(), vm)
    }

    let (unchecked, _) = run_kernel(entries, mutations, false, |_, _, _| {});
    let (gc_time, _) = run_kernel(entries, mutations, true, |_, _, _| {});

    let mut eager_checker = EagerOwnershipChecker::new();
    let mut first = true;
    let (eager_time, _) = run_kernel(entries, mutations, false, |vm, db, e| {
        if first {
            first = false;
        }
        // Register adds; `after_mutation` re-verifies everything.
        if vm.is_live(e) {
            eager_checker.add_pair(db, e);
        }
        let _ = eager_checker.after_mutation(vm.heap());
    });

    EagerComparison {
        unchecked,
        gc_assertions: gc_time,
        eager: eager_time,
        eager_traversed: eager_checker.objects_traversed(),
        mutations: eager_checker.mutations(),
    }
}

/// Result of the generational comparison (Ablation E): the same workload
/// under full-heap MarkSweep vs generational collection, with the
/// assertion-detection latency the paper warns about (§2.2).
#[derive(Debug, Clone)]
pub struct GenerationalComparison {
    /// Wall time under full-heap MarkSweep.
    pub marksweep_total: Duration,
    /// GC time under full-heap MarkSweep.
    pub marksweep_gc: Duration,
    /// Major collections under MarkSweep.
    pub marksweep_majors: u64,
    /// Wall time under generational collection.
    pub generational_total: Duration,
    /// Major + minor GC time under generational collection.
    pub generational_gc: Duration,
    /// Major collections under generational.
    pub generational_majors: u64,
    /// Minor collections under generational.
    pub generational_minors: u64,
    /// Collections (of any kind) that ran between asserting an object
    /// dead and the violation being reported, under MarkSweep.
    pub marksweep_detection_gcs: u64,
    /// Same, under generational — the unchecked-for-long-periods effect.
    pub generational_detection_gcs: u64,
}

/// Ablation E: the paper chose a full-heap collector so every assertion
/// is checked at every collection (§2.2); this measures what the
/// generational alternative trades — GC time vs detection latency — on a
/// churn workload with one planted violation.
pub fn baseline_generational() -> GenerationalComparison {
    fn run(gen: Option<usize>) -> (Duration, Duration, u64, u64, u64) {
        let mut config = VmConfig::builder()
            .heap_budget(3_000)
            .grow_on_oom(true)
            .build();
        if let Some(n) = gen {
            config = config.generational(n);
        }
        let mut vm = Vm::new(config);
        let c = vm.register_class("T", &["churn", "pin"]);
        let m = vm.main();

        // The planted violation: a "dropped" object still referenced
        // through the holder's second field (the first is churned below).
        let holder = vm.alloc_rooted(m, c, 2, 0).unwrap();
        let leaked = vm.alloc(m, c, 2, 0).unwrap();
        vm.set_field(holder, 1, leaked).unwrap();
        vm.assert_dead(leaked).unwrap();

        // Churn with a slowly mutating long-lived structure.
        let start = Instant::now();
        let mut detection_gcs: Option<u64> = None;
        let mut old_head = holder;
        for i in 0..30_000u64 {
            let o = vm.alloc(m, c, 2, 4).unwrap();
            if i % 100 == 0 {
                // Occasional old->young edge to exercise the barrier.
                vm.set_field(old_head, 0, o).unwrap();
                vm.add_root(m, o).unwrap();
                old_head = o;
            }
            if detection_gcs.is_none() && !vm.violation_log().is_empty() {
                detection_gcs = Some(vm.collections() + vm.minor_collections());
            }
        }
        if detection_gcs.is_none() {
            vm.collect().unwrap();
            detection_gcs = Some(vm.collections() + vm.minor_collections());
        }
        let total = start.elapsed();
        (
            total,
            vm.gc_stats().total_gc_time + vm.minor_gc_time(),
            vm.collections(),
            vm.minor_collections(),
            detection_gcs.unwrap_or(0),
        )
    }

    let (ms_total, ms_gc, ms_majors, _, ms_det) = run(None);
    let (gen_total, gen_gc, gen_majors, gen_minors, gen_det) = run(Some(16));
    GenerationalComparison {
        marksweep_total: ms_total,
        marksweep_gc: ms_gc,
        marksweep_majors: ms_majors,
        generational_total: gen_total,
        generational_gc: gen_gc,
        generational_majors: gen_majors,
        generational_minors: gen_minors,
        marksweep_detection_gcs: ms_det,
        generational_detection_gcs: gen_det,
    }
}

/// Result of the probe-vs-batch comparison (Ablation D): the same `k`
/// liveness questions answered by QVM-style immediate probes (one full
/// heap trace each) vs GC assertions (batched into one collection).
#[derive(Debug, Clone)]
pub struct ProbeComparison {
    /// Questions asked.
    pub questions: usize,
    /// Wall time for `k` immediate probes.
    pub probes: Duration,
    /// Wall time for `k` batched assertions + one collection.
    pub batched: Duration,
}

impl ProbeComparison {
    /// Probe slowdown relative to batching.
    pub fn slowdown(&self) -> f64 {
        self.probes.as_secs_f64() / self.batched.as_secs_f64().max(1e-9)
    }
}

/// Ablation D: QVM's heap probes check a property *immediately* by
/// triggering a traversal per probe; GC assertions batch all pending
/// checks into the next collection (§4.1). Builds a heap of `live`
/// objects and asks `questions` is-this-dead questions both ways.
pub fn baseline_probes(live: usize, questions: usize) -> ProbeComparison {
    fn build(live: usize) -> (Vm, Vec<gc_assertions::ObjRef>) {
        let mut vm = Vm::new(VmConfig::builder().heap_budget(1 << 22).build());
        let m = vm.main();
        let c = vm.register_class("Node", &["next"]);
        let mut objs = Vec::new();
        let mut prev = gc_assertions::ObjRef::NULL;
        for i in 0..live {
            let o = vm.alloc(m, c, 1, 2).unwrap();
            if prev.is_some() {
                vm.set_field(o, 0, prev).unwrap();
            }
            if i % 64 == 0 {
                vm.add_root(m, o).unwrap();
                prev = gc_assertions::ObjRef::NULL;
            } else {
                prev = o;
            }
            objs.push(o);
        }
        (vm, objs)
    }

    // Immediate probes: one full trace per question.
    let (mut vm, objs) = build(live);
    let t = Instant::now();
    let mut reachable = 0usize;
    for q in 0..questions {
        if vm.probe_reachable(objs[(q * 37) % objs.len()]).unwrap() {
            reachable += 1;
        }
    }
    let probes = t.elapsed();
    std::hint::black_box(reachable);

    // Batched: mark the same objects dead, check them all in one GC.
    let (mut vm, objs) = build(live);
    let t = Instant::now();
    for q in 0..questions {
        vm.assert_dead(objs[(q * 37) % objs.len()]).unwrap();
    }
    let report = vm.collect().unwrap();
    let batched = t.elapsed();
    std::hint::black_box(report.violations.len());

    ProbeComparison {
        questions,
        probes,
        batched,
    }
}

/// Result of the heuristic-detector comparison (Ablation C).
#[derive(Debug, Clone)]
pub struct DetectorComparison {
    /// Entries actually leaked by the planted bug.
    pub leaked: usize,
    /// GC assertions: violations that name exactly a leaked entry.
    pub gca_true_positives: usize,
    /// GC assertions: reports that are not real leaks (the paper's claim:
    /// always zero — violations are programmer-stated facts failing).
    pub gca_false_positives: usize,
    /// Staleness: stale candidates that are leaked entries.
    pub stale_true_positives: usize,
    /// Staleness: stale candidates that are live, needed objects.
    pub stale_false_positives: usize,
    /// Cork: whether the growing class was (correctly) flagged.
    pub cork_flagged_entry_class: bool,
}

/// Ablation C: a planted leak (removed entries stashed in a hidden cache)
/// plus a rarely-accessed-but-needed configuration object, examined by
/// all three detector families.
pub fn baseline_detectors() -> DetectorComparison {
    use gca_workloads::structures::HArrayList;

    let mut vm = Vm::new(VmConfig::builder().heap_budget(1 << 20).build());
    let m = vm.main();
    let db_class = vm.register_class("Database", &["entries"]);
    let entry_class = vm.register_class("Entry", &[]);
    let config_class = vm.register_class("AppConfig", &[]);

    let db = vm.alloc(m, db_class, 1, 0).unwrap();
    vm.add_root(m, db).unwrap();
    let list = HArrayList::new(&mut vm, m, 64).unwrap();
    vm.set_field(db, 0, list.handle()).unwrap();
    let cache = HArrayList::new(&mut vm, m, 8).unwrap();
    vm.add_root(m, cache.handle()).unwrap();

    // A config object read once at startup — needed but rarely touched.
    let config = vm.alloc(m, config_class, 0, 8).unwrap();
    vm.add_root(m, config).unwrap();

    let mut staleness = StalenessDetector::new(50);
    staleness.touch(config);

    // Populate and churn; every 10th removal leaks into the cache.
    let mut cork = CorkDetector::new(2);
    let mut cork_flagged_entry_class = false;
    let mut leaked = Vec::new();
    for i in 0..200u64 {
        let e = vm.alloc(m, entry_class, 0, 4).unwrap();
        list.push(&mut vm, m, e).unwrap();
        vm.assert_owned_by(db, e).unwrap();
        staleness.touch(e);
        staleness.advance();
        if i % 2 == 1 {
            let victim = list.remove(&mut vm, 0).unwrap();
            vm.assert_dead(victim).unwrap();
            if i % 10 == 9 {
                cache.push(&mut vm, m, victim).unwrap(); // the leak
                leaked.push(victim);
            }
            cork_flagged_entry_class |= cork
                .observe(vm.heap())
                .iter()
                .any(|c| c.class_name == "Entry");
        }
        // Touch the live entries periodically (they are in active use).
        if i % 5 == 0 {
            for live in list.elements(&vm).unwrap() {
                staleness.touch(live);
            }
        }
    }
    for _ in 0..100 {
        staleness.advance();
    }
    vm.collect().unwrap();

    // Another observation round for cork on the settled heap.
    cork_flagged_entry_class |= cork
        .observe(vm.heap())
        .iter()
        .any(|c| c.class_name == "Entry");

    let log = vm.take_violation_log();
    let gca_hits: Vec<_> = log
        .iter()
        .filter_map(|v| match &v.kind {
            ViolationKind::DeadReachable { object, .. } => Some(*object),
            ViolationKind::NotOwned { ownee, .. } => Some(*ownee),
            _ => None,
        })
        .collect();
    let gca_true_positives = gca_hits.iter().filter(|o| leaked.contains(o)).count();
    let gca_false_positives = gca_hits.iter().filter(|o| !leaked.contains(o)).count();

    let stale = staleness.scan(vm.heap());
    let stale_true_positives = stale.iter().filter(|s| leaked.contains(&s.object)).count();
    let stale_false_positives = stale.iter().filter(|s| !leaked.contains(&s.object)).count();

    DetectorComparison {
        leaked: leaked.len(),
        gca_true_positives,
        gca_false_positives,
        stale_true_positives,
        stale_false_positives,
        cork_flagged_entry_class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_stats_mean_and_ci() {
        let xs = [
            Duration::from_millis(10),
            Duration::from_millis(12),
            Duration::from_millis(14),
        ];
        let s = sample_stats(&xs);
        assert_eq!(s.mean, Duration::from_millis(12));
        // sd = 2ms, se = 2/sqrt(3) ≈ 1.1547ms, ci = 1.645*se ≈ 1.8995ms
        let ci_ms = s.ci90_half.as_secs_f64() * 1e3;
        assert!((ci_ms - 1.8995).abs() < 0.01, "ci = {ci_ms}");
    }

    #[test]
    fn sample_stats_degenerate_inputs() {
        assert_eq!(sample_stats(&[]).mean, Duration::ZERO);
        let one = sample_stats(&[Duration::from_millis(5)]);
        assert_eq!(one.mean, Duration::from_millis(5));
        assert_eq!(one.ci90_half, Duration::ZERO);
    }

    #[test]
    fn eager_comparison_math() {
        let cmp = EagerComparison {
            unchecked: Duration::from_millis(10),
            gc_assertions: Duration::from_millis(11),
            eager: Duration::from_millis(300),
            eager_traversed: 1,
            mutations: 1,
        };
        assert!((cmp.gc_slowdown() - 1.1).abs() < 1e-9);
        assert!((cmp.eager_slowdown() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn probe_comparison_math() {
        let p = ProbeComparison {
            questions: 10,
            probes: Duration::from_millis(470),
            batched: Duration::from_millis(10),
        };
        assert!((p.slowdown() - 47.0).abs() < 1e-9);
    }

    #[test]
    fn figure1_smoke() {
        let text = figure1();
        assert!(text.contains("Order"));
    }

    #[test]
    fn probe_baseline_prefers_batching() {
        let p = baseline_probes(2_000, 16);
        assert!(p.probes > p.batched, "{p:?}");
    }
}
