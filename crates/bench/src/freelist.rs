//! A faithful replica of the pre-BiBOP free-list heap's allocation hot
//! path, kept as the measurement baseline for the `ablation_bibop`
//! comparison now that the real substrate has been replaced.
//!
//! The original `gca-heap` stored one `Slot` per object in a single
//! `Vec`, where each slot was either `Occupied` (an object with an inline
//! [`AtomicFlags`] header) or `Free`, threading the next-free index
//! through the slot's own memory. That gives the two costs the ablation
//! isolates:
//!
//! * **allocation reuse is a dependent-load chain** — popping the free
//!   list reads the freed slot's memory to find the next head, so a
//!   fragmented heap pays one potential cache miss per allocation;
//! * **flag scans are per-object** — any mark-loop style pass visits
//!   every slot, branches on the occupancy enum, and reads a per-object
//!   atomic, where the BiBOP layout reads one 64-slot bitmap word.

use gca_heap::{AtomicFlags, Flags};

/// One object as the old heap stored it: header flags plus the reference
/// and data payloads (the same two `Vec` allocations the real `Object`
/// makes, so both sides of the ablation pay identical payload costs).
struct FreeListObject {
    flags: AtomicFlags,
    refs: Vec<u64>,
    data: Vec<u64>,
}

/// Stored inline in the slot, exactly like the original
/// `SlotState::Occupied(Object)` — each slot is several words wide, so
/// walking the slot vector strides across much more memory than the
/// BiBOP side's bitmap words.
enum SlotState {
    Free { next_free: Option<u32> },
    Occupied(FreeListObject),
}

struct Slot {
    gen: u32,
    state: SlotState,
}

/// The baseline heap: a slot vector with an intrusive free list, exactly
/// the shape `gca_heap::Heap` had before the BiBOP rewrite.
#[derive(Default)]
pub struct FreeListHeap {
    slots: Vec<Slot>,
    free_head: Option<u32>,
    live_objects: usize,
    occupied_words: usize,
    allocations: u64,
    allocated_words: u64,
    peak_occupied_words: usize,
    frees: u64,
    freed_words: u64,
}

impl FreeListHeap {
    /// Creates an empty baseline heap.
    pub fn new() -> FreeListHeap {
        FreeListHeap::default()
    }

    /// Allocates an object, reusing the free-list head if one exists —
    /// the old heap's exact reuse discipline. Returns the `(index,
    /// generation)` handle the old heap minted (the generation read is
    /// part of its hot path).
    pub fn alloc(&mut self, nrefs: usize, data_words: usize) -> (u32, u32) {
        let object = FreeListObject {
            flags: AtomicFlags::empty(),
            refs: vec![0; nrefs],
            data: vec![0; data_words],
        };
        let words = nrefs + data_words;
        let handle = match self.free_head {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                let next = match slot.state {
                    SlotState::Free { next_free } => next_free,
                    SlotState::Occupied(_) => unreachable!("free list points at occupied slot"),
                };
                self.free_head = next;
                slot.state = SlotState::Occupied(object);
                (index, slot.gen)
            }
            None => {
                let index = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    state: SlotState::Occupied(object),
                });
                (index, 0)
            }
        };
        // The old heap's per-alloc bookkeeping, replicated so the
        // comparison charges both substrates their real hot path.
        self.live_objects += 1;
        self.occupied_words += words;
        self.allocations += 1;
        self.allocated_words += words as u64;
        if self.occupied_words > self.peak_occupied_words {
            self.peak_occupied_words = self.occupied_words;
        }
        handle
    }

    /// Frees a slot: validate the handle (the old `Heap::free` ran
    /// `check()` first — generation compare plus occupancy test), bump the
    /// generation, push onto the free list, update the free-side stats.
    pub fn free(&mut self, handle: (u32, u32)) -> usize {
        let (index, generation) = handle;
        let slot = self
            .slots
            .get_mut(index as usize)
            .expect("free: invalid handle");
        assert_eq!(slot.gen, generation, "free: stale handle");
        let words = match &slot.state {
            SlotState::Occupied(obj) => obj.refs.len() + obj.data.len(),
            SlotState::Free { .. } => unreachable!("double free"),
        };
        slot.gen = slot.gen.wrapping_add(1);
        slot.state = SlotState::Free {
            next_free: self.free_head,
        };
        self.free_head = Some(index);
        self.live_objects -= 1;
        self.occupied_words -= words;
        self.frees += 1;
        self.freed_words += words as u64;
        words
    }

    /// Sets header flag bits on a live slot.
    pub fn set_flag(&mut self, handle: (u32, u32), bits: Flags) {
        if let SlotState::Occupied(obj) = &self.slots[handle.0 as usize].state {
            obj.flags.fetch_set(bits);
        }
    }

    /// The mark-loop the old collector ran: visit every slot, branch on
    /// occupancy, read the per-object atomic header. Returns the number
    /// of marked objects so the whole scan stays observable.
    pub fn mark_scan(&self) -> usize {
        let mut marked = 0;
        for slot in &self.slots {
            if let SlotState::Occupied(obj) = &slot.state {
                if obj.flags.contains(Flags::MARK) {
                    marked += 1;
                }
            }
        }
        marked
    }

    /// Clears the per-GC flag bits on every live slot (the old sweep's
    /// per-object epilogue).
    pub fn clear_marks(&mut self) {
        for slot in &mut self.slots {
            if let SlotState::Occupied(obj) = &slot.state {
                obj.flags.fetch_clear(Flags::PER_GC);
            }
        }
    }

    /// Live objects currently in the heap.
    pub fn live_objects(&self) -> usize {
        self.live_objects
    }

    /// Total payload words across live objects (the old heap's
    /// `occupied_words` recount).
    pub fn live_words(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|s| match &s.state {
                SlotState::Occupied(obj) => Some(obj.refs.len() + obj.data.len()),
                SlotState::Free { .. } => None,
            })
            .sum()
    }

    /// Total slots ever created (the vector never shrinks).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Lifetime counters `(allocations, allocated_words,
    /// peak_occupied_words, frees, freed_words)`, mirroring the old
    /// `HeapStats`.
    pub fn stats(&self) -> (u64, u64, usize, u64, u64) {
        (
            self.allocations,
            self.allocated_words,
            self.peak_occupied_words,
            self.frees,
            self.freed_words,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_reuses_freed_slots_lifo() {
        let mut h = FreeListHeap::new();
        let a = h.alloc(2, 2);
        let b = h.alloc(2, 2);
        h.free(a);
        h.free(b);
        // LIFO: b's slot comes back first, one generation older.
        assert_eq!(h.alloc(2, 2), (b.0, 1));
        assert_eq!(h.alloc(2, 2), (a.0, 1));
        assert_eq!(h.slot_count(), 2);
        assert_eq!(h.live_objects(), 2);
        assert_eq!(h.live_words(), 8);
        assert_eq!(h.stats(), (4, 16, 8, 2, 8));
    }

    #[test]
    #[should_panic(expected = "stale handle")]
    fn stale_handle_is_rejected() {
        let mut h = FreeListHeap::new();
        let a = h.alloc(1, 1);
        h.free(a);
        let _ = h.alloc(1, 1);
        h.free(a); // generation moved on
    }

    #[test]
    fn mark_scan_counts_marked_only() {
        let mut h = FreeListHeap::new();
        let a = h.alloc(1, 3);
        let _b = h.alloc(1, 3);
        let c = h.alloc(1, 3);
        h.free(c);
        h.set_flag(a, Flags::MARK);
        assert_eq!(h.mark_scan(), 1);
        h.clear_marks();
        assert_eq!(h.mark_scan(), 0);
    }
}
