//! # gca-script — a tiny language for driving the GC-assertions VM
//!
//! The paper's interface is programmatic; this crate wraps it in a small
//! line-oriented scripting language so heap scenarios can be written,
//! shared, and replayed as plain text — a GC-assertions playground:
//!
//! ```text
//! # build registry -> entries[0] -> session, plus a cache alias
//! class Registry entries
//! class Session user
//! class Cache hit
//!
//! new r Registry
//! root r
//! new s Session
//! set r.entries s
//! new c Cache
//! root c
//! set c.hit s
//!
//! # log the session out... and assert it dies
//! set r.entries null
//! assert-dead s
//! gc
//! expect-violations 1     # the cache still holds it
//! print
//! ```
//!
//! Run a script with the bundled binary:
//!
//! ```text
//! cargo run -p gca-script --bin gca -- script.gca
//! ```
//!
//! The `expect-*` commands make scripts self-checking, so scenario files
//! double as integration tests (see `tests/scripts.rs`).
//!
//! Scripts can also be checked *without* running them: the [`analysis`]
//! module (surfaced as `gca check <script>`) forward-interprets the
//! command stream over an abstract heap and predicts each collection's
//! assertion verdicts as must-violate / may-violate / safe, with
//! line-accurate root-to-object paths.
//!
//! # Example
//!
//! ```
//! use gca_script::Interpreter;
//!
//! let script = "
//! class T f
//! new a T
//! root a
//! new b T
//! set a.f b
//! assert-unshared b
//! gc
//! expect-violations 0
//! ";
//! let output = Interpreter::run_script(script).expect("script succeeds");
//! assert!(output.lines.iter().any(|l| l.contains("gc:")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod ast;
mod error;
mod interp;

pub use analysis::{
    analyze, analyze_with, apply_suggestions, suggest, Analysis, Diagnostic, DomainKind,
    GcPrediction, Severity, SuggestOutcome, Suggestion,
};
pub use ast::{parse_line, parse_script, Command, Target};
pub use error::{ScriptError, ScriptErrorKind, SourceLocation};
pub use interp::{Interpreter, Output};
