//! Script errors with line information.

use std::error::Error;
use std::fmt;

/// What went wrong while parsing or executing a script.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScriptErrorKind {
    /// Unknown command word.
    UnknownCommand(String),
    /// Wrong number or shape of arguments; the message names the
    /// expected form.
    BadArguments(String),
    /// Reference to a variable that was never bound.
    UnknownVariable(String),
    /// Reference to a class that was never declared.
    UnknownClass(String),
    /// Reference to a field not declared on the class.
    UnknownField {
        /// The class searched.
        class: String,
        /// The missing field.
        field: String,
    },
    /// A `config` command after the VM already started executing.
    ConfigAfterStart,
    /// An `expect-*` assertion failed; the message describes the
    /// mismatch.
    ExpectationFailed(String),
    /// The VM rejected the operation.
    Vm(String),
}

/// A parse or execution error, tagged with its 1-based script line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number in the script.
    pub line: usize,
    /// The failure.
    pub kind: ScriptErrorKind,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ScriptErrorKind::UnknownCommand(c) => write!(f, "unknown command `{c}`"),
            ScriptErrorKind::BadArguments(m) => write!(f, "bad arguments: {m}"),
            ScriptErrorKind::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            ScriptErrorKind::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            ScriptErrorKind::UnknownField { class, field } => {
                write!(f, "class `{class}` has no field `{field}`")
            }
            ScriptErrorKind::ConfigAfterStart => {
                write!(f, "`config` must appear before any other command")
            }
            ScriptErrorKind::ExpectationFailed(m) => write!(f, "expectation failed: {m}"),
            ScriptErrorKind::Vm(m) => write!(f, "vm error: {m}"),
        }
    }
}

impl Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line_and_kind() {
        let e = ScriptError {
            line: 7,
            kind: ScriptErrorKind::UnknownVariable("x".into()),
        };
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("`x`"));
    }
}
