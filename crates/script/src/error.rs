//! Script errors with line information.

use std::error::Error;
use std::fmt;

/// What went wrong while parsing or executing a script.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScriptErrorKind {
    /// Unknown command word.
    UnknownCommand(String),
    /// Wrong number or shape of arguments; the message names the
    /// expected form.
    BadArguments(String),
    /// Reference to a variable that was never bound.
    UnknownVariable(String),
    /// Reference to a class that was never declared.
    UnknownClass(String),
    /// Reference to a field not declared on the class.
    UnknownField {
        /// The class searched.
        class: String,
        /// The missing field.
        field: String,
    },
    /// A `config` command after the VM already started executing.
    ConfigAfterStart,
    /// An `expect-*` assertion failed; the message describes the
    /// mismatch.
    ExpectationFailed(String),
    /// The VM rejected the operation.
    Vm(String),
}

/// A source position: a 1-based line and, when the reporter could compute
/// it cheaply, a 1-based column. This is the one renderer shared by the
/// parser ([`crate::parse_line`]), the interpreter, and the static
/// analyzer ([`crate::analysis`]), so every diagnostic in the crate
/// locates itself the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceLocation {
    /// 1-based line number in the script.
    pub line: usize,
    /// 1-based column of the offending token, when known.
    pub column: Option<usize>,
}

impl fmt::Display for SourceLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.column {
            // The column extends the classic `line N` form rather than
            // replacing it, so line-only consumers keep working.
            Some(col) => write!(f, "line {}:{col}", self.line),
            None => write!(f, "line {}", self.line),
        }
    }
}

/// A parse or execution error, tagged with its 1-based script line and,
/// when cheaply available, the offending token and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number in the script.
    pub line: usize,
    /// The failure.
    pub kind: ScriptErrorKind,
    /// The offending token, when the reporter identified one.
    pub token: Option<String>,
    /// 1-based column of the offending token, when known.
    pub column: Option<usize>,
}

impl ScriptError {
    /// Creates an error at `line` with no token information.
    pub fn new(line: usize, kind: ScriptErrorKind) -> ScriptError {
        ScriptError {
            line,
            kind,
            token: None,
            column: None,
        }
    }

    /// Attaches the offending token (and its 1-based column, when known).
    #[must_use]
    pub fn with_token(mut self, token: impl Into<String>, column: Option<usize>) -> ScriptError {
        self.token = Some(token.into());
        self.column = column;
        self
    }

    /// The error's source location, for the shared renderer.
    pub fn location(&self) -> SourceLocation {
        SourceLocation {
            line: self.line,
            column: self.column,
        }
    }
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.location())?;
        match &self.kind {
            ScriptErrorKind::UnknownCommand(c) => write!(f, "unknown command `{c}`"),
            ScriptErrorKind::BadArguments(m) => write!(f, "bad arguments: {m}"),
            ScriptErrorKind::UnknownVariable(v) => write!(f, "unknown variable `{v}`"),
            ScriptErrorKind::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            ScriptErrorKind::UnknownField { class, field } => {
                write!(f, "class `{class}` has no field `{field}`")
            }
            ScriptErrorKind::ConfigAfterStart => {
                write!(f, "`config` must appear before any other command")
            }
            ScriptErrorKind::ExpectationFailed(m) => write!(f, "expectation failed: {m}"),
            ScriptErrorKind::Vm(m) => write!(f, "vm error: {m}"),
        }
    }
}

impl Error for ScriptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line_and_kind() {
        let e = ScriptError::new(7, ScriptErrorKind::UnknownVariable("x".into()));
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("`x`"));
    }

    #[test]
    fn line_only_format_is_preserved_without_column() {
        let e = ScriptError::new(3, ScriptErrorKind::ConfigAfterStart);
        assert!(e.to_string().starts_with("line 3: "));
    }

    #[test]
    fn column_extends_the_location() {
        let e = ScriptError::new(3, ScriptErrorKind::UnknownCommand("frob".into()))
            .with_token("frob", Some(5));
        assert!(e.to_string().starts_with("line 3:5: "));
        assert_eq!(e.token.as_deref(), Some("frob"));
        assert_eq!(e.location().column, Some(5));
    }
}
