//! Static checking for GCA scripts: `gca check`.
//!
//! The analyzer runs a flow-sensitive forward interpretation over the
//! command stream with an abstract heap — an allocation-site points-to
//! graph tracking variables, ref fields, the root set, region
//! membership, and incoming-edge multiplicity (see [`domain`]).  At each
//! `gc` it replays the collector's mark/sweep cycle abstractly (see
//! [`collect`]) and classifies every registered assertion on the verdict
//! lattice **Safe < May < Must**:
//!
//! * **must-violate** (error): the abstract collection proves the
//!   assertion fires.  Must-verdicts are sound — the differential test
//!   in `tests/check.rs` pins them as a subset of what the interpreter
//!   actually reports.
//! * **may-violate** (warning): plausible on the abstract heap, but the
//!   analyzer declines to promise it.  Concretely, any collection that
//!   begins with a non-empty ownership table downgrades all of its
//!   verdicts to *may* — ownership reachability is where a static model
//!   earns the least trust — and the analyzer's expectation predictions
//!   are disabled from then on.
//! * **safe**: nothing reported.
//!
//! Diagnostics carry 1-based line/column spans and a root-to-object
//! abstract path mirroring the paper's Figure-1 reports, e.g.
//! `occupant: SObject (line 8) -.rep-> fresh_rep: Rep (line 16)`.
//! Advisory lints ride along as warnings: dead-but-still-rooted,
//! unshared-with-two-stores, region allocations escaping before
//! `all-dead`, use-after-`assert-dead`, and class redeclaration.

mod collect;
mod diag;
mod domain;
pub mod json;
mod suggest;
mod summary;

pub use diag::{Diagnostic, Severity};
pub use suggest::{apply_suggestions, suggest, SuggestOutcome, Suggestion};

use crate::ast::{parse_script, token_column, Command, Target};
use crate::error::ScriptError;

use collect::{Collection, CycleOutcome, PathStep, PredKind, PredViolation};
use domain::{AbsClass, AbsObj, AbsState, InstanceLimit, ObjId, OwnerEntry, Reaction};

/// Which abstract heap domain drives the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DomainKind {
    /// Bounded access graphs (the default): `repeat`/`proc` bodies are
    /// exactly unrolled when small, otherwise summarized to a fixpoint
    /// with per-site summary nodes and weak field edges — looping
    /// scripts can still earn Safe (and, via unrolling, Must) verdicts.
    #[default]
    AccessGraph,
    /// The PR 4 per-site strawman: no field-edge reasoning across
    /// loop or procedure bodies, so every assertion a loop touches
    /// degrades to May.  Kept as a comparison baseline; `gca check
    /// --domain per-site` selects it.
    PerSite,
}

/// What the analyzer predicts one collection will report.
#[derive(Debug, Clone)]
pub struct GcPrediction {
    /// 1-based line of the command that triggered the collection.
    pub line: usize,
    /// Triggered by an explicit `gc` command (as opposed to the
    /// allocator or `minor-gc`).
    pub explicit: bool,
    /// A minor (nursery-only) collection.
    pub minor: bool,
    /// Violations certain to be reported, in the runtime's
    /// `Violation::summary()` format.
    pub must: Vec<String>,
    /// Violations possible but not promised (ownership humility).
    pub may: Vec<String>,
    /// The prediction stands for *every* dynamic execution of this
    /// collection site inside a summarized `repeat`/`proc` body (its
    /// must-set is empty by construction); the differential harness
    /// matches it against all runtime collections at this line.
    pub summarized: bool,
}

/// The result of statically checking a script.
#[derive(Debug)]
pub struct Analysis {
    /// All diagnostics, in emission order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-collection verdicts, explicit and implicit, in execution
    /// order.
    pub collections: Vec<GcPrediction>,
}

impl Analysis {
    /// Whether any diagnostic is at error severity (a must-violate
    /// verdict or a predicted runtime failure) — the `gca check` exit-2
    /// condition.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Renders every diagnostic plus a one-line verdict summary.
    ///
    /// Note-severity advisories (the liveness lints) are omitted here to
    /// keep the classic transcript stable; they are carried in
    /// [`Analysis::diagnostics`] and the `--json` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            if d.severity == Severity::Note {
                continue;
            }
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        out.push_str(&format!(
            "check: {} collection(s) analyzed, {errors} error(s), {warnings} warning(s)\n",
            self.collections.len()
        ));
        out
    }
}

/// Statically checks `src`, predicting each collection's assertion
/// verdicts without running the VM.
///
/// # Errors
///
/// Parse errors only — semantic problems the *interpreter* would reject
/// (unknown variables, halted-VM use, failing expectations, …) are
/// reported as error-severity [`Diagnostic`]s in the returned
/// [`Analysis`] instead, with analysis stopping at the first one.
pub fn analyze(src: &str) -> Result<Analysis, ScriptError> {
    analyze_with(src, DomainKind::AccessGraph)
}

/// [`analyze`] with an explicit abstract domain — [`DomainKind::PerSite`]
/// reproduces the PR 4 baseline's loop-blindness for comparison pins.
///
/// # Errors
///
/// Parse errors only, exactly like [`analyze`].
pub fn analyze_with(src: &str, domain: DomainKind) -> Result<Analysis, ScriptError> {
    let commands = parse_script(src)?;
    let mut an = Analyzer::new(src, domain);
    for (line, cmd) in &commands {
        an.execute(*line, cmd);
        if an.stopped {
            break;
        }
    }
    an.finish_analysis();
    Ok(Analysis {
        diagnostics: an.diagnostics,
        collections: an.collections,
    })
}

/// Exact unrolling bound: a `repeat` whose `count × body-length` stays at
/// or below this replays exactly (full Must/Safe precision); larger loops
/// are summarized to a fixpoint.
const UNROLL_LIMIT: usize = 128;
/// Fixpoint rounds before the analyzer gives up and goes blind (havoc).
const MAX_ROUNDS: usize = 8;
/// Commands replayed inside a single top-level `call` tree before the
/// analyzer stops replaying and goes blind (guards against exponential
/// multi-call recursion; the runtime bound is depth, not work).
const REPLAY_WORK_LIMIT: usize = 20_000;
/// Default `call` depth bound, mirroring the interpreter.
const DEFAULT_CALL_LIMIT: usize = 16;

/// Which structured block an open recording belongs to.
#[derive(Debug, Clone)]
enum BlockKind {
    Repeat { count: usize },
    Proc { name: String },
}

/// A block body being buffered, mirroring the interpreter's recorder.
#[derive(Debug)]
struct Recording {
    kind: BlockKind,
    line: usize,
    /// Nested openers: `true` = repeat, `false` = proc.
    open: Vec<bool>,
    body: Vec<(usize, Command)>,
}

/// Per-`assert-dead`-site outcome tracking for the
/// `redundant-assert-dead` lint.
#[derive(Debug, Default, Clone, Copy)]
struct DeadAssertOutcome {
    /// Some collection examined the assertion.
    checked: bool,
    /// Some collection produced a (must or may) dead-reachable verdict.
    nonsafe: bool,
}

struct Analyzer<'a> {
    st: AbsState,
    domain: DomainKind,
    lines: Vec<&'a str>,
    diagnostics: Vec<Diagnostic>,
    collections: Vec<GcPrediction>,
    /// Line of the collection that latched the halt reaction.
    halt_line: Option<usize>,
    /// A predicted runtime failure was emitted; analysis stops.
    stopped: bool,
    /// Open `repeat`/`proc` block being recorded.
    recording: Option<Recording>,
    /// Recorded procedure bodies by name.
    procs: std::collections::HashMap<String, Vec<(usize, Command)>>,
    /// Dynamic `call` nesting depth (mirrors the interpreter).
    call_depth: usize,
    /// `config call-depth` bound.
    call_limit: usize,
    /// Depth of summarized-block execution (allocations become summary
    /// nodes, collections run the summary collector).
    summarizing: usize,
    /// Depth of *quiet* fixpoint rounds: diagnostics and predictions are
    /// suppressed while the state converges.
    quiet: usize,
    /// Commands replayed in the current top-level `call` tree.
    replay_work: usize,
    /// Advisory diagnostics already emitted, for idempotent loud rounds
    /// and exact unrolling: `(line, code, message)`.
    seen_advisory: std::collections::HashSet<(usize, &'static str, String)>,
    /// Per-`assert-dead`-line verdict history for the redundancy lint.
    dead_asserts: std::collections::BTreeMap<usize, DeadAssertOutcome>,
    /// `loop-invariant-assertion` notes already emitted, by line.
    linted_invariant: std::collections::HashSet<usize>,
}

impl<'a> Analyzer<'a> {
    fn new(src: &'a str, domain: DomainKind) -> Analyzer<'a> {
        Analyzer {
            st: AbsState::new(),
            domain,
            lines: src.lines().collect(),
            diagnostics: Vec::new(),
            collections: Vec::new(),
            halt_line: None,
            stopped: false,
            recording: None,
            procs: std::collections::HashMap::new(),
            call_depth: 0,
            call_limit: DEFAULT_CALL_LIMIT,
            summarizing: 0,
            quiet: 0,
            replay_work: 0,
            seen_advisory: std::collections::HashSet::new(),
            dead_asserts: std::collections::BTreeMap::new(),
            linted_invariant: std::collections::HashSet::new(),
        }
    }

    fn col(&self, line: usize) -> Option<usize> {
        self.lines.get(line - 1).and_then(|l| token_column(l, 0))
    }

    fn diag(&mut self, line: usize, severity: Severity, code: &'static str, message: String) {
        if severity != Severity::Error {
            // Quiet fixpoint rounds converge silently; advisory
            // diagnostics dedupe so replayed bodies emit each once.
            if self.quiet > 0 || !self.seen_advisory.insert((line, code, message.clone())) {
                return;
            }
        }
        let column = self.col(line);
        self.diagnostics.push(Diagnostic {
            line,
            column,
            severity,
            code,
            message,
            notes: Vec::new(),
        });
    }

    /// A predicted runtime failure: error severity, and analysis stops
    /// (the interpreter would abort the script here).
    fn fail(&mut self, line: usize, code: &'static str, message: String) {
        self.diag(line, Severity::Error, code, message);
        self.stopped = true;
    }

    fn warn(&mut self, line: usize, code: &'static str, message: String) {
        self.diag(line, Severity::Warning, code, message);
    }

    // ------------------------------------------------------------------
    // Lookups, mirroring the interpreter's error behavior
    // ------------------------------------------------------------------

    fn var(&mut self, line: usize, name: &str) -> Option<ObjId> {
        match self.st.lookup(name) {
            Some(o) => Some(o),
            None => {
                self.fail(
                    line,
                    "unknown-variable",
                    format!("unknown variable `{name}`"),
                );
                None
            }
        }
    }

    /// A live object bound to `name`, or a predicted stale-reference
    /// failure.
    fn live_var(&mut self, line: usize, name: &str) -> Option<ObjId> {
        let obj = self.var(line, name)?;
        if !self.st.objects[obj].alive {
            self.fail(
                line,
                "stale-ref",
                format!(
                    "`{name}` refers to {}, which was reclaimed by an earlier collection",
                    self.st.describe(obj)
                ),
            );
            return None;
        }
        Some(obj)
    }

    fn class(&mut self, line: usize, name: &str) -> Option<usize> {
        match self.st.class_by_name.get(name) {
            Some(&c) => Some(c),
            None => {
                self.fail(line, "unknown-class", format!("unknown class `{name}`"));
                None
            }
        }
    }

    /// Mirror of `Vm::check_running`: commands that mutate or assert
    /// fail once a halt-reaction violation latched.
    fn check_running(&mut self, line: usize) -> bool {
        if self.st.halted {
            let at = self
                .halt_line
                .map(|l| format!(" (halted by the collection on line {l})"))
                .unwrap_or_default();
            self.fail(
                line,
                "halted",
                format!("the VM refuses further work after a halt-reaction violation{at}"),
            );
            return false;
        }
        true
    }

    /// Mirror of `Vm::check_instrumented`: assertions are rejected in
    /// base mode.
    fn check_instrumented(&mut self, line: usize) -> bool {
        if self.st.config.base_mode {
            self.fail(
                line,
                "base-mode",
                "assertions are disabled in base mode (`config mode base`)".to_owned(),
            );
            return false;
        }
        true
    }

    // ------------------------------------------------------------------
    // Lints
    // ------------------------------------------------------------------

    /// Warn when a command keeps using an object already asserted dead —
    /// rooting or storing it pins it and defeats the assertion.
    fn lint_use_after_dead(&mut self, line: usize, obj: ObjId, how: &str) {
        if self.st.objects[obj].dead && self.st.objects[obj].alive {
            let dead_at = self.st.objects[obj].dead_line;
            let desc = self.st.describe(obj);
            let at = dead_at.map(|l| format!(" at line {l}")).unwrap_or_default();
            self.warn(
                line,
                "use-after-assert-dead",
                format!("{how} {desc}, which was asserted dead{at} — this keeps it reachable"),
            );
        }
    }

    /// Warn at the command that gives an `assert-unshared` object a
    /// second incoming reference — the violation is then already in the
    /// heap, collections or not.
    fn lint_unshared_stores(&mut self, line: usize, obj: ObjId) {
        if !self.st.objects[obj].unshared || !self.st.objects[obj].alive {
            return;
        }
        let incoming = self.st.incoming(obj);
        if incoming >= 2 {
            let desc = self.st.describe(obj);
            let asserted = self.st.objects[obj].unshared_line;
            let at = asserted
                .map(|l| format!(" (asserted unshared at line {l})"))
                .unwrap_or_default();
            self.warn(
                line,
                "unshared-with-two-stores",
                format!("{desc} now has {incoming} incoming references{at}"),
            );
        }
    }

    // ------------------------------------------------------------------
    // Collections and verdicts
    // ------------------------------------------------------------------

    fn render_path(&self, path: &[PathStep]) -> Option<String> {
        if path.is_empty() {
            return None;
        }
        let mut out = String::from("path: ");
        let mut prev_class: Option<usize> = None;
        for (i, step) in path.iter().enumerate() {
            if i > 0 {
                let field = match (prev_class, step.field) {
                    (Some(c), Some(f)) => self.st.classes[c].fields[f].clone(),
                    _ => "?".to_owned(),
                };
                out.push_str(&format!(" -.{field}-> "));
            }
            out.push_str(&self.st.describe(step.obj));
            prev_class = Some(self.st.objects[step.obj].class);
        }
        Some(out)
    }

    /// Turns one predicted violation into a diagnostic at the
    /// collection's line.  `may` selects warning severity and hedged
    /// wording.
    fn violation_diag(&mut self, line: usize, v: &PredViolation, may: bool) {
        let (severity, verb) = if may {
            (Severity::Warning, "may")
        } else {
            (Severity::Error, "must")
        };
        let mut notes = Vec::new();
        if let Some(p) = self.render_path(&v.path) {
            notes.push(p);
        }
        let message = match (v.kind, v.obj) {
            (PredKind::DeadReachable, Some(obj)) => {
                let desc = self.st.describe(obj);
                let at = self.st.objects[obj]
                    .dead_line
                    .map(|l| format!(" (line {l})"))
                    .unwrap_or_default();
                if let Some(r) = self.st.rooted_at(obj) {
                    notes.push(format!(
                        "dead but still rooted: the object is in the root set (rooted at line {r})"
                    ));
                }
                if let Some(s) = self.st.objects[obj].region_site {
                    notes.push(format!("allocated inside the region begun at line {s}"));
                }
                format!(
                    "{desc} was asserted dead{at} but {verb} still be reachable at this collection"
                )
            }
            (PredKind::Shared, Some(obj)) => {
                let desc = self.st.describe(obj);
                let at = self.st.objects[obj]
                    .unshared_line
                    .map(|l| format!(" (line {l})"))
                    .unwrap_or_default();
                format!("{desc} was asserted unshared{at} but {verb} be reachable through more than one reference")
            }
            (PredKind::NotOwned, Some(obj)) => {
                let desc = self.st.describe(obj);
                format!("{desc} {verb} be reachable without passing through its owner at this collection")
            }
            (PredKind::ImproperOwnership, Some(obj)) => {
                let desc = self.st.describe(obj);
                format!("{desc} {verb} be reached while scanning another owner's region (ownership regions must be disjoint)")
            }
            (PredKind::OwneeOutlivedOwner, Some(obj)) => {
                let desc = self.st.describe(obj);
                format!("{desc} {verb} outlive its owner, which this collection reclaims")
            }
            (PredKind::InstanceLimit, _) => {
                // The summary carries class, count and limit; re-derive
                // the asserting line for provenance.
                let detail = v.summary.trim_start_matches("instance-limit ").to_owned();
                let lline = self
                    .st
                    .classes
                    .iter()
                    .find(|c| detail.starts_with(&format!("{} ", c.name)))
                    .and_then(|c| c.limit)
                    .map(|l| format!(" (asserted line {})", l.line))
                    .unwrap_or_default();
                format!("instance limit {verb} be exceeded: {detail}{lline}")
            }
            // Kinds above always carry an object; this arm is
            // unreachable but keeps the match total.
            (_, None) => v.summary.clone(),
        };
        let code = match v.kind {
            PredKind::DeadReachable => "dead-reachable",
            PredKind::Shared => "unshared-violated",
            PredKind::InstanceLimit => "instance-limit",
            PredKind::NotOwned => "not-owned",
            PredKind::ImproperOwnership => "improper-ownership",
            PredKind::OwneeOutlivedOwner => "ownee-outlived-owner",
        };
        if severity != Severity::Error
            && (self.quiet > 0 || !self.seen_advisory.insert((line, code, message.clone())))
        {
            return;
        }
        let column = self.col(line);
        self.diagnostics.push(Diagnostic {
            line,
            column,
            severity,
            code,
            message,
            notes,
        });
    }

    /// Records one major cycle: diagnostics for its violations plus the
    /// must/may split for the differential harness.
    fn record_major(&mut self, line: usize, explicit: bool, outcome: CycleOutcome) {
        // The humility rule: a cycle that began with live ownership
        // entries gets every verdict downgraded to may, and exactness —
        // which gates expectation predictions — is gone for the rest of
        // the script.
        let may = outcome.ownership_active;
        if may {
            self.st.exact = false;
        }
        if self.st.halted && self.halt_line.is_none() {
            self.halt_line = Some(line);
        }
        self.mark_dead_outcomes(&outcome.violations);
        let mut must_summaries = Vec::new();
        let mut may_summaries = Vec::new();
        for v in &outcome.violations {
            self.violation_diag(line, v, may);
            if may {
                may_summaries.push(v.summary.clone());
            } else {
                must_summaries.push(v.summary.clone());
            }
        }
        if explicit {
            self.st.last_report = outcome.violations.clone();
        }
        self.st.violation_log.extend(outcome.violations);
        self.collections.push(GcPrediction {
            line,
            explicit,
            minor: false,
            must: must_summaries,
            may: may_summaries,
            summarized: false,
        });
    }

    /// Records one *summary* cycle (a collection inside or after a
    /// summarized block): every verdict is may, the must-set is empty by
    /// construction, and the prediction stands for all dynamic
    /// executions of this line.
    fn record_summary(&mut self, line: usize, explicit: bool, outcome: CycleOutcome) {
        self.st.exact = false;
        self.mark_dead_outcomes(&outcome.violations);
        let mut may_summaries = Vec::new();
        for v in &outcome.violations {
            self.violation_diag(line, v, true);
            may_summaries.push(v.summary.clone());
        }
        if explicit {
            self.st.last_report = outcome.violations.clone();
        }
        self.st.violation_log.extend(outcome.violations);
        self.collections.push(GcPrediction {
            line,
            explicit,
            minor: false,
            must: Vec::new(),
            may: may_summaries,
            summarized: true,
        });
    }

    fn record_minor(&mut self, line: usize, violations: Vec<PredViolation>, summarized: bool) {
        // Minors check no assertions; only strict-owner-lifetime
        // retirements can report, and those are ownership territory —
        // always may.
        if !self.st.ownership.is_empty() || !violations.is_empty() || summarized {
            self.st.exact = false;
        }
        self.mark_dead_outcomes(&violations);
        let mut may_summaries = Vec::new();
        for v in &violations {
            self.violation_diag(line, v, true);
            may_summaries.push(v.summary.clone());
        }
        self.st.violation_log.extend(violations);
        self.collections.push(GcPrediction {
            line,
            explicit: false,
            minor: true,
            must: Vec::new(),
            may: may_summaries,
            summarized,
        });
    }

    fn record_auto(&mut self, line: usize, events: Vec<Collection>) {
        for ev in events {
            match ev {
                Collection::Major(outcome) => self.record_major(line, false, outcome),
                Collection::Minor(violations) => self.record_minor(line, violations, false),
            }
        }
    }

    // ------------------------------------------------------------------
    // Redundancy lint bookkeeping
    // ------------------------------------------------------------------

    /// Before a collection runs: every live object carrying a registered
    /// `assert-dead` is about to be examined.
    fn pre_collect_dead_watch(&mut self) {
        for o in &self.st.objects {
            if o.alive && o.dead {
                if let Some(l) = o.dead_line {
                    if let Some(e) = self.dead_asserts.get_mut(&l) {
                        e.checked = true;
                    }
                }
            }
        }
    }

    /// After a collection: any dead-reachable verdict (must *or* may,
    /// quiet rounds included) disqualifies its assertion site from the
    /// `redundant-assert-dead` note.
    fn mark_dead_outcomes(&mut self, violations: &[PredViolation]) {
        for v in violations {
            if v.kind != PredKind::DeadReachable {
                continue;
            }
            if let Some(obj) = v.obj {
                if let Some(l) = self.st.objects[obj].dead_line {
                    if let Some(e) = self.dead_asserts.get_mut(&l) {
                        e.nonsafe = true;
                    }
                }
            }
        }
    }

    /// Live instances of `class` reachable from the roots right now
    /// (mirror of `Vm::probe_instances`).
    fn reachable_instances(&self, class: usize) -> u32 {
        let mut seen = vec![false; self.st.objects.len()];
        let mut stack = self.st.gather_roots();
        let mut n = 0;
        while let Some(o) = stack.pop() {
            if seen[o] {
                continue;
            }
            seen[o] = true;
            if self.st.objects[o].class == class {
                n += 1;
            }
            for f in self.st.objects[o].fields.iter().flatten() {
                stack.push(*f);
            }
        }
        n
    }

    // ------------------------------------------------------------------
    // Structured control: record/replay, exact unrolling, fixpoints
    // ------------------------------------------------------------------

    /// Collections route through the summary collector once any block
    /// has been summarized — runtime flag state (report-once
    /// suppression) diverges after the first summarized iteration, so
    /// the exact replay cycle would no longer mirror the VM.
    fn use_summary(&self) -> bool {
        self.summarizing > 0 || self.st.summarized_ever
    }

    /// Top-level dispatch, mirroring the interpreter's streaming
    /// recorder: while a block is open, commands buffer; structured
    /// commands open/close blocks; everything else interprets directly.
    fn execute(&mut self, line: usize, cmd: &Command) {
        if self.recording.is_some() {
            self.record(line, cmd);
            return;
        }
        match cmd {
            Command::Repeat(count) => {
                self.recording = Some(Recording {
                    kind: BlockKind::Repeat { count: *count },
                    line,
                    open: Vec::new(),
                    body: Vec::new(),
                });
            }
            Command::Proc(name) => {
                self.recording = Some(Recording {
                    kind: BlockKind::Proc { name: name.clone() },
                    line,
                    open: Vec::new(),
                    body: Vec::new(),
                });
            }
            Command::EndRepeat => self.fail(
                line,
                "block-structure",
                "`end-repeat` without an open `repeat`".to_owned(),
            ),
            Command::EndProc => self.fail(
                line,
                "block-structure",
                "`end-proc` without an open `proc`".to_owned(),
            ),
            Command::Call(name) => {
                let name = name.clone();
                self.run_call(line, &name);
            }
            _ => self.execute_one(line, cmd),
        }
    }

    /// Buffers one command into the open recording, tracking nested
    /// block structure; the matching closer replays or stores the body.
    fn record(&mut self, line: usize, cmd: &Command) {
        let closes_repeat = match cmd {
            Command::EndRepeat => true,
            Command::EndProc => false,
            _ => {
                let rec = self.recording.as_mut().expect("recording is open");
                match cmd {
                    Command::Repeat(_) => rec.open.push(true),
                    Command::Proc(_) => rec.open.push(false),
                    _ => {}
                }
                rec.body.push((line, cmd.clone()));
                return;
            }
        };
        let rec = self.recording.as_mut().expect("recording is open");
        if let Some(opener_is_repeat) = rec.open.pop() {
            if opener_is_repeat == closes_repeat {
                rec.body.push((line, cmd.clone()));
            } else {
                self.block_mismatch(line, closes_repeat);
            }
            return;
        }
        let kind_is_repeat = matches!(rec.kind, BlockKind::Repeat { .. });
        if kind_is_repeat != closes_repeat {
            self.block_mismatch(line, closes_repeat);
            return;
        }
        let rec = self.recording.take().expect("checked above");
        match rec.kind {
            BlockKind::Repeat { count } => self.run_repeat(count, &rec.body),
            BlockKind::Proc { name } => {
                self.procs.insert(name, rec.body);
            }
        }
    }

    fn block_mismatch(&mut self, line: usize, closes_repeat: bool) {
        let msg = if closes_repeat {
            "`end-repeat` cannot close a `proc` (use `end-proc`)"
        } else {
            "`end-proc` cannot close a `repeat` (use `end-repeat`)"
        };
        self.fail(line, "block-structure", msg.to_owned());
    }

    /// One `call`: exact depth-bounded replay under the access-graph
    /// domain (mirroring the runtime), a blind summarized pass under
    /// per-site.
    fn run_call(&mut self, line: usize, name: &str) {
        let Some(body) = self.procs.get(name).cloned() else {
            self.fail(
                line,
                "unknown-proc",
                format!("call of undefined proc `{name}` (define it with `proc {name}` first)"),
            );
            return;
        };
        if self.call_depth >= self.call_limit {
            // The runtime treats a call at the depth bound as a no-op.
            return;
        }
        if self.call_depth == 0 && self.summarizing == 0 {
            self.replay_work = 0;
        }
        match self.domain {
            DomainKind::AccessGraph => {
                self.call_depth += 1;
                for (l, c) in &body {
                    self.replay_work += 1;
                    if self.replay_work > REPLAY_WORK_LIMIT {
                        // Multi-call recursion can be exponential in the
                        // depth bound; past the work cap the heap may be
                        // missing edges, so go blind instead.
                        self.st.exact = false;
                        self.st.summarized_ever = true;
                        self.st.occupancy_unknown = true;
                        self.st.havoc = true;
                        break;
                    }
                    self.execute(*l, c);
                    if self.stopped {
                        break;
                    }
                }
                self.call_depth -= 1;
            }
            DomainKind::PerSite => {
                // The strawman never replays: one blind summarized pass
                // per call level.
                self.st.exact = false;
                self.st.summarized_ever = true;
                self.st.occupancy_unknown = true;
                self.st.graph_blind = true;
                self.summarizing += 1;
                self.call_depth += 1;
                for (l, c) in &body {
                    self.execute(*l, c);
                    if self.stopped {
                        break;
                    }
                }
                self.call_depth -= 1;
                self.summarizing -= 1;
            }
        }
    }

    /// One `repeat`: small bodies unroll exactly (keeping Must/Safe
    /// precision), large ones run to a summarized fixpoint.
    fn run_repeat(&mut self, count: usize, body: &[(usize, Command)]) {
        self.lint_loop_invariant(body);
        if count == 0 || self.stopped {
            return;
        }
        let cost = count.saturating_mul(body.len());
        if self.domain == DomainKind::AccessGraph && cost <= UNROLL_LIMIT {
            for _ in 0..count {
                for (l, c) in body {
                    self.execute(*l, c);
                    if self.stopped {
                        return;
                    }
                }
            }
        } else {
            self.summarize_block(body);
        }
    }

    /// Widening for a large block: allocations collapse onto per-site
    /// summary nodes with weak (accumulate-only) field edges, quiet
    /// rounds replay the body until the abstract state stops changing,
    /// then one loud round emits diagnostics and summarized predictions.
    /// Monotone by construction (summary edges only grow, variables
    /// converge in a branch-free language); non-convergence within
    /// [`MAX_ROUNDS`] trips [`domain::AbsState::havoc`], which blinds
    /// every later collection instead of risking a false Safe.
    fn summarize_block(&mut self, body: &[(usize, Command)]) {
        self.st.exact = false;
        self.st.summarized_ever = true;
        self.st.occupancy_unknown = true;
        if self.domain == DomainKind::PerSite {
            self.st.graph_blind = true;
        }
        self.summarizing += 1;
        self.quiet += 1;
        let mut converged = false;
        for _ in 0..MAX_ROUNDS {
            let before = self.fingerprint();
            for (l, c) in body {
                self.execute(*l, c);
                if self.stopped {
                    break;
                }
            }
            if self.stopped {
                break;
            }
            if self.fingerprint() == before {
                converged = true;
                break;
            }
        }
        self.quiet -= 1;
        if self.stopped {
            self.summarizing -= 1;
            return;
        }
        if !converged {
            self.st.havoc = true;
        }
        for (l, c) in body {
            self.execute(*l, c);
            if self.stopped {
                break;
            }
        }
        self.summarizing -= 1;
    }

    /// A stable digest of everything the abstract collections can
    /// observe — the fixpoint termination test.
    fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        let mut vars: Vec<(&String, &ObjId)> = self.st.vars.iter().collect();
        vars.sort();
        format!("{vars:?}").hash(&mut h);
        for o in &self.st.objects {
            format!(
                "{} {} {} {} {} {} {} {} {} {:?} {:?}",
                o.alive,
                o.dead,
                o.unshared,
                o.summary,
                o.ownee,
                o.owner,
                o.old,
                o.region,
                o.mark,
                o.fields,
                o.summary_edges,
            )
            .hash(&mut h);
        }
        format!(
            "{:?} {:?} {:?} {:?} {:?} {} {:?} {} {:?}",
            self.st.roots,
            self.st.globals,
            self.st.region_queue,
            self.st.young,
            self.st.remembered,
            self.st.region_open,
            self.st.frames,
            self.st.minors_since_major,
            self.st.ownership,
        )
        .hash(&mut h);
        h.finish()
    }

    /// The `loop-invariant-assertion` note: an assertion inside a
    /// `repeat` whose subject is never rebound in the body registers the
    /// same object (or class limit) on every iteration.
    fn lint_loop_invariant(&mut self, body: &[(usize, Command)]) {
        if self.quiet > 0 {
            return;
        }
        let mut rebound: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for (_, c) in body {
            match c {
                Command::New { var, .. } => {
                    rebound.insert(var);
                }
                Command::Copy { dst, .. } => {
                    rebound.insert(dst);
                }
                _ => {}
            }
        }
        let mut notes = Vec::new();
        for (l, c) in body {
            let invariant = match c {
                Command::AssertDead(v) | Command::AssertUnshared(v) => {
                    !rebound.contains(v.as_str())
                }
                Command::AssertInstances { .. } => true,
                _ => false,
            };
            if invariant && self.linted_invariant.insert(*l) {
                notes.push(*l);
            }
        }
        for l in notes {
            self.diag(
                l,
                Severity::Note,
                "loop-invariant-assertion",
                "this assertion registers the same target on every iteration — hoist it out of the loop".to_owned(),
            );
        }
    }

    /// End-of-script bookkeeping: unclosed blocks fail exactly like the
    /// interpreter, and `assert-dead` sites that stayed Safe at every
    /// collection that examined them earn the redundancy note.
    fn finish_analysis(&mut self) {
        if self.stopped {
            return;
        }
        if let Some(rec) = self.recording.take() {
            let msg = match &rec.kind {
                BlockKind::Repeat { .. } => {
                    "`repeat` opened here is never closed by `end-repeat`".to_owned()
                }
                BlockKind::Proc { name } => {
                    format!("`proc {name}` opened here is never closed by `end-proc`")
                }
            };
            self.fail(rec.line, "block-structure", msg);
            return;
        }
        let safe_sites: Vec<usize> = self
            .dead_asserts
            .iter()
            .filter(|(_, e)| e.checked && !e.nonsafe)
            .map(|(l, _)| *l)
            .collect();
        for l in safe_sites {
            self.diag(
                l,
                Severity::Note,
                "redundant-assert-dead",
                "this `assert-dead` is proven Safe at every collection that examines it — the assertion can be removed".to_owned(),
            );
        }
    }

    // ------------------------------------------------------------------
    // The forward interpretation
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn execute_one(&mut self, line: usize, cmd: &Command) {
        match cmd {
            Command::Config { key, value } => self.exec_config(line, key, value),
            Command::Class { name, fields } => {
                self.st.started = true;
                if self.st.class_by_name.contains_key(name.as_str()) {
                    self.warn(
                        line,
                        "class-redeclared",
                        format!("class `{name}` is declared again; earlier objects keep the old declaration"),
                    );
                }
                let idx = self.st.classes.len();
                self.st.classes.push(AbsClass {
                    name: name.clone(),
                    fields: fields.clone(),
                    limit: None,
                    gc_count: 0,
                });
                self.st.class_by_name.insert(name.clone(), idx);
            }
            Command::New {
                var,
                class,
                data_words,
            } => {
                self.st.started = true;
                let Some(cls) = self.class(line, class) else {
                    return;
                };
                if !self.check_running(line) {
                    return;
                }
                let nrefs = self.st.classes[cls].fields.len();
                if self.summarizing > 0 {
                    // Inside a summarized block one node per site line
                    // stands for every allocation the site performs;
                    // re-executing the site revives and reuses it.
                    let id = match self.st.summary_by_line.get(&line) {
                        Some(&id) if self.st.objects[id].class == cls => id,
                        _ => {
                            let id = self.st.objects.len();
                            self.st.objects.push(AbsObj {
                                class: cls,
                                site_var: var.clone(),
                                site_line: line,
                                fields: vec![None; nrefs],
                                size_words: *data_words,
                                alive: true,
                                dead: false,
                                dead_line: None,
                                unshared: false,
                                unshared_line: None,
                                ownee: false,
                                owner: false,
                                reported: false,
                                old: false,
                                remembered: false,
                                mark: false,
                                owned: false,
                                region: false,
                                region_site: None,
                                summary: true,
                                summary_edges: Vec::new(),
                            });
                            self.st.summary_by_line.insert(line, id);
                            id
                        }
                    };
                    self.st.objects[id].alive = true;
                    if self.st.region_open {
                        self.st.objects[id].region = true;
                        if self.st.objects[id].region_site.is_none() {
                            self.st.objects[id].region_site = Some(self.st.region_line);
                        }
                        if !self.st.region_queue.contains(&id) {
                            self.st.region_queue.push(id);
                        }
                    }
                    if self.st.config.generational.is_some()
                        && !self.st.objects[id].old
                        && !self.st.young.contains(&id)
                    {
                        self.st.young.push(id);
                    }
                    self.st.vars.insert(var.clone(), id);
                    return;
                }
                let size = domain::HEADER_WORDS + nrefs + *data_words;
                // Once a summarized loop has run, total allocation is
                // unknown and implicit-collection/OOM prediction is off.
                if !self.st.occupancy_unknown
                    && self.st.occupied + size > self.st.config.heap_budget
                {
                    self.pre_collect_dead_watch();
                    let events = collect::collect_auto(&mut self.st);
                    self.record_auto(line, events);
                    if !self.check_running(line) {
                        return;
                    }
                    if self.st.occupied + size > self.st.config.heap_budget {
                        if self.st.config.grow {
                            self.st.config.heap_budget =
                                (self.st.config.heap_budget * 2).max(self.st.occupied + size);
                        } else {
                            self.fail(
                                line,
                                "out-of-memory",
                                format!(
                                    "allocation of {size} words cannot fit: {} of {} words occupied even after collecting, and growth is off",
                                    self.st.occupied, self.st.config.heap_budget
                                ),
                            );
                            return;
                        }
                    }
                }
                let id = self.st.objects.len();
                self.st.objects.push(AbsObj {
                    class: cls,
                    site_var: var.clone(),
                    site_line: line,
                    fields: vec![None; nrefs],
                    size_words: *data_words,
                    alive: true,
                    dead: false,
                    dead_line: None,
                    unshared: false,
                    unshared_line: None,
                    ownee: false,
                    owner: false,
                    reported: false,
                    old: false,
                    remembered: false,
                    mark: false,
                    owned: false,
                    region: self.st.region_open,
                    region_site: self.st.region_open.then_some(self.st.region_line),
                    summary: false,
                    summary_edges: Vec::new(),
                });
                self.st.occupied += size;
                if self.st.config.generational.is_some() {
                    self.st.young.push(id);
                }
                if self.st.region_open {
                    self.st.region_queue.push(id);
                }
                self.st.vars.insert(var.clone(), id);
            }
            Command::Set { var, field, value } => {
                self.st.started = true;
                let Some(recv) = self.live_var(line, var) else {
                    return;
                };
                if !self.check_running(line) {
                    return;
                }
                let cls = self.st.objects[recv].class;
                // The interpreter resolves the field against the *current*
                // declaration of the class name; a redeclaration orphans
                // older objects.
                if self.st.class_by_name.get(&self.st.classes[cls].name) != Some(&cls) {
                    self.fail(
                        line,
                        "unknown-class",
                        format!(
                            "`{var}`'s class `{}` was redeclared; its old declaration is no longer known to the interpreter",
                            self.st.classes[cls].name
                        ),
                    );
                    return;
                }
                let Some(idx) = self.st.classes[cls].fields.iter().position(|f| f == field) else {
                    self.fail(
                        line,
                        "unknown-field",
                        format!(
                            "class `{}` has no field `{field}`",
                            self.st.classes[cls].name
                        ),
                    );
                    return;
                };
                let val = match value {
                    Target::Null => None,
                    Target::Var(v) => match self.live_var(line, v) {
                        Some(o) => Some(o),
                        None => return,
                    },
                };
                // Generational write barrier mirror.
                if let Some(v) = val {
                    if self.st.config.generational.is_some()
                        && self.st.objects[recv].old
                        && !self.st.objects[recv].remembered
                        && !self.st.objects[v].old
                    {
                        self.st.objects[recv].remembered = true;
                        self.st.remembered.push(recv);
                    }
                }
                // Stores into a summary node are weak updates: the old
                // value survives as an accumulate-only summary edge,
                // because some concretization of the node still holds it.
                if self.st.objects[recv].summary {
                    if let Some(old) = self.st.objects[recv].fields[idx] {
                        if Some(old) != val
                            && !self.st.objects[recv].summary_edges.contains(&(idx, old))
                        {
                            self.st.objects[recv].summary_edges.push((idx, old));
                        }
                    }
                }
                self.st.objects[recv].fields[idx] = val;
                if let Some(v) = val {
                    self.lint_use_after_dead(line, v, "storing a reference to");
                    self.lint_unshared_stores(line, v);
                    // Region escape: a region allocation stored into an
                    // object outside the region outlives `all-dead`'s
                    // intent.
                    if self.st.objects[v].region && !self.st.objects[recv].region {
                        let desc = self.st.describe(v);
                        let site = self.st.objects[v].region_site;
                        let at = site
                            .map(|l| format!(" (region begun at line {l})"))
                            .unwrap_or_default();
                        self.warn(
                            line,
                            "region-escape",
                            format!(
                                "{desc} was allocated in the active region{at} but escapes into `{var}`, which is outside it"
                            ),
                        );
                    }
                }
            }
            Command::Data { var, index, value } => {
                let _ = value;
                self.st.started = true;
                let Some(obj) = self.live_var(line, var) else {
                    return;
                };
                if !self.check_running(line) {
                    return;
                }
                if *index >= self.st.objects[obj].size_words {
                    self.fail(
                        line,
                        "data-bounds",
                        format!(
                            "data index {index} out of bounds: {} has {} data word(s)",
                            self.st.describe(obj),
                            self.st.objects[obj].size_words
                        ),
                    );
                    return;
                }
                self.lint_use_after_dead(line, obj, "writing a data word of");
            }
            Command::Root(var) => {
                self.st.started = true;
                let Some(obj) = self.live_var(line, var) else {
                    return;
                };
                // Under summarization re-rooting dedupes so the
                // fixpoint converges (root *multiplicity* is advisory).
                if self.summarizing == 0 || !self.st.roots.contains(&(obj, line)) {
                    self.st.roots.push((obj, line));
                }
                self.lint_use_after_dead(line, obj, "rooting");
                self.lint_unshared_stores(line, obj);
            }
            Command::Frame => {
                self.st.started = true;
                let mark = self.st.roots.len();
                self.st.frames.push(mark);
            }
            Command::EndFrame => {
                self.st.started = true;
                if self.st.frames.len() <= 1 {
                    self.fail(
                        line,
                        "no-frame",
                        "`end-frame` with only the base frame on the stack".to_owned(),
                    );
                    return;
                }
                let base = self.st.frames.pop().expect("checked length");
                self.st.roots.truncate(base);
            }
            Command::Global(var) => {
                self.st.started = true;
                let Some(obj) = self.live_var(line, var) else {
                    return;
                };
                if self.summarizing == 0 || !self.st.globals.contains(&(obj, line)) {
                    self.st.globals.push((obj, line));
                }
                self.lint_use_after_dead(line, obj, "making a global of");
                self.lint_unshared_stores(line, obj);
            }
            Command::Unglobal(var) => {
                self.st.started = true;
                let Some(obj) = self.var(line, var) else {
                    return;
                };
                match self.st.globals.iter().position(|(g, _)| *g == obj) {
                    Some(i) => {
                        self.st.globals.swap_remove(i);
                    }
                    None => {
                        self.fail(
                            line,
                            "global-not-found",
                            format!("`{var}` is not a global root"),
                        );
                    }
                }
            }
            Command::AssertDead(var) => {
                self.st.started = true;
                let Some(obj) = self.live_var(line, var) else {
                    return;
                };
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                self.st.objects[obj].dead = true;
                self.st.objects[obj].dead_line = Some(line);
                self.dead_asserts.entry(line).or_default();
            }
            Command::AssertUnshared(var) => {
                self.st.started = true;
                let Some(obj) = self.live_var(line, var) else {
                    return;
                };
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                self.st.objects[obj].unshared = true;
                self.st.objects[obj].unshared_line = Some(line);
                self.lint_unshared_stores(line, obj);
            }
            Command::AssertInstances { class, limit } => {
                self.st.started = true;
                let Some(cls) = self.class(line, class) else {
                    return;
                };
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                self.st.classes[cls].limit = Some(InstanceLimit {
                    limit: *limit,
                    line,
                });
            }
            Command::AssertOwnedBy { owner, ownee } => {
                self.st.started = true;
                let Some(o) = self.live_var(line, owner) else {
                    return;
                };
                let Some(e) = self.live_var(line, ownee) else {
                    return;
                };
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                self.assert_owned_by(line, o, e);
            }
            Command::ReleaseOwnee(var) => {
                self.st.started = true;
                let Some(obj) = self.var(line, var) else {
                    return;
                };
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                for entry in &mut self.st.ownership {
                    entry.ownees.retain(|&o| o != obj);
                }
                if self.st.objects[obj].alive {
                    self.st.objects[obj].ownee = false;
                }
            }
            Command::StartRegion => {
                self.st.started = true;
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                if self.st.region_open {
                    self.fail(
                        line,
                        "region-active",
                        format!(
                            "a region is already active (begun at line {}); regions do not nest",
                            self.st.region_line
                        ),
                    );
                    return;
                }
                self.st.region_open = true;
                self.st.region_line = line;
                self.st.region_queue.clear();
            }
            Command::AllDead => {
                self.st.started = true;
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                if !self.st.region_open {
                    self.fail(
                        line,
                        "no-region",
                        "`all-dead` without an active region".to_owned(),
                    );
                    return;
                }
                let queue = std::mem::take(&mut self.st.region_queue);
                for obj in queue {
                    self.st.objects[obj].region = false;
                    if self.st.objects[obj].alive {
                        self.st.objects[obj].dead = true;
                        self.st.objects[obj].dead_line = Some(line);
                    }
                }
                self.st.region_open = false;
            }
            Command::Gc => {
                self.st.started = true;
                self.pre_collect_dead_watch();
                if self.use_summary() {
                    let outcome = summary::collect_summary(&mut self.st);
                    if self.quiet > 0 {
                        // Quiet fixpoint rounds converge silently, but
                        // verdict history still feeds the lints.
                        self.mark_dead_outcomes(&outcome.violations);
                    } else {
                        self.record_summary(line, true, outcome);
                    }
                } else {
                    let outcome = collect::collect_major(&mut self.st);
                    self.record_major(line, true, outcome);
                }
            }
            Command::MinorGc => {
                self.st.started = true;
                if !self.check_running(line) {
                    return;
                }
                if self.use_summary() {
                    let violations = summary::collect_minor_summary(&mut self.st);
                    if self.quiet == 0 {
                        self.record_minor(line, violations, true);
                    }
                } else {
                    let violations = collect::collect_minor(&mut self.st);
                    self.record_minor(line, violations, false);
                }
            }
            Command::Probe(var) => {
                self.st.started = true;
                if self.var(line, var).is_none() {
                    return;
                }
                if !self.check_running(line) {
                    #[allow(clippy::needless_return)]
                    return;
                }
            }
            Command::Print => {
                // Reads the last report; does not start the VM.
            }
            Command::Histogram | Command::Stats => {
                self.st.started = true;
            }
            Command::ExpectViolations(n) => {
                // Does not start the VM; reads the last explicit report.
                if self.st.exact {
                    let got = self.st.last_report.len();
                    if got != *n {
                        self.fail(
                            line,
                            "expect-will-fail",
                            format!(
                                "this expectation will fail: it expects {n} violation(s) in the last gc, but the analyzer predicts {got}"
                            ),
                        );
                    }
                }
            }
            Command::ExpectTotalViolations(n) => {
                self.st.started = true;
                if self.st.exact {
                    let got = self.st.violation_log.len();
                    if got != *n {
                        self.fail(
                            line,
                            "expect-will-fail",
                            format!(
                                "this expectation will fail: it expects {n} total violation(s), but the analyzer predicts {got}"
                            ),
                        );
                    }
                }
            }
            Command::ExpectLive(var) => {
                self.st.started = true;
                let Some(obj) = self.var(line, var) else {
                    return;
                };
                if self.st.exact && !self.st.objects[obj].alive {
                    self.fail(
                        line,
                        "expect-will-fail",
                        format!(
                            "this expectation will fail: {} is reclaimed by then",
                            self.st.describe(obj)
                        ),
                    );
                }
            }
            Command::ExpectDead(var) => {
                self.st.started = true;
                let Some(obj) = self.var(line, var) else {
                    return;
                };
                if self.st.exact && self.st.objects[obj].alive {
                    self.fail(
                        line,
                        "expect-will-fail",
                        format!(
                            "this expectation will fail: {} is still live by then",
                            self.st.describe(obj)
                        ),
                    );
                }
            }
            Command::ExpectInstances { class, count } => {
                self.st.started = true;
                let Some(cls) = self.class(line, class) else {
                    return;
                };
                if !self.check_running(line) {
                    return;
                }
                if self.st.exact {
                    let got = self.reachable_instances(cls);
                    if got != *count {
                        self.fail(
                            line,
                            "expect-will-fail",
                            format!(
                                "this expectation will fail: it expects {count} live `{class}` instance(s), but the analyzer predicts {got}"
                            ),
                        );
                    }
                }
            }
            Command::Copy { dst, src } => {
                self.st.started = true;
                let Some(obj) = self.var(line, src) else {
                    return;
                };
                self.st.vars.insert(dst.clone(), obj);
            }
            Command::Repeat(_)
            | Command::EndRepeat
            | Command::Proc(_)
            | Command::EndProc
            | Command::Call(_) => {
                unreachable!("structured commands are dispatched by `execute`")
            }
        }
    }

    /// Mirror of `OwnershipTable::add`, including its conflict errors.
    fn assert_owned_by(&mut self, line: usize, owner: ObjId, ownee: ObjId) {
        if owner == ownee {
            self.fail(
                line,
                "ownership-conflict",
                format!("{} cannot own itself", self.st.describe(owner)),
            );
            return;
        }
        if self.st.ownership.iter().any(|e| e.owner == ownee) {
            self.fail(
                line,
                "ownership-conflict",
                format!(
                    "{} is already an owner and cannot become an ownee",
                    self.st.describe(ownee)
                ),
            );
            return;
        }
        if self.st.ownership.iter().any(|e| e.ownees.contains(&owner)) {
            self.fail(
                line,
                "ownership-conflict",
                format!(
                    "{} is already an ownee and cannot become an owner",
                    self.st.describe(owner)
                ),
            );
            return;
        }
        // Re-asserting moves the ownee; the same pair is a no-op.
        if let Some(existing) = self
            .st
            .ownership
            .iter()
            .position(|e| e.ownees.contains(&ownee))
        {
            if self.st.ownership[existing].owner == owner {
                return;
            }
            self.st.ownership[existing].ownees.retain(|&o| o != ownee);
        }
        match self.st.ownership.iter().position(|e| e.owner == owner) {
            Some(i) => self.st.ownership[i].ownees.push(ownee),
            None => self.st.ownership.push(OwnerEntry {
                owner,
                ownees: vec![ownee],
            }),
        }
        self.st.objects[owner].owner = true;
        self.st.objects[ownee].ownee = true;
    }

    /// Mirror of the interpreter's `apply_config`, including its
    /// config-after-start gate and key validation.
    fn exec_config(&mut self, line: usize, key: &str, value: &str) {
        if self.st.started {
            self.fail(
                line,
                "config-after-start",
                "`config` must appear before any other command".to_owned(),
            );
            return;
        }
        let cfg = &mut self.st.config;
        let ok = match key {
            "heap" => match value.parse() {
                Ok(v) => {
                    cfg.heap_budget = v;
                    true
                }
                Err(_) => false,
            },
            "grow" => parse_bool(value).map(|v| cfg.grow = v).is_some(),
            "report-once" => parse_bool(value).map(|v| cfg.report_once = v).is_some(),
            "path-tracking" => parse_bool(value).map(|v| cfg.path_tracking = v).is_some(),
            "strict-owner-lifetime" => parse_bool(value)
                .map(|v| cfg.strict_owner_lifetime = v)
                .is_some(),
            "generational" => match value.parse() {
                Ok(_) if cfg.copying => {
                    self.fail(
                        line,
                        "bad-config",
                        "the copying collector is full-heap; it cannot be generational".to_owned(),
                    );
                    return;
                }
                Ok(v) => {
                    cfg.generational = Some(v);
                    true
                }
                Err(_) => false,
            },
            "collector" => match value {
                "mark-sweep" | "marksweep" => {
                    cfg.copying = false;
                    true
                }
                "copying" if cfg.generational.is_some() => {
                    self.fail(
                        line,
                        "bad-config",
                        "the copying collector is full-heap; it cannot be generational".to_owned(),
                    );
                    return;
                }
                "copying" => {
                    cfg.copying = true;
                    true
                }
                _ => false,
            },
            "minor-strategy" => match value {
                "cards" => {
                    cfg.minor_strategy_cards = true;
                    true
                }
                "remembered-set" => {
                    cfg.minor_strategy_cards = false;
                    true
                }
                _ => false,
            },
            "reaction" => match value {
                "log" => {
                    cfg.reaction = Reaction::Log;
                    true
                }
                "halt" => {
                    cfg.reaction = Reaction::Halt;
                    true
                }
                "force-true" => {
                    cfg.reaction = Reaction::ForceTrue;
                    true
                }
                _ => false,
            },
            "mode" => match value {
                "base" => {
                    cfg.base_mode = true;
                    true
                }
                "instrumented" => {
                    cfg.base_mode = false;
                    true
                }
                _ => false,
            },
            // Worker count changes scheduling, never verdicts — the
            // analyzer only validates the value.
            "gc-threads" => value.parse::<usize>().is_ok(),
            "call-depth" => match value.parse::<usize>() {
                Ok(v) => {
                    self.call_limit = v;
                    true
                }
                Err(_) => false,
            },
            _ => false,
        };
        if !ok {
            self.fail(
                line,
                "bad-config",
                format!("bad config: `{key} {value}` is not a recognized setting"),
            );
        }
    }
}

fn parse_bool(s: &str) -> Option<bool> {
    match s {
        "on" | "true" | "yes" => Some(true),
        "off" | "false" | "no" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn errors(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.code)
            .collect()
    }

    fn warnings(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_script_has_no_diagnostics() {
        let a = analyze("class T\nnew a T\nroot a\ngc\nexpect-violations 0\n").unwrap();
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert_eq!(a.collections.len(), 1);
        assert!(a.collections[0].must.is_empty());
        assert!(!a.has_errors());
    }

    #[test]
    fn dead_but_rooted_is_a_must_with_provenance() {
        let a = analyze("class T\nnew a T\nroot a\nassert-dead a\ngc\n").unwrap();
        assert_eq!(errors(&a), ["dead-reachable"]);
        let d = &a.diagnostics[0];
        assert_eq!(d.line, 5);
        assert!(
            d.notes.iter().any(|n| n.contains("rooted at line 3")),
            "{d:?}"
        );
        assert_eq!(a.collections[0].must, ["dead-reachable T"]);
    }

    #[test]
    fn abstract_path_mirrors_the_heap_route() {
        let a = analyze(
            "class A f\nclass B g\nnew a A\nroot a\nnew b B\nset a.f b\nnew c A\nset b.g c\nassert-dead c\ngc\n",
        )
        .unwrap();
        let d = &a.diagnostics[0];
        let path = d.notes.iter().find(|n| n.starts_with("path: ")).unwrap();
        assert_eq!(
            path,
            "path: a: A (line 3) -.f-> b: B (line 5) -.g-> c: A (line 7)"
        );
    }

    #[test]
    fn use_after_assert_dead_lint_fires() {
        let a =
            analyze("class T f\nnew a T\nroot a\nnew b T\nassert-dead b\nset a.f b\ngc\n").unwrap();
        assert!(
            warnings(&a).contains(&"use-after-assert-dead"),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn unshared_second_store_warns_at_the_store() {
        let a = analyze(
            "class T l r\nnew a T\nroot a\nnew b T\nset a.l b\nassert-unshared b\nset a.r b\ngc\n",
        )
        .unwrap();
        let w: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.code == "unshared-with-two-stores")
            .collect();
        assert_eq!(w.len(), 1, "{:?}", a.diagnostics);
        assert_eq!(w[0].line, 7);
    }

    #[test]
    fn region_escape_warns_before_all_dead() {
        let a = analyze(
            "class Keep f\nclass Tmp\nnew k Keep\nroot k\nstart-region\nnew t Tmp\nset k.f t\nall-dead\ngc\n",
        )
        .unwrap();
        assert!(
            warnings(&a).contains(&"region-escape"),
            "{:?}",
            a.diagnostics
        );
        // And the escape makes all-dead's assertion a must-violation.
        assert!(errors(&a).contains(&"dead-reachable"));
    }

    #[test]
    fn ownership_predictions_are_may_not_must() {
        let a = analyze(
            "class C e\nclass E\nnew c C\nroot c\nnew x E\nroot x\nassert-owned-by c x\ngc\n",
        )
        .unwrap();
        // x is rooted but not reachable through c — the runtime will
        // report not-owned, but the analyzer only claims may.
        assert!(errors(&a).is_empty(), "{:?}", a.diagnostics);
        assert_eq!(warnings(&a), ["not-owned"]);
        assert_eq!(a.collections[0].may, ["not-owned E"]);
        assert!(a.collections[0].must.is_empty());
    }

    #[test]
    fn halt_reaction_latches_and_fails_later_commands() {
        let a =
            analyze("config reaction halt\nclass T\nnew a T\nroot a\nassert-dead a\ngc\nnew b T\n")
                .unwrap();
        assert_eq!(errors(&a), ["dead-reachable", "halted"]);
        assert_eq!(a.diagnostics.last().unwrap().line, 7);
    }

    #[test]
    fn force_true_severs_the_pinning_edge() {
        let a = analyze(
            "config reaction force-true\nclass T f\nnew a T\nroot a\nnew b T\nset a.f b\nassert-dead b\ngc\nexpect-violations 1\ngc\nexpect-dead b\n",
        )
        .unwrap();
        // First gc reports; the severed edge lets b die at the second,
        // so both expectations are predicted to pass.
        assert_eq!(errors(&a), ["dead-reachable"]);
        assert_eq!(a.collections.len(), 2);
        assert!(a.collections[1].must.is_empty());
    }

    #[test]
    fn report_once_suppresses_the_second_cycle() {
        let a = analyze("class T\nnew a T\nroot a\nassert-dead a\ngc\ngc\n").unwrap();
        assert_eq!(a.collections[0].must, ["dead-reachable T"]);
        assert!(a.collections[1].must.is_empty());
    }

    #[test]
    fn report_every_cycle_when_report_once_off() {
        let a =
            analyze("config report-once off\nclass T\nnew a T\nroot a\nassert-dead a\ngc\ngc\n")
                .unwrap();
        assert_eq!(a.collections[0].must, ["dead-reachable T"]);
        assert_eq!(a.collections[1].must, ["dead-reachable T"]);
    }

    #[test]
    fn failing_expectation_is_predicted() {
        let a = analyze("class T\nnew a T\nroot a\ngc\nexpect-dead a\n").unwrap();
        assert_eq!(errors(&a), ["expect-will-fail"]);
        assert_eq!(a.diagnostics[0].line, 5);
    }

    #[test]
    fn runtime_failures_stop_analysis() {
        let a = analyze("class T\nset ghost.f ghost\nnew a T\n").unwrap();
        assert_eq!(errors(&a), ["unknown-variable"]);
        assert_eq!(a.diagnostics.len(), 1);
    }

    #[test]
    fn implicit_collections_are_recorded() {
        // Budget of 6 words fits one 4-word object (2 header + 2 data);
        // the second allocation must collect first, reclaiming the
        // unrooted first object.
        let a = analyze("config heap 6\nclass T\nnew a T 2\nnew b T 2\nroot b\ngc\n").unwrap();
        assert_eq!(a.collections.len(), 2);
        assert!(!a.collections[0].explicit);
        assert!(a.collections[1].explicit);
        assert!(!a.has_errors(), "{:?}", a.diagnostics);
    }

    #[test]
    fn base_mode_rejects_assertions() {
        let a = analyze("config mode base\nclass T\nnew a T\nassert-dead a\n").unwrap();
        assert_eq!(errors(&a), ["base-mode"]);
    }

    #[test]
    fn minor_gc_quirk_stale_marks_survive_to_the_major() {
        // Without generational mode a minor-gc leaves mark bits set on
        // everything it reaches; the next major sees the asserted-dead
        // object as already marked and reports nothing (visit_marked
        // does not check DEAD) — the analyzer must predict that too.
        let a =
            analyze("class T\nnew a T\nroot a\nassert-dead a\nminor-gc\ngc\nexpect-violations 0\n")
                .unwrap();
        assert!(errors(&a).is_empty(), "{:?}", a.diagnostics);
        assert!(a.collections[1].must.is_empty());
    }

    #[test]
    fn render_summarizes() {
        let a = analyze("class T\nnew a T\nroot a\nassert-dead a\ngc\n").unwrap();
        let r = a.render();
        assert!(r.contains("error[dead-reachable] line 5"), "{r}");
        assert!(r.contains("1 error(s)"), "{r}");
    }

    /// A list built by a large loop, then severed: per-site can only say
    /// May, the access graph proves Safe.
    const LIST_LOOP: &str = "class Head next\nclass Cell next\nnew head Head\nroot head\ncopy prev head\nrepeat 200\nnew cell Cell\nset prev.next cell\ncopy prev cell\nend-repeat\nset head.next null\nassert-dead prev\ngc\nexpect-violations 0\n";

    #[test]
    fn summarized_loop_earns_safe_where_per_site_says_may() {
        let a = analyze(LIST_LOOP).unwrap();
        assert!(errors(&a).is_empty(), "{:?}", a.diagnostics);
        assert!(warnings(&a).is_empty(), "{:?}", a.diagnostics);
        let gc = &a.collections[0];
        assert!(gc.summarized);
        assert!(gc.must.is_empty());
        assert!(gc.may.is_empty());

        let b = analyze_with(LIST_LOOP, DomainKind::PerSite).unwrap();
        assert!(errors(&b).is_empty(), "{:?}", b.diagnostics);
        assert_eq!(warnings(&b), ["dead-reachable"], "{:?}", b.diagnostics);
        assert_eq!(b.collections[0].may, ["dead-reachable Cell"]);
    }

    #[test]
    fn small_loops_unroll_exactly_and_keep_must_verdicts() {
        // 3 iterations x 3 commands is far under the unroll limit, so
        // the dead-but-rooted cell is still a *must*, not a may.
        let a = analyze(
            "class T f\nnew a T\nroot a\nrepeat 3\nnew b T\nset a.f b\nend-repeat\nroot b\nassert-dead b\ngc\n",
        )
        .unwrap();
        assert_eq!(errors(&a), ["dead-reachable"], "{:?}", a.diagnostics);
        assert!(a.collections[0].must == ["dead-reachable T"]);
        assert!(!a.collections[0].summarized);
    }

    #[test]
    fn recursive_procs_replay_exactly() {
        // Depth-bounded recursion allocates exactly `call-depth` nodes;
        // exact replay keeps expectation predictions on.
        let a = analyze(
            "config call-depth 4\nclass T f\nnew top T\nroot top\ncopy cur top\nproc grow\nnew child T\nset cur.f child\ncopy cur child\ncall grow\nend-proc\ncall grow\ngc\nexpect-instances T 5\n",
        )
        .unwrap();
        assert!(errors(&a).is_empty(), "{:?}", a.diagnostics);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn per_site_is_blind_through_procs() {
        let b = analyze_with(
            "class T\nproc make\nnew t T\nend-proc\ncall make\nassert-dead t\ngc\n",
            DomainKind::PerSite,
        )
        .unwrap();
        // t is genuinely unreachable (never rooted), but the blind
        // domain cannot prove it: May, not Safe, and never Must.
        assert!(errors(&b).is_empty(), "{:?}", b.diagnostics);
        assert_eq!(warnings(&b), ["dead-reachable"], "{:?}", b.diagnostics);
    }

    #[test]
    fn block_structure_mismatches_are_errors() {
        let a = analyze("repeat 2\nend-proc\n").unwrap();
        assert_eq!(errors(&a), ["block-structure"]);
        let b = analyze("proc p\nnew a T\n").unwrap();
        assert_eq!(errors(&b), ["block-structure"]);
        let c = analyze("class T\ncall nope\n").unwrap();
        assert_eq!(errors(&c), ["unknown-proc"]);
    }

    #[test]
    fn loop_invariant_assertion_gets_a_note() {
        let a = analyze("class T\nnew a T\nroot a\nrepeat 3\nassert-unshared a\ngc\nend-repeat\n")
            .unwrap();
        let notes: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Note && d.code == "loop-invariant-assertion")
            .collect();
        assert_eq!(notes.len(), 1, "{:?}", a.diagnostics);
        assert_eq!(notes[0].line, 5);
        // Notes never reach the classic transcript.
        assert!(!a.render().contains("loop-invariant"), "{}", a.render());
    }

    #[test]
    fn provably_safe_assert_dead_gets_the_redundancy_note() {
        let a = analyze("class T\nnew a T\nassert-dead a\ngc\n").unwrap();
        let notes: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.code == "redundant-assert-dead")
            .collect();
        assert_eq!(notes.len(), 1, "{:?}", a.diagnostics);
        assert_eq!(notes[0].line, 3);
        assert_eq!(notes[0].severity, Severity::Note);
        // A must-violating assertion never earns the note.
        let b = analyze("class T\nnew a T\nroot a\nassert-dead a\ngc\n").unwrap();
        assert!(
            b.diagnostics
                .iter()
                .all(|d| d.code != "redundant-assert-dead"),
            "{:?}",
            b.diagnostics
        );
    }

    #[test]
    fn summarized_collections_never_promise_must() {
        // Dead-but-rooted *inside* a big loop: the runtime reports it on
        // some iteration, the summary collection may only warn.
        let a = analyze("class T\nrepeat 64\nnew a T\nroot a\nassert-dead a\ngc\nend-repeat\n")
            .unwrap();
        assert!(errors(&a).is_empty(), "{:?}", a.diagnostics);
        for gc in &a.collections {
            assert!(gc.summarized);
            assert!(gc.must.is_empty());
        }
        assert!(
            warnings(&a).contains(&"dead-reachable"),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn unclosed_blocks_fail_like_the_interpreter() {
        let a = analyze("class T\nrepeat 2\nnew a T\n").unwrap();
        assert_eq!(errors(&a), ["block-structure"]);
        assert_eq!(a.diagnostics[0].line, 2);
    }
}
