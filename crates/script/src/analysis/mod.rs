//! Static checking for GCA scripts: `gca check`.
//!
//! The analyzer runs a flow-sensitive forward interpretation over the
//! command stream with an abstract heap — an allocation-site points-to
//! graph tracking variables, ref fields, the root set, region
//! membership, and incoming-edge multiplicity (see [`domain`]).  At each
//! `gc` it replays the collector's mark/sweep cycle abstractly (see
//! [`collect`]) and classifies every registered assertion on the verdict
//! lattice **Safe < May < Must**:
//!
//! * **must-violate** (error): the abstract collection proves the
//!   assertion fires.  Must-verdicts are sound — the differential test
//!   in `tests/check.rs` pins them as a subset of what the interpreter
//!   actually reports.
//! * **may-violate** (warning): plausible on the abstract heap, but the
//!   analyzer declines to promise it.  Concretely, any collection that
//!   begins with a non-empty ownership table downgrades all of its
//!   verdicts to *may* — ownership reachability is where a static model
//!   earns the least trust — and the analyzer's expectation predictions
//!   are disabled from then on.
//! * **safe**: nothing reported.
//!
//! Diagnostics carry 1-based line/column spans and a root-to-object
//! abstract path mirroring the paper's Figure-1 reports, e.g.
//! `occupant: SObject (line 8) -.rep-> fresh_rep: Rep (line 16)`.
//! Advisory lints ride along as warnings: dead-but-still-rooted,
//! unshared-with-two-stores, region allocations escaping before
//! `all-dead`, use-after-`assert-dead`, and class redeclaration.

mod collect;
mod diag;
mod domain;

pub use diag::{Diagnostic, Severity};

use crate::ast::{parse_script, token_column, Command, Target};
use crate::error::ScriptError;

use collect::{Collection, CycleOutcome, PathStep, PredKind, PredViolation};
use domain::{AbsClass, AbsObj, AbsState, InstanceLimit, ObjId, OwnerEntry, Reaction};

/// What the analyzer predicts one collection will report.
#[derive(Debug, Clone)]
pub struct GcPrediction {
    /// 1-based line of the command that triggered the collection.
    pub line: usize,
    /// Triggered by an explicit `gc` command (as opposed to the
    /// allocator or `minor-gc`).
    pub explicit: bool,
    /// A minor (nursery-only) collection.
    pub minor: bool,
    /// Violations certain to be reported, in the runtime's
    /// `Violation::summary()` format.
    pub must: Vec<String>,
    /// Violations possible but not promised (ownership humility).
    pub may: Vec<String>,
}

/// The result of statically checking a script.
#[derive(Debug)]
pub struct Analysis {
    /// All diagnostics, in emission order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-collection verdicts, explicit and implicit, in execution
    /// order.
    pub collections: Vec<GcPrediction>,
}

impl Analysis {
    /// Whether any diagnostic is at error severity (a must-violate
    /// verdict or a predicted runtime failure) — the `gca check` exit-2
    /// condition.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Renders every diagnostic plus a one-line verdict summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        out.push_str(&format!(
            "check: {} collection(s) analyzed, {errors} error(s), {warnings} warning(s)\n",
            self.collections.len()
        ));
        out
    }
}

/// Statically checks `src`, predicting each collection's assertion
/// verdicts without running the VM.
///
/// # Errors
///
/// Parse errors only — semantic problems the *interpreter* would reject
/// (unknown variables, halted-VM use, failing expectations, …) are
/// reported as error-severity [`Diagnostic`]s in the returned
/// [`Analysis`] instead, with analysis stopping at the first one.
pub fn analyze(src: &str) -> Result<Analysis, ScriptError> {
    let commands = parse_script(src)?;
    let mut an = Analyzer::new(src);
    for (line, cmd) in &commands {
        an.execute(*line, cmd);
        if an.stopped {
            break;
        }
    }
    Ok(Analysis {
        diagnostics: an.diagnostics,
        collections: an.collections,
    })
}

struct Analyzer<'a> {
    st: AbsState,
    lines: Vec<&'a str>,
    diagnostics: Vec<Diagnostic>,
    collections: Vec<GcPrediction>,
    /// Line of the collection that latched the halt reaction.
    halt_line: Option<usize>,
    /// A predicted runtime failure was emitted; analysis stops.
    stopped: bool,
}

impl<'a> Analyzer<'a> {
    fn new(src: &'a str) -> Analyzer<'a> {
        Analyzer {
            st: AbsState::new(),
            lines: src.lines().collect(),
            diagnostics: Vec::new(),
            collections: Vec::new(),
            halt_line: None,
            stopped: false,
        }
    }

    fn col(&self, line: usize) -> Option<usize> {
        self.lines.get(line - 1).and_then(|l| token_column(l, 0))
    }

    fn diag(&mut self, line: usize, severity: Severity, code: &'static str, message: String) {
        let column = self.col(line);
        self.diagnostics.push(Diagnostic {
            line,
            column,
            severity,
            code,
            message,
            notes: Vec::new(),
        });
    }

    /// A predicted runtime failure: error severity, and analysis stops
    /// (the interpreter would abort the script here).
    fn fail(&mut self, line: usize, code: &'static str, message: String) {
        self.diag(line, Severity::Error, code, message);
        self.stopped = true;
    }

    fn warn(&mut self, line: usize, code: &'static str, message: String) {
        self.diag(line, Severity::Warning, code, message);
    }

    // ------------------------------------------------------------------
    // Lookups, mirroring the interpreter's error behavior
    // ------------------------------------------------------------------

    fn var(&mut self, line: usize, name: &str) -> Option<ObjId> {
        match self.st.lookup(name) {
            Some(o) => Some(o),
            None => {
                self.fail(
                    line,
                    "unknown-variable",
                    format!("unknown variable `{name}`"),
                );
                None
            }
        }
    }

    /// A live object bound to `name`, or a predicted stale-reference
    /// failure.
    fn live_var(&mut self, line: usize, name: &str) -> Option<ObjId> {
        let obj = self.var(line, name)?;
        if !self.st.objects[obj].alive {
            self.fail(
                line,
                "stale-ref",
                format!(
                    "`{name}` refers to {}, which was reclaimed by an earlier collection",
                    self.st.describe(obj)
                ),
            );
            return None;
        }
        Some(obj)
    }

    fn class(&mut self, line: usize, name: &str) -> Option<usize> {
        match self.st.class_by_name.get(name) {
            Some(&c) => Some(c),
            None => {
                self.fail(line, "unknown-class", format!("unknown class `{name}`"));
                None
            }
        }
    }

    /// Mirror of `Vm::check_running`: commands that mutate or assert
    /// fail once a halt-reaction violation latched.
    fn check_running(&mut self, line: usize) -> bool {
        if self.st.halted {
            let at = self
                .halt_line
                .map(|l| format!(" (halted by the collection on line {l})"))
                .unwrap_or_default();
            self.fail(
                line,
                "halted",
                format!("the VM refuses further work after a halt-reaction violation{at}"),
            );
            return false;
        }
        true
    }

    /// Mirror of `Vm::check_instrumented`: assertions are rejected in
    /// base mode.
    fn check_instrumented(&mut self, line: usize) -> bool {
        if self.st.config.base_mode {
            self.fail(
                line,
                "base-mode",
                "assertions are disabled in base mode (`config mode base`)".to_owned(),
            );
            return false;
        }
        true
    }

    // ------------------------------------------------------------------
    // Lints
    // ------------------------------------------------------------------

    /// Warn when a command keeps using an object already asserted dead —
    /// rooting or storing it pins it and defeats the assertion.
    fn lint_use_after_dead(&mut self, line: usize, obj: ObjId, how: &str) {
        if self.st.objects[obj].dead && self.st.objects[obj].alive {
            let dead_at = self.st.objects[obj].dead_line;
            let desc = self.st.describe(obj);
            let at = dead_at.map(|l| format!(" at line {l}")).unwrap_or_default();
            self.warn(
                line,
                "use-after-assert-dead",
                format!("{how} {desc}, which was asserted dead{at} — this keeps it reachable"),
            );
        }
    }

    /// Warn at the command that gives an `assert-unshared` object a
    /// second incoming reference — the violation is then already in the
    /// heap, collections or not.
    fn lint_unshared_stores(&mut self, line: usize, obj: ObjId) {
        if !self.st.objects[obj].unshared || !self.st.objects[obj].alive {
            return;
        }
        let incoming = self.st.incoming(obj);
        if incoming >= 2 {
            let desc = self.st.describe(obj);
            let asserted = self.st.objects[obj].unshared_line;
            let at = asserted
                .map(|l| format!(" (asserted unshared at line {l})"))
                .unwrap_or_default();
            self.warn(
                line,
                "unshared-with-two-stores",
                format!("{desc} now has {incoming} incoming references{at}"),
            );
        }
    }

    // ------------------------------------------------------------------
    // Collections and verdicts
    // ------------------------------------------------------------------

    fn render_path(&self, path: &[PathStep]) -> Option<String> {
        if path.is_empty() {
            return None;
        }
        let mut out = String::from("path: ");
        let mut prev_class: Option<usize> = None;
        for (i, step) in path.iter().enumerate() {
            if i > 0 {
                let field = match (prev_class, step.field) {
                    (Some(c), Some(f)) => self.st.classes[c].fields[f].clone(),
                    _ => "?".to_owned(),
                };
                out.push_str(&format!(" -.{field}-> "));
            }
            out.push_str(&self.st.describe(step.obj));
            prev_class = Some(self.st.objects[step.obj].class);
        }
        Some(out)
    }

    /// Turns one predicted violation into a diagnostic at the
    /// collection's line.  `may` selects warning severity and hedged
    /// wording.
    fn violation_diag(&mut self, line: usize, v: &PredViolation, may: bool) {
        let (severity, verb) = if may {
            (Severity::Warning, "may")
        } else {
            (Severity::Error, "must")
        };
        let mut notes = Vec::new();
        if let Some(p) = self.render_path(&v.path) {
            notes.push(p);
        }
        let message = match (v.kind, v.obj) {
            (PredKind::DeadReachable, Some(obj)) => {
                let desc = self.st.describe(obj);
                let at = self.st.objects[obj]
                    .dead_line
                    .map(|l| format!(" (line {l})"))
                    .unwrap_or_default();
                if let Some(r) = self.st.rooted_at(obj) {
                    notes.push(format!(
                        "dead but still rooted: the object is in the root set (rooted at line {r})"
                    ));
                }
                if let Some(s) = self.st.objects[obj].region_site {
                    notes.push(format!("allocated inside the region begun at line {s}"));
                }
                format!(
                    "{desc} was asserted dead{at} but {verb} still be reachable at this collection"
                )
            }
            (PredKind::Shared, Some(obj)) => {
                let desc = self.st.describe(obj);
                let at = self.st.objects[obj]
                    .unshared_line
                    .map(|l| format!(" (line {l})"))
                    .unwrap_or_default();
                format!("{desc} was asserted unshared{at} but {verb} be reachable through more than one reference")
            }
            (PredKind::NotOwned, Some(obj)) => {
                let desc = self.st.describe(obj);
                format!("{desc} {verb} be reachable without passing through its owner at this collection")
            }
            (PredKind::ImproperOwnership, Some(obj)) => {
                let desc = self.st.describe(obj);
                format!("{desc} {verb} be reached while scanning another owner's region (ownership regions must be disjoint)")
            }
            (PredKind::OwneeOutlivedOwner, Some(obj)) => {
                let desc = self.st.describe(obj);
                format!("{desc} {verb} outlive its owner, which this collection reclaims")
            }
            (PredKind::InstanceLimit, _) => {
                // The summary carries class, count and limit; re-derive
                // the asserting line for provenance.
                let detail = v.summary.trim_start_matches("instance-limit ").to_owned();
                let lline = self
                    .st
                    .classes
                    .iter()
                    .find(|c| detail.starts_with(&format!("{} ", c.name)))
                    .and_then(|c| c.limit)
                    .map(|l| format!(" (asserted line {})", l.line))
                    .unwrap_or_default();
                format!("instance limit {verb} be exceeded: {detail}{lline}")
            }
            // Kinds above always carry an object; this arm is
            // unreachable but keeps the match total.
            (_, None) => v.summary.clone(),
        };
        let code = match v.kind {
            PredKind::DeadReachable => "dead-reachable",
            PredKind::Shared => "unshared-violated",
            PredKind::InstanceLimit => "instance-limit",
            PredKind::NotOwned => "not-owned",
            PredKind::ImproperOwnership => "improper-ownership",
            PredKind::OwneeOutlivedOwner => "ownee-outlived-owner",
        };
        let column = self.col(line);
        self.diagnostics.push(Diagnostic {
            line,
            column,
            severity,
            code,
            message,
            notes,
        });
    }

    /// Records one major cycle: diagnostics for its violations plus the
    /// must/may split for the differential harness.
    fn record_major(&mut self, line: usize, explicit: bool, outcome: CycleOutcome) {
        // The humility rule: a cycle that began with live ownership
        // entries gets every verdict downgraded to may, and exactness —
        // which gates expectation predictions — is gone for the rest of
        // the script.
        let may = outcome.ownership_active;
        if may {
            self.st.exact = false;
        }
        if self.st.halted && self.halt_line.is_none() {
            self.halt_line = Some(line);
        }
        let mut must_summaries = Vec::new();
        let mut may_summaries = Vec::new();
        for v in &outcome.violations {
            self.violation_diag(line, v, may);
            if may {
                may_summaries.push(v.summary.clone());
            } else {
                must_summaries.push(v.summary.clone());
            }
        }
        if explicit {
            self.st.last_report = outcome.violations.clone();
        }
        self.st.violation_log.extend(outcome.violations);
        self.collections.push(GcPrediction {
            line,
            explicit,
            minor: false,
            must: must_summaries,
            may: may_summaries,
        });
    }

    fn record_minor(&mut self, line: usize, violations: Vec<PredViolation>) {
        // Minors check no assertions; only strict-owner-lifetime
        // retirements can report, and those are ownership territory —
        // always may.
        if !self.st.ownership.is_empty() || !violations.is_empty() {
            self.st.exact = false;
        }
        let mut may_summaries = Vec::new();
        for v in &violations {
            self.violation_diag(line, v, true);
            may_summaries.push(v.summary.clone());
        }
        self.st.violation_log.extend(violations);
        self.collections.push(GcPrediction {
            line,
            explicit: false,
            minor: true,
            must: Vec::new(),
            may: may_summaries,
        });
    }

    fn record_auto(&mut self, line: usize, events: Vec<Collection>) {
        for ev in events {
            match ev {
                Collection::Major(outcome) => self.record_major(line, false, outcome),
                Collection::Minor(violations) => self.record_minor(line, violations),
            }
        }
    }

    /// Live instances of `class` reachable from the roots right now
    /// (mirror of `Vm::probe_instances`).
    fn reachable_instances(&self, class: usize) -> u32 {
        let mut seen = vec![false; self.st.objects.len()];
        let mut stack = self.st.gather_roots();
        let mut n = 0;
        while let Some(o) = stack.pop() {
            if seen[o] {
                continue;
            }
            seen[o] = true;
            if self.st.objects[o].class == class {
                n += 1;
            }
            for f in self.st.objects[o].fields.iter().flatten() {
                stack.push(*f);
            }
        }
        n
    }

    // ------------------------------------------------------------------
    // The forward interpretation
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn execute(&mut self, line: usize, cmd: &Command) {
        match cmd {
            Command::Config { key, value } => self.exec_config(line, key, value),
            Command::Class { name, fields } => {
                self.st.started = true;
                if self.st.class_by_name.contains_key(name.as_str()) {
                    self.warn(
                        line,
                        "class-redeclared",
                        format!("class `{name}` is declared again; earlier objects keep the old declaration"),
                    );
                }
                let idx = self.st.classes.len();
                self.st.classes.push(AbsClass {
                    name: name.clone(),
                    fields: fields.clone(),
                    limit: None,
                    gc_count: 0,
                });
                self.st.class_by_name.insert(name.clone(), idx);
            }
            Command::New {
                var,
                class,
                data_words,
            } => {
                self.st.started = true;
                let Some(cls) = self.class(line, class) else {
                    return;
                };
                if !self.check_running(line) {
                    return;
                }
                let nrefs = self.st.classes[cls].fields.len();
                let size = domain::HEADER_WORDS + nrefs + *data_words;
                if self.st.occupied + size > self.st.config.heap_budget {
                    let events = collect::collect_auto(&mut self.st);
                    self.record_auto(line, events);
                    if !self.check_running(line) {
                        return;
                    }
                    if self.st.occupied + size > self.st.config.heap_budget {
                        if self.st.config.grow {
                            self.st.config.heap_budget =
                                (self.st.config.heap_budget * 2).max(self.st.occupied + size);
                        } else {
                            self.fail(
                                line,
                                "out-of-memory",
                                format!(
                                    "allocation of {size} words cannot fit: {} of {} words occupied even after collecting, and growth is off",
                                    self.st.occupied, self.st.config.heap_budget
                                ),
                            );
                            return;
                        }
                    }
                }
                let id = self.st.objects.len();
                self.st.objects.push(AbsObj {
                    class: cls,
                    site_var: var.clone(),
                    site_line: line,
                    fields: vec![None; nrefs],
                    size_words: *data_words,
                    alive: true,
                    dead: false,
                    dead_line: None,
                    unshared: false,
                    unshared_line: None,
                    ownee: false,
                    owner: false,
                    reported: false,
                    old: false,
                    remembered: false,
                    mark: false,
                    owned: false,
                    region: self.st.region_open,
                    region_site: self.st.region_open.then_some(self.st.region_line),
                });
                self.st.occupied += size;
                if self.st.config.generational.is_some() {
                    self.st.young.push(id);
                }
                if self.st.region_open {
                    self.st.region_queue.push(id);
                }
                self.st.vars.insert(var.clone(), id);
            }
            Command::Set { var, field, value } => {
                self.st.started = true;
                let Some(recv) = self.live_var(line, var) else {
                    return;
                };
                if !self.check_running(line) {
                    return;
                }
                let cls = self.st.objects[recv].class;
                // The interpreter resolves the field against the *current*
                // declaration of the class name; a redeclaration orphans
                // older objects.
                if self.st.class_by_name.get(&self.st.classes[cls].name) != Some(&cls) {
                    self.fail(
                        line,
                        "unknown-class",
                        format!(
                            "`{var}`'s class `{}` was redeclared; its old declaration is no longer known to the interpreter",
                            self.st.classes[cls].name
                        ),
                    );
                    return;
                }
                let Some(idx) = self.st.classes[cls].fields.iter().position(|f| f == field) else {
                    self.fail(
                        line,
                        "unknown-field",
                        format!(
                            "class `{}` has no field `{field}`",
                            self.st.classes[cls].name
                        ),
                    );
                    return;
                };
                let val = match value {
                    Target::Null => None,
                    Target::Var(v) => match self.live_var(line, v) {
                        Some(o) => Some(o),
                        None => return,
                    },
                };
                // Generational write barrier mirror.
                if let Some(v) = val {
                    if self.st.config.generational.is_some()
                        && self.st.objects[recv].old
                        && !self.st.objects[recv].remembered
                        && !self.st.objects[v].old
                    {
                        self.st.objects[recv].remembered = true;
                        self.st.remembered.push(recv);
                    }
                }
                self.st.objects[recv].fields[idx] = val;
                if let Some(v) = val {
                    self.lint_use_after_dead(line, v, "storing a reference to");
                    self.lint_unshared_stores(line, v);
                    // Region escape: a region allocation stored into an
                    // object outside the region outlives `all-dead`'s
                    // intent.
                    if self.st.objects[v].region && !self.st.objects[recv].region {
                        let desc = self.st.describe(v);
                        let site = self.st.objects[v].region_site;
                        let at = site
                            .map(|l| format!(" (region begun at line {l})"))
                            .unwrap_or_default();
                        self.warn(
                            line,
                            "region-escape",
                            format!(
                                "{desc} was allocated in the active region{at} but escapes into `{var}`, which is outside it"
                            ),
                        );
                    }
                }
            }
            Command::Data { var, index, value } => {
                let _ = value;
                self.st.started = true;
                let Some(obj) = self.live_var(line, var) else {
                    return;
                };
                if !self.check_running(line) {
                    return;
                }
                if *index >= self.st.objects[obj].size_words {
                    self.fail(
                        line,
                        "data-bounds",
                        format!(
                            "data index {index} out of bounds: {} has {} data word(s)",
                            self.st.describe(obj),
                            self.st.objects[obj].size_words
                        ),
                    );
                    return;
                }
                self.lint_use_after_dead(line, obj, "writing a data word of");
            }
            Command::Root(var) => {
                self.st.started = true;
                let Some(obj) = self.live_var(line, var) else {
                    return;
                };
                self.st.roots.push((obj, line));
                self.lint_use_after_dead(line, obj, "rooting");
                self.lint_unshared_stores(line, obj);
            }
            Command::Frame => {
                self.st.started = true;
                let mark = self.st.roots.len();
                self.st.frames.push(mark);
            }
            Command::EndFrame => {
                self.st.started = true;
                if self.st.frames.len() <= 1 {
                    self.fail(
                        line,
                        "no-frame",
                        "`end-frame` with only the base frame on the stack".to_owned(),
                    );
                    return;
                }
                let base = self.st.frames.pop().expect("checked length");
                self.st.roots.truncate(base);
            }
            Command::Global(var) => {
                self.st.started = true;
                let Some(obj) = self.live_var(line, var) else {
                    return;
                };
                self.st.globals.push((obj, line));
                self.lint_use_after_dead(line, obj, "making a global of");
                self.lint_unshared_stores(line, obj);
            }
            Command::Unglobal(var) => {
                self.st.started = true;
                let Some(obj) = self.var(line, var) else {
                    return;
                };
                match self.st.globals.iter().position(|(g, _)| *g == obj) {
                    Some(i) => {
                        self.st.globals.swap_remove(i);
                    }
                    None => {
                        self.fail(
                            line,
                            "global-not-found",
                            format!("`{var}` is not a global root"),
                        );
                    }
                }
            }
            Command::AssertDead(var) => {
                self.st.started = true;
                let Some(obj) = self.live_var(line, var) else {
                    return;
                };
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                self.st.objects[obj].dead = true;
                self.st.objects[obj].dead_line = Some(line);
            }
            Command::AssertUnshared(var) => {
                self.st.started = true;
                let Some(obj) = self.live_var(line, var) else {
                    return;
                };
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                self.st.objects[obj].unshared = true;
                self.st.objects[obj].unshared_line = Some(line);
                self.lint_unshared_stores(line, obj);
            }
            Command::AssertInstances { class, limit } => {
                self.st.started = true;
                let Some(cls) = self.class(line, class) else {
                    return;
                };
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                self.st.classes[cls].limit = Some(InstanceLimit {
                    limit: *limit,
                    line,
                });
            }
            Command::AssertOwnedBy { owner, ownee } => {
                self.st.started = true;
                let Some(o) = self.live_var(line, owner) else {
                    return;
                };
                let Some(e) = self.live_var(line, ownee) else {
                    return;
                };
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                self.assert_owned_by(line, o, e);
            }
            Command::ReleaseOwnee(var) => {
                self.st.started = true;
                let Some(obj) = self.var(line, var) else {
                    return;
                };
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                for entry in &mut self.st.ownership {
                    entry.ownees.retain(|&o| o != obj);
                }
                if self.st.objects[obj].alive {
                    self.st.objects[obj].ownee = false;
                }
            }
            Command::StartRegion => {
                self.st.started = true;
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                if self.st.region_open {
                    self.fail(
                        line,
                        "region-active",
                        format!(
                            "a region is already active (begun at line {}); regions do not nest",
                            self.st.region_line
                        ),
                    );
                    return;
                }
                self.st.region_open = true;
                self.st.region_line = line;
                self.st.region_queue.clear();
            }
            Command::AllDead => {
                self.st.started = true;
                if !self.check_running(line) || !self.check_instrumented(line) {
                    return;
                }
                if !self.st.region_open {
                    self.fail(
                        line,
                        "no-region",
                        "`all-dead` without an active region".to_owned(),
                    );
                    return;
                }
                let queue = std::mem::take(&mut self.st.region_queue);
                for obj in queue {
                    self.st.objects[obj].region = false;
                    if self.st.objects[obj].alive {
                        self.st.objects[obj].dead = true;
                        self.st.objects[obj].dead_line = Some(line);
                    }
                }
                self.st.region_open = false;
            }
            Command::Gc => {
                self.st.started = true;
                let outcome = collect::collect_major(&mut self.st);
                self.record_major(line, true, outcome);
            }
            Command::MinorGc => {
                self.st.started = true;
                if !self.check_running(line) {
                    return;
                }
                let violations = collect::collect_minor(&mut self.st);
                self.record_minor(line, violations);
            }
            Command::Probe(var) => {
                self.st.started = true;
                if self.var(line, var).is_none() {
                    return;
                }
                if !self.check_running(line) {
                    #[allow(clippy::needless_return)]
                    return;
                }
            }
            Command::Print => {
                // Reads the last report; does not start the VM.
            }
            Command::Histogram | Command::Stats => {
                self.st.started = true;
            }
            Command::ExpectViolations(n) => {
                // Does not start the VM; reads the last explicit report.
                if self.st.exact {
                    let got = self.st.last_report.len();
                    if got != *n {
                        self.fail(
                            line,
                            "expect-will-fail",
                            format!(
                                "this expectation will fail: it expects {n} violation(s) in the last gc, but the analyzer predicts {got}"
                            ),
                        );
                    }
                }
            }
            Command::ExpectTotalViolations(n) => {
                self.st.started = true;
                if self.st.exact {
                    let got = self.st.violation_log.len();
                    if got != *n {
                        self.fail(
                            line,
                            "expect-will-fail",
                            format!(
                                "this expectation will fail: it expects {n} total violation(s), but the analyzer predicts {got}"
                            ),
                        );
                    }
                }
            }
            Command::ExpectLive(var) => {
                self.st.started = true;
                let Some(obj) = self.var(line, var) else {
                    return;
                };
                if self.st.exact && !self.st.objects[obj].alive {
                    self.fail(
                        line,
                        "expect-will-fail",
                        format!(
                            "this expectation will fail: {} is reclaimed by then",
                            self.st.describe(obj)
                        ),
                    );
                }
            }
            Command::ExpectDead(var) => {
                self.st.started = true;
                let Some(obj) = self.var(line, var) else {
                    return;
                };
                if self.st.exact && self.st.objects[obj].alive {
                    self.fail(
                        line,
                        "expect-will-fail",
                        format!(
                            "this expectation will fail: {} is still live by then",
                            self.st.describe(obj)
                        ),
                    );
                }
            }
            Command::ExpectInstances { class, count } => {
                self.st.started = true;
                let Some(cls) = self.class(line, class) else {
                    return;
                };
                if !self.check_running(line) {
                    return;
                }
                if self.st.exact {
                    let got = self.reachable_instances(cls);
                    if got != *count {
                        self.fail(
                            line,
                            "expect-will-fail",
                            format!(
                                "this expectation will fail: it expects {count} live `{class}` instance(s), but the analyzer predicts {got}"
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Mirror of `OwnershipTable::add`, including its conflict errors.
    fn assert_owned_by(&mut self, line: usize, owner: ObjId, ownee: ObjId) {
        if owner == ownee {
            self.fail(
                line,
                "ownership-conflict",
                format!("{} cannot own itself", self.st.describe(owner)),
            );
            return;
        }
        if self.st.ownership.iter().any(|e| e.owner == ownee) {
            self.fail(
                line,
                "ownership-conflict",
                format!(
                    "{} is already an owner and cannot become an ownee",
                    self.st.describe(ownee)
                ),
            );
            return;
        }
        if self.st.ownership.iter().any(|e| e.ownees.contains(&owner)) {
            self.fail(
                line,
                "ownership-conflict",
                format!(
                    "{} is already an ownee and cannot become an owner",
                    self.st.describe(owner)
                ),
            );
            return;
        }
        // Re-asserting moves the ownee; the same pair is a no-op.
        if let Some(existing) = self
            .st
            .ownership
            .iter()
            .position(|e| e.ownees.contains(&ownee))
        {
            if self.st.ownership[existing].owner == owner {
                return;
            }
            self.st.ownership[existing].ownees.retain(|&o| o != ownee);
        }
        match self.st.ownership.iter().position(|e| e.owner == owner) {
            Some(i) => self.st.ownership[i].ownees.push(ownee),
            None => self.st.ownership.push(OwnerEntry {
                owner,
                ownees: vec![ownee],
            }),
        }
        self.st.objects[owner].owner = true;
        self.st.objects[ownee].ownee = true;
    }

    /// Mirror of the interpreter's `apply_config`, including its
    /// config-after-start gate and key validation.
    fn exec_config(&mut self, line: usize, key: &str, value: &str) {
        if self.st.started {
            self.fail(
                line,
                "config-after-start",
                "`config` must appear before any other command".to_owned(),
            );
            return;
        }
        let cfg = &mut self.st.config;
        let ok = match key {
            "heap" => match value.parse() {
                Ok(v) => {
                    cfg.heap_budget = v;
                    true
                }
                Err(_) => false,
            },
            "grow" => parse_bool(value).map(|v| cfg.grow = v).is_some(),
            "report-once" => parse_bool(value).map(|v| cfg.report_once = v).is_some(),
            "path-tracking" => parse_bool(value).map(|v| cfg.path_tracking = v).is_some(),
            "strict-owner-lifetime" => parse_bool(value)
                .map(|v| cfg.strict_owner_lifetime = v)
                .is_some(),
            "generational" => match value.parse() {
                Ok(_) if cfg.copying => {
                    self.fail(
                        line,
                        "bad-config",
                        "the copying collector is full-heap; it cannot be generational".to_owned(),
                    );
                    return;
                }
                Ok(v) => {
                    cfg.generational = Some(v);
                    true
                }
                Err(_) => false,
            },
            "collector" => match value {
                "mark-sweep" | "marksweep" => {
                    cfg.copying = false;
                    true
                }
                "copying" if cfg.generational.is_some() => {
                    self.fail(
                        line,
                        "bad-config",
                        "the copying collector is full-heap; it cannot be generational".to_owned(),
                    );
                    return;
                }
                "copying" => {
                    cfg.copying = true;
                    true
                }
                _ => false,
            },
            "minor-strategy" => match value {
                "cards" => {
                    cfg.minor_strategy_cards = true;
                    true
                }
                "remembered-set" => {
                    cfg.minor_strategy_cards = false;
                    true
                }
                _ => false,
            },
            "reaction" => match value {
                "log" => {
                    cfg.reaction = Reaction::Log;
                    true
                }
                "halt" => {
                    cfg.reaction = Reaction::Halt;
                    true
                }
                "force-true" => {
                    cfg.reaction = Reaction::ForceTrue;
                    true
                }
                _ => false,
            },
            "mode" => match value {
                "base" => {
                    cfg.base_mode = true;
                    true
                }
                "instrumented" => {
                    cfg.base_mode = false;
                    true
                }
                _ => false,
            },
            _ => false,
        };
        if !ok {
            self.fail(
                line,
                "bad-config",
                format!("bad config: `{key} {value}` is not a recognized setting"),
            );
        }
    }
}

fn parse_bool(s: &str) -> Option<bool> {
    match s {
        "on" | "true" | "yes" => Some(true),
        "off" | "false" | "no" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn errors(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.code)
            .collect()
    }

    fn warnings(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_script_has_no_diagnostics() {
        let a = analyze("class T\nnew a T\nroot a\ngc\nexpect-violations 0\n").unwrap();
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert_eq!(a.collections.len(), 1);
        assert!(a.collections[0].must.is_empty());
        assert!(!a.has_errors());
    }

    #[test]
    fn dead_but_rooted_is_a_must_with_provenance() {
        let a = analyze("class T\nnew a T\nroot a\nassert-dead a\ngc\n").unwrap();
        assert_eq!(errors(&a), ["dead-reachable"]);
        let d = &a.diagnostics[0];
        assert_eq!(d.line, 5);
        assert!(
            d.notes.iter().any(|n| n.contains("rooted at line 3")),
            "{d:?}"
        );
        assert_eq!(a.collections[0].must, ["dead-reachable T"]);
    }

    #[test]
    fn abstract_path_mirrors_the_heap_route() {
        let a = analyze(
            "class A f\nclass B g\nnew a A\nroot a\nnew b B\nset a.f b\nnew c A\nset b.g c\nassert-dead c\ngc\n",
        )
        .unwrap();
        let d = &a.diagnostics[0];
        let path = d.notes.iter().find(|n| n.starts_with("path: ")).unwrap();
        assert_eq!(
            path,
            "path: a: A (line 3) -.f-> b: B (line 5) -.g-> c: A (line 7)"
        );
    }

    #[test]
    fn use_after_assert_dead_lint_fires() {
        let a =
            analyze("class T f\nnew a T\nroot a\nnew b T\nassert-dead b\nset a.f b\ngc\n").unwrap();
        assert!(
            warnings(&a).contains(&"use-after-assert-dead"),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn unshared_second_store_warns_at_the_store() {
        let a = analyze(
            "class T l r\nnew a T\nroot a\nnew b T\nset a.l b\nassert-unshared b\nset a.r b\ngc\n",
        )
        .unwrap();
        let w: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.code == "unshared-with-two-stores")
            .collect();
        assert_eq!(w.len(), 1, "{:?}", a.diagnostics);
        assert_eq!(w[0].line, 7);
    }

    #[test]
    fn region_escape_warns_before_all_dead() {
        let a = analyze(
            "class Keep f\nclass Tmp\nnew k Keep\nroot k\nstart-region\nnew t Tmp\nset k.f t\nall-dead\ngc\n",
        )
        .unwrap();
        assert!(
            warnings(&a).contains(&"region-escape"),
            "{:?}",
            a.diagnostics
        );
        // And the escape makes all-dead's assertion a must-violation.
        assert!(errors(&a).contains(&"dead-reachable"));
    }

    #[test]
    fn ownership_predictions_are_may_not_must() {
        let a = analyze(
            "class C e\nclass E\nnew c C\nroot c\nnew x E\nroot x\nassert-owned-by c x\ngc\n",
        )
        .unwrap();
        // x is rooted but not reachable through c — the runtime will
        // report not-owned, but the analyzer only claims may.
        assert!(errors(&a).is_empty(), "{:?}", a.diagnostics);
        assert_eq!(warnings(&a), ["not-owned"]);
        assert_eq!(a.collections[0].may, ["not-owned E"]);
        assert!(a.collections[0].must.is_empty());
    }

    #[test]
    fn halt_reaction_latches_and_fails_later_commands() {
        let a =
            analyze("config reaction halt\nclass T\nnew a T\nroot a\nassert-dead a\ngc\nnew b T\n")
                .unwrap();
        assert_eq!(errors(&a), ["dead-reachable", "halted"]);
        assert_eq!(a.diagnostics.last().unwrap().line, 7);
    }

    #[test]
    fn force_true_severs_the_pinning_edge() {
        let a = analyze(
            "config reaction force-true\nclass T f\nnew a T\nroot a\nnew b T\nset a.f b\nassert-dead b\ngc\nexpect-violations 1\ngc\nexpect-dead b\n",
        )
        .unwrap();
        // First gc reports; the severed edge lets b die at the second,
        // so both expectations are predicted to pass.
        assert_eq!(errors(&a), ["dead-reachable"]);
        assert_eq!(a.collections.len(), 2);
        assert!(a.collections[1].must.is_empty());
    }

    #[test]
    fn report_once_suppresses_the_second_cycle() {
        let a = analyze("class T\nnew a T\nroot a\nassert-dead a\ngc\ngc\n").unwrap();
        assert_eq!(a.collections[0].must, ["dead-reachable T"]);
        assert!(a.collections[1].must.is_empty());
    }

    #[test]
    fn report_every_cycle_when_report_once_off() {
        let a =
            analyze("config report-once off\nclass T\nnew a T\nroot a\nassert-dead a\ngc\ngc\n")
                .unwrap();
        assert_eq!(a.collections[0].must, ["dead-reachable T"]);
        assert_eq!(a.collections[1].must, ["dead-reachable T"]);
    }

    #[test]
    fn failing_expectation_is_predicted() {
        let a = analyze("class T\nnew a T\nroot a\ngc\nexpect-dead a\n").unwrap();
        assert_eq!(errors(&a), ["expect-will-fail"]);
        assert_eq!(a.diagnostics[0].line, 5);
    }

    #[test]
    fn runtime_failures_stop_analysis() {
        let a = analyze("class T\nset ghost.f ghost\nnew a T\n").unwrap();
        assert_eq!(errors(&a), ["unknown-variable"]);
        assert_eq!(a.diagnostics.len(), 1);
    }

    #[test]
    fn implicit_collections_are_recorded() {
        // Budget of 6 words fits one 4-word object (2 header + 2 data);
        // the second allocation must collect first, reclaiming the
        // unrooted first object.
        let a = analyze("config heap 6\nclass T\nnew a T 2\nnew b T 2\nroot b\ngc\n").unwrap();
        assert_eq!(a.collections.len(), 2);
        assert!(!a.collections[0].explicit);
        assert!(a.collections[1].explicit);
        assert!(!a.has_errors(), "{:?}", a.diagnostics);
    }

    #[test]
    fn base_mode_rejects_assertions() {
        let a = analyze("config mode base\nclass T\nnew a T\nassert-dead a\n").unwrap();
        assert_eq!(errors(&a), ["base-mode"]);
    }

    #[test]
    fn minor_gc_quirk_stale_marks_survive_to_the_major() {
        // Without generational mode a minor-gc leaves mark bits set on
        // everything it reaches; the next major sees the asserted-dead
        // object as already marked and reports nothing (visit_marked
        // does not check DEAD) — the analyzer must predict that too.
        let a =
            analyze("class T\nnew a T\nroot a\nassert-dead a\nminor-gc\ngc\nexpect-violations 0\n")
                .unwrap();
        assert!(errors(&a).is_empty(), "{:?}", a.diagnostics);
        assert!(a.collections[1].must.is_empty());
    }

    #[test]
    fn render_summarizes() {
        let a = analyze("class T\nnew a T\nroot a\nassert-dead a\ngc\n").unwrap();
        let r = a.render();
        assert!(r.contains("error[dead-reachable] line 5"), "{r}");
        assert!(r.contains("1 error(s)"), "{r}");
    }
}
