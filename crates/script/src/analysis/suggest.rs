//! `gca suggest`: assertion auto-placement for unannotated scripts.
//!
//! The generator runs the script *concretely* through the interpreter,
//! probing reachability of every top-level allocation after every
//! top-level step (the QVM-style immediate queries the paper's
//! assertions amortize away — affordable here because suggestion runs
//! are offline).  From the observed lifetimes it proposes maximal sound
//! placements:
//!
//! * `assert-dead <var>` at last use — inserted right before the step
//!   that makes the object permanently unreachable;
//! * `start-region` / `all-dead` brackets around a contiguous birth
//!   span of objects that all die before the next collection (member
//!   objects then need no individual `assert-dead`);
//! * `assert-instances <Class> <limit>` after the class declaration,
//!   with the census suggested-limit formula
//!   `(peak + peak/4).max(peak + 1)` headroom over the observed peak.
//!
//! Every proposal is then **verified by splice-execute-recheck**: the
//! suggestion is spliced into the source, the result must run with zero
//! violations *and* come back clean from `analyze` — candidates that
//! fail are dropped, so the emitted set is sound by construction, not
//! by argument.

use std::collections::HashMap;

use crate::ast::{parse_script, Command};
use crate::error::ScriptError;
use crate::interp::Interpreter;

use gc_assertions::ObjRef;

/// One verified placement: insert `text` as a new line immediately
/// before 1-based source line `before_line` (one past the last source
/// line appends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// 1-based source line the new command goes in front of.
    pub before_line: usize,
    /// The command to insert, without a trailing newline.
    pub text: String,
    /// Human-readable evidence from the observation run.
    pub reason: String,
}

/// The result of a suggestion run.
#[derive(Debug)]
pub struct SuggestOutcome {
    /// Verified placements, in splice order.
    pub suggestions: Vec<Suggestion>,
    /// The script already carries assertions (or disables them):
    /// suggestion declined, with the reason.
    pub refused: Option<String>,
    /// Candidate placements the verification pass rejected.
    pub rejected: usize,
}

impl SuggestOutcome {
    /// Renders the human transcript: one `@ line N: + command` block per
    /// placement, plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(reason) = &self.refused {
            out.push_str(&format!("suggest: declined — {reason}\n"));
            return out;
        }
        for s in &self.suggestions {
            out.push_str(&format!("@ line {}: + {}\n", s.before_line, s.text));
            out.push_str(&format!("    reason: {}\n", s.reason));
        }
        out.push_str(&format!(
            "suggest: {} placement(s), {} candidate(s) rejected by splice-and-verify\n",
            self.suggestions.len(),
            self.rejected
        ));
        out
    }
}

/// Splices `suggestions` into `src`: each suggestion's `text` becomes a
/// new line immediately before its `before_line` (stable for multiple
/// suggestions at one line, in slice order).  All line numbers refer to
/// the *original* source.
pub fn apply_suggestions(src: &str, suggestions: &[Suggestion]) -> String {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        for s in suggestions {
            if s.before_line == i + 1 {
                out.push_str(&s.text);
                out.push('\n');
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    for s in suggestions {
        if s.before_line > lines.len() {
            out.push_str(&s.text);
            out.push('\n');
        }
    }
    out
}

/// The census suggested-limit formula (see `gca-telemetry`'s census
/// detector): 25% headroom over the observed peak, and at least one.
fn suggest_limit(observed: u32) -> u32 {
    (observed + observed / 4).max(observed + 1)
}

/// What the observation run learned about one top-level allocation.
#[derive(Debug)]
struct TrackedObj {
    var: String,
    class: String,
    /// Step index of the allocating `new`.
    born: usize,
    /// 1-based source line of the allocating `new`.
    born_line: usize,
    obj: ObjRef,
    /// Per-step: reachable from the roots after that step ran.
    reachable: Vec<bool>,
    /// Per-step: the site variable still binds this object.
    bound: Vec<bool>,
}

/// Commands that mean the script is already annotated (or has opted out
/// of assertion checking) — suggestion declines rather than second-guess
/// the author.
fn annotation_reason(cmd: &Command) -> Option<&'static str> {
    match cmd {
        Command::AssertDead(_) => Some("the script already uses `assert-dead`"),
        Command::AssertUnshared(_) => Some("the script already uses `assert-unshared`"),
        Command::AssertInstances { .. } => Some("the script already uses `assert-instances`"),
        Command::AssertOwnedBy { .. } => Some("the script already uses `assert-owned-by`"),
        Command::ReleaseOwnee(_) => Some("the script already uses `release-ownee`"),
        Command::StartRegion | Command::AllDead => {
            Some("the script already uses region assertions")
        }
        Command::Config { key, value } if key == "mode" && value == "base" => {
            Some("assertions are disabled (`config mode base`)")
        }
        _ => None,
    }
}

/// Proposes and verifies assertion placements for `src`.
///
/// # Errors
///
/// Parse errors, or the failure of the *unmodified* script's observation
/// run — a script that cannot run cleanly has nothing to suggest over.
pub fn suggest(src: &str) -> Result<SuggestOutcome, ScriptError> {
    let commands = parse_script(src)?;
    for (_, cmd) in &commands {
        if let Some(reason) = annotation_reason(cmd) {
            return Ok(SuggestOutcome {
                suggestions: Vec::new(),
                refused: Some(reason.to_owned()),
                rejected: 0,
            });
        }
    }

    // ---- Observation run: feed the commands one by one, probing the
    // live heap after every step.
    let mut interp = Interpreter::new();
    let mut tracked: Vec<TrackedObj> = Vec::new();
    // Step index -> (source line, fed at top level, is an explicit gc,
    // is a class decl, is a `new`).
    let mut anchors: Vec<bool> = Vec::with_capacity(commands.len());
    let mut gc_steps: Vec<usize> = Vec::new();
    let mut class_decl_step: HashMap<String, usize> = HashMap::new();
    let mut peak_instances: HashMap<String, u32> = HashMap::new();

    for (step, (line, cmd)) in commands.iter().enumerate() {
        let top_level = !interp.is_recording();
        anchors.push(top_level);
        interp.execute(*line, cmd)?;
        if top_level {
            match cmd {
                Command::New { var, class, .. } => {
                    if let Some(obj) = interp.binding(var) {
                        tracked.push(TrackedObj {
                            var: var.clone(),
                            class: class.clone(),
                            born: step,
                            born_line: *line,
                            obj,
                            reachable: Vec::new(),
                            bound: Vec::new(),
                        });
                    }
                }
                Command::Class { name, .. } => {
                    class_decl_step.entry(name.clone()).or_insert(step);
                }
                Command::Gc | Command::MinorGc => gc_steps.push(step),
                _ => {}
            }
        }
        // Probe every tracked object's reachability right now.  A probe
        // error means the reference went stale (the object was swept) —
        // definitively unreachable.
        for t in &mut tracked {
            let reachable = match interp.vm_mut_opt() {
                Some(vm) => vm.probe_reachable(t.obj).unwrap_or(false),
                None => false,
            };
            t.reachable.push(reachable);
            t.bound.push(interp.binding(&t.var) == Some(t.obj));
        }
        // Class peaks for assert-instances, same probe budget.
        for class in class_decl_step.keys() {
            if let Some(id) = interp.class_id(class) {
                if let Some(vm) = interp.vm_mut_opt() {
                    if let Ok(n) = vm.probe_instances(id) {
                        let peak = peak_instances.entry(class.clone()).or_insert(0);
                        *peak = (*peak).max(n);
                    }
                }
            }
        }
    }
    let steps = commands.len();
    // Pad timelines for objects born mid-run (probe loop above only ran
    // from their birth step onward is already handled: every step pushes
    // for every tracked object that exists, so early steps are missing).
    for t in &mut tracked {
        let missing = steps.saturating_sub(t.reachable.len());
        if missing > 0 {
            let mut pre = vec![false; missing];
            pre.append(&mut t.reachable);
            t.reachable = pre;
            let mut pre = vec![false; missing];
            pre.append(&mut t.bound);
            t.bound = pre;
        }
    }

    // The first step after `i` where a new command may be inserted:
    // top-level boundaries only, never inside a recorded body.
    let next_anchor = |from: usize| -> Option<usize> { (from..steps).find(|&s| anchors[s]) };

    // ---- Candidate generation.  Candidates form atomic *groups* — a
    // region's start-region/all-dead pair stands or falls together.
    let mut groups: Vec<Vec<Suggestion>> = Vec::new();

    // Death step per object: the first step from which it is never
    // reachable again (None while it stays reachable to the end).
    let deaths: Vec<Option<usize>> = tracked
        .iter()
        .map(|t| {
            let mut d = None;
            for s in t.born..steps {
                if t.reachable[s] {
                    d = None;
                } else if d.is_none() {
                    d = Some(s);
                }
            }
            d
        })
        .collect();

    // Region brackets: a run of >= 2 consecutive dying top-level births
    // with no collection in between, closed once every member is dead.
    let mut in_region: Vec<bool> = vec![false; tracked.len()];
    let mut i = 0;
    while i < tracked.len() {
        if deaths[i].is_none() || !anchors[tracked[i].born] {
            i += 1;
            continue;
        }
        let mut j = i;
        while j + 1 < tracked.len()
            && deaths[j + 1].is_some()
            && anchors[tracked[j + 1].born]
            && !gc_steps
                .iter()
                .any(|&g| g > tracked[j].born && g < tracked[j + 1].born)
        {
            j += 1;
        }
        if j > i {
            let last_death = (i..=j).map(|k| deaths[k].expect("span members die")).max();
            let last_born = tracked[j].born;
            let want = last_death.expect("non-empty span").max(last_born + 1);
            if let Some(close) = next_anchor(want) {
                let no_gc_inside = !gc_steps.iter().any(|&g| g >= tracked[i].born && g < close);
                if no_gc_inside {
                    let open_line = commands[tracked[i].born].0;
                    groups.push(vec![
                        Suggestion {
                            before_line: open_line,
                            text: "start-region".to_owned(),
                            reason: format!(
                                "{} allocation(s) on lines {}-{} all die before the next collection",
                                j - i + 1,
                                open_line,
                                commands[last_born].0,
                            ),
                        },
                        Suggestion {
                            before_line: commands[close].0,
                            text: "all-dead".to_owned(),
                            reason: "every allocation of the region above is unreachable here"
                                .to_owned(),
                        },
                    ]);
                    in_region[i..=j].fill(true);
                }
            }
        }
        i = j + 1;
    }

    // assert-dead at last use, for objects not covered by a region.
    for (k, t) in tracked.iter().enumerate() {
        if in_region[k] {
            continue;
        }
        let Some(d) = deaths[k] else { continue };
        // Insert right before the killing step (or right after the
        // allocation when the object was never reachable), snapped
        // forward to a top-level boundary.
        let want = d.max(t.born + 1);
        let Some(at) = next_anchor(want) else {
            continue;
        };
        // The site variable must still name the object where the
        // assertion lands.
        if at == 0 || !t.bound[at - 1] {
            continue;
        }
        groups.push(vec![Suggestion {
            before_line: commands[at].0,
            text: format!("assert-dead {}", t.var),
            reason: format!(
                "{}: {} (line {}) is unreachable from here to the end of the run",
                t.var, t.class, t.born_line
            ),
        }]);
    }

    // assert-instances after each class declaration with a tracked peak.
    let mut classes: Vec<(&String, usize)> = class_decl_step.iter().map(|(c, &s)| (c, s)).collect();
    classes.sort();
    for (class, decl_step) in classes {
        let Some(&peak) = peak_instances.get(class) else {
            continue;
        };
        if peak == 0 || !anchors[decl_step] {
            continue;
        }
        let limit = suggest_limit(peak);
        groups.push(vec![Suggestion {
            before_line: commands[decl_step].0 + 1,
            text: format!("assert-instances {class} {limit}"),
            reason: format!(
                "observed peak of {peak} live `{class}` instance(s); limit adds census headroom"
            ),
        }]);
    }

    groups.sort_by_key(|g| (g[0].before_line, g[0].text.clone()));

    // ---- Verification: greedy splice-execute-recheck.  A group joins
    // the accepted set only if the spliced script still runs with zero
    // violations and re-checks clean.
    let mut accepted: Vec<Suggestion> = Vec::new();
    let mut rejected = 0;
    for group in groups {
        let mut trial = accepted.clone();
        trial.extend(group.iter().cloned());
        trial.sort_by_key(|s| s.before_line);
        if verify(src, &trial) {
            accepted = trial;
        } else {
            rejected += group.len();
        }
    }

    Ok(SuggestOutcome {
        suggestions: accepted,
        refused: None,
        rejected,
    })
}

/// The soundness gate: the spliced script must execute with zero
/// violations and come back from the static checker with no errors.
fn verify(src: &str, suggestions: &[Suggestion]) -> bool {
    let spliced = apply_suggestions(src, suggestions);
    match Interpreter::run_script(&spliced) {
        Ok(out) if out.total_violations == 0 => {}
        _ => return false,
    }
    match super::analyze(&spliced) {
        Ok(a) => !a.has_errors(),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggests_assert_dead_at_last_use() {
        let src = "class T\nnew a T\nroot a\nnew b T\nset a.f b\ngc\n";
        // b has no field on T — use a class with a field instead.
        let src = src.replace("class T", "class T f");
        let out = suggest(&src).unwrap();
        assert!(out.refused.is_none());
        // Nothing dies here (both stay reachable), so no assert-dead;
        // instance limits are still proposed.
        assert!(
            out.suggestions
                .iter()
                .all(|s| !s.text.starts_with("assert-dead")),
            "{out:?}"
        );
        assert!(
            out.suggestions
                .iter()
                .any(|s| s.text.starts_with("assert-instances T")),
            "{out:?}"
        );
    }

    #[test]
    fn dead_temporary_gets_an_assert_dead() {
        let src = "class Keep\nclass Tmp\nnew k Keep\nroot k\nnew t Tmp\ngc\nexpect-violations 0\n";
        let out = suggest(src).unwrap();
        let dead: Vec<_> = out
            .suggestions
            .iter()
            .filter(|s| s.text == "assert-dead t")
            .collect();
        assert_eq!(dead.len(), 1, "{out:?}");
        // Right after the allocation on line 5 — before the gc on 6.
        assert_eq!(dead[0].before_line, 6);
        // And the spliced result still runs clean end to end.
        let spliced = apply_suggestions(src, &out.suggestions);
        let run = Interpreter::run_script(&spliced).unwrap();
        assert_eq!(run.total_violations, 0, "{spliced}");
    }

    #[test]
    fn annotated_scripts_are_declined() {
        let out = suggest("class T\nnew a T\nassert-dead a\ngc\n").unwrap();
        assert!(out.refused.is_some());
        assert!(out.suggestions.is_empty());
    }

    #[test]
    fn region_bracket_covers_a_birth_span() {
        let src = "class Keep\nclass Tmp\nnew k Keep\nroot k\nnew t1 Tmp\nnew t2 Tmp\nnew t3 Tmp\nprobe k\ngc\nexpect-violations 0\n";
        let out = suggest(src).unwrap();
        assert!(
            out.suggestions.iter().any(|s| s.text == "start-region"),
            "{out:?}"
        );
        assert!(
            out.suggestions.iter().any(|s| s.text == "all-dead"),
            "{out:?}"
        );
        // Members need no individual assert-dead.
        assert!(
            out.suggestions
                .iter()
                .all(|s| !s.text.starts_with("assert-dead t")),
            "{out:?}"
        );
        let spliced = apply_suggestions(src, &out.suggestions);
        let run = Interpreter::run_script(&spliced).unwrap();
        assert_eq!(run.total_violations, 0, "{spliced}");
    }

    #[test]
    fn splice_is_stable_and_line_addressed() {
        let src = "a\nb\nc\n";
        let s = vec![
            Suggestion {
                before_line: 2,
                text: "x".to_owned(),
                reason: String::new(),
            },
            Suggestion {
                before_line: 4,
                text: "y".to_owned(),
                reason: String::new(),
            },
        ];
        assert_eq!(apply_suggestions(src, &s), "a\nx\nb\nc\ny\n");
    }
}
