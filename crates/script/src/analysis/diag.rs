//! Analyzer diagnostics: severity levels, codes, and rendering through
//! the same [`SourceLocation`] renderer the parser uses.

use std::fmt;

use crate::error::SourceLocation;

/// How certain — and how serious — a diagnostic is.
///
/// The analyzer's verdict lattice maps onto severities: a **must**-violate
/// verdict (the abstract heap proves the assertion fires) is an `Error`;
/// a **may**-violate verdict (plausible on the abstract heap but the
/// analyzer declines to promise it) and the advisory lints are `Warning`s;
/// supporting facts ride along as `Note`s inside a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory only.
    Note,
    /// May-violate verdicts and lints; the script may still run clean.
    Warning,
    /// Must-violate verdicts and predicted runtime failures.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        })
    }
}

/// One analyzer finding, anchored to a script line (and column when the
/// offending token is known).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based script line the diagnostic anchors to.
    pub line: usize,
    /// 1-based column of the anchoring token, when known.
    pub column: Option<usize>,
    /// Severity (must = error, may/lint = warning).
    pub severity: Severity,
    /// Stable short code, e.g. `dead-reachable` or `use-after-assert-dead`.
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Supporting facts (abstract paths, provenance lines), one per line.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// The diagnostic's source location, for the shared renderer.
    pub fn location(&self) -> SourceLocation {
        SourceLocation {
            line: self.line,
            column: self.column,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.code,
            self.location(),
            self.message
        )?;
        for note in &self.notes {
            write!(f, "\n  {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_location_and_notes() {
        let d = Diagnostic {
            line: 25,
            column: Some(1),
            severity: Severity::Error,
            code: "dead-reachable",
            message: "`fresh` is still reachable".into(),
            notes: vec!["path: occupant -.rep-> fresh".into()],
        };
        let s = d.to_string();
        assert!(s.starts_with("error[dead-reachable] line 25:1: "));
        assert!(s.contains("\n  path: occupant"));
    }

    #[test]
    fn severity_ordering_matches_lattice() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }
}
