//! Abstract collection: a faithful mirror of the runtime mark/sweep
//! cycle over the abstract heap.
//!
//! The mirror replicates the tracer's LIFO worklist (including the
//! on-path sentinel entries that carry root-to-object paths), the
//! assertion engine's ownership phases with their deferred/pending
//! queues, report-once suppression, force-true edge severing, the sweep
//! in allocation order, and the generational minor cycle — including the
//! runtime's stale-mark behavior when `minor-gc` runs without
//! generational mode.  Divergence here is a soundness bug, so every
//! branch corresponds to a branch in `gca_core::engine` /
//! `gca_collector`; the differential test in `tests/check.rs` holds the
//! two implementations together.

use super::domain::{AbsState, ObjId, Reaction};

/// One step on a root-to-object abstract path: the object plus the field
/// index *through which it was reached* (None for roots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PathStep {
    /// The object at this step.
    pub obj: ObjId,
    /// Field index in the *previous* step's class, `None` at a root.
    pub field: Option<usize>,
}

/// Which assertion a predicted violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PredKind {
    /// `assert-dead` object still reachable.
    DeadReachable,
    /// `assert-unshared` object reached through a second edge.
    Shared,
    /// `assert-instances` limit exceeded.
    InstanceLimit,
    /// Ownee not reachable through its owner.
    NotOwned,
    /// Another owner's ownee reached during a direct owner scan.
    ImproperOwnership,
    /// Strict owner lifetime: ownee survived its owner's death.
    OwneeOutlivedOwner,
}

/// A predicted violation; `summary` uses the runtime
/// `Violation::summary()` format so the differential harness can match
/// predictions against actual reports verbatim.
#[derive(Debug, Clone)]
pub(crate) struct PredViolation {
    /// Assertion kind.
    pub kind: PredKind,
    /// Runtime-format summary string, e.g. `dead-reachable Session`.
    pub summary: String,
    /// The violating object, when the violation names one.
    pub obj: Option<ObjId>,
    /// Abstract root-to-object path (empty when path tracking is off or
    /// the kind carries no path).
    pub path: Vec<PathStep>,
}

/// What one abstract major collection produced.
#[derive(Debug)]
pub(crate) struct CycleOutcome {
    /// Predicted violations, in engine emission order.
    pub violations: Vec<PredViolation>,
    /// The ownership table was non-empty when the cycle began — the
    /// analyzer downgrades this cycle's verdicts to **may**.
    pub ownership_active: bool,
}

/// A collection event triggered implicitly by the allocator.
#[derive(Debug)]
pub(crate) enum Collection {
    /// A full mark/sweep cycle.
    Major(CycleOutcome),
    /// A nursery-only cycle (strict-owner-lifetime reports only).
    Minor(Vec<PredViolation>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Ownership(usize),
    Deferred(usize),
    Root,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    obj: ObjId,
    field: Option<usize>,
    on_path: bool,
}

/// Per-cycle tracer + engine mirror state.
struct Cycle {
    engine: bool,
    path_mode: bool,
    force_true: bool,
    report_once: bool,
    phase: Phase,
    stack: Vec<Entry>,
    deferred: Vec<(ObjId, usize)>,
    pending: Vec<(ObjId, Vec<PathStep>)>,
    dead_edges: Vec<(ObjId, usize)>,
    violations: Vec<PredViolation>,
}

impl Cycle {
    fn current_path(&self, tip: ObjId, tip_field: Option<usize>) -> Vec<PathStep> {
        if !self.path_mode {
            return Vec::new();
        }
        let mut path: Vec<PathStep> = self
            .stack
            .iter()
            .filter(|e| e.on_path)
            .map(|e| PathStep {
                obj: e.obj,
                field: e.field,
            })
            .collect();
        path.push(PathStep {
            obj: tip,
            field: tip_field,
        });
        path
    }

    fn parent_edge(&self, tip_field: Option<usize>) -> Option<(ObjId, usize)> {
        let field = tip_field?;
        let parent = self.stack.iter().rev().find(|e| e.on_path)?;
        Some((parent.obj, field))
    }

    fn should_report(&self, st: &mut AbsState, obj: ObjId) -> bool {
        if !self.report_once {
            return true;
        }
        if st.objects[obj].reported {
            return false;
        }
        st.objects[obj].reported = true;
        true
    }

    fn class_name(&self, st: &AbsState, obj: ObjId) -> String {
        st.classes[st.objects[obj].class].name.clone()
    }

    /// Mirror of `AssertionEngine::visit_new`; returns whether to
    /// descend into the object's children.
    fn visit_new(&mut self, st: &mut AbsState, obj: ObjId, tip_field: Option<usize>) -> bool {
        if !self.engine {
            return true;
        }
        let cls = st.objects[obj].class;
        if st.classes[cls].limit.is_some() {
            st.classes[cls].gc_count += 1;
        }
        if st.objects[obj].dead {
            if self.should_report(st, obj) {
                let path = self.current_path(obj, tip_field);
                let summary = format!("dead-reachable {}", st.classes[cls].name);
                self.violations.push(PredViolation {
                    kind: PredKind::DeadReachable,
                    summary,
                    obj: Some(obj),
                    path,
                });
            }
            if self.force_true {
                if let Some(edge) = self.parent_edge(tip_field) {
                    self.dead_edges.push(edge);
                }
            }
        }
        match self.phase {
            Phase::Ownership(cur) | Phase::Deferred(cur) => {
                if st.objects[obj].ownee {
                    if st.ownership[cur].ownees.contains(&obj) {
                        st.objects[obj].owned = true;
                        self.deferred.push((obj, cur));
                    } else if matches!(self.phase, Phase::Ownership(_)) {
                        // Disjointness violated: a direct owner scan
                        // reached another owner's ownee (no report-once
                        // suppression, mirroring the engine).
                        let summary = format!("improper-ownership {}", self.class_name(st, obj));
                        let path = self.current_path(obj, tip_field);
                        self.violations.push(PredViolation {
                            kind: PredKind::ImproperOwnership,
                            summary,
                            obj: Some(obj),
                            path,
                        });
                    } else {
                        // Below a deferred ownee: hold the verdict until
                        // every ownership chain has run.
                        let path = self.current_path(obj, tip_field);
                        self.pending.push((obj, path));
                    }
                    return false;
                }
                // Other owners are scanned independently.
                !st.objects[obj].owner
            }
            Phase::Root => {
                if st.objects[obj].ownee && !st.objects[obj].owned && self.should_report(st, obj) {
                    let summary = format!("not-owned {}", self.class_name(st, obj));
                    let path = self.current_path(obj, tip_field);
                    self.violations.push(PredViolation {
                        kind: PredKind::NotOwned,
                        summary,
                        obj: Some(obj),
                        path,
                    });
                }
                true
            }
        }
    }

    /// Mirror of `AssertionEngine::visit_marked`.
    fn visit_marked(&mut self, st: &mut AbsState, obj: ObjId, tip_field: Option<usize>) {
        if !self.engine {
            return;
        }
        if let Phase::Ownership(cur) | Phase::Deferred(cur) = self.phase {
            if st.objects[obj].ownee
                && !st.objects[obj].owned
                && st.ownership[cur].ownees.contains(&obj)
            {
                st.objects[obj].owned = true;
                self.deferred.push((obj, cur));
            }
        }
        if st.objects[obj].unshared && self.should_report(st, obj) {
            let summary = format!("shared {}", self.class_name(st, obj));
            let path = self.current_path(obj, tip_field);
            self.violations.push(PredViolation {
                kind: PredKind::Shared,
                summary,
                obj: Some(obj),
                path,
            });
        }
        if st.objects[obj].dead && self.force_true {
            if let Some(edge) = self.parent_edge(tip_field) {
                self.dead_edges.push(edge);
            }
        }
    }

    fn push_children_of(&mut self, st: &AbsState, obj: ObjId) {
        for i in 0..st.objects[obj].fields.len() {
            if let Some(child) = st.objects[obj].fields[i] {
                self.stack.push(Entry {
                    obj: child,
                    field: Some(i),
                    on_path: false,
                });
            }
        }
    }

    fn drain(&mut self, st: &mut AbsState) {
        while let Some(e) = self.stack.pop() {
            if e.on_path {
                continue;
            }
            if st.objects[e.obj].mark {
                self.visit_marked(st, e.obj, e.field);
                continue;
            }
            st.objects[e.obj].mark = true;
            if !self.visit_new(st, e.obj, e.field) {
                continue;
            }
            if self.path_mode {
                self.stack.push(Entry {
                    obj: e.obj,
                    field: e.field,
                    on_path: true,
                });
            }
            self.push_children_of(st, e.obj);
        }
    }
}

/// Mirror of `OwnershipTable::retire` + the strict-owner-lifetime
/// reporting in `gc_end` / `after_minor`.
pub(crate) fn retire(
    st: &mut AbsState,
    dead_ownees: &[ObjId],
    dead_owners: &[ObjId],
    violations: &mut Vec<PredViolation>,
) {
    for entry in &mut st.ownership {
        entry.ownees.retain(|o| !dead_ownees.contains(o));
    }
    let entries = std::mem::take(&mut st.ownership);
    for entry in entries {
        if dead_owners.contains(&entry.owner) {
            for &ownee in &entry.ownees {
                st.objects[ownee].ownee = false;
                if st.config.strict_owner_lifetime {
                    let summary = format!(
                        "ownee-outlived-owner {}",
                        st.classes[st.objects[ownee].class].name
                    );
                    violations.push(PredViolation {
                        kind: PredKind::OwneeOutlivedOwner,
                        summary,
                        obj: Some(ownee),
                        path: Vec::new(),
                    });
                }
            }
        } else {
            st.ownership.push(entry);
        }
    }
}

/// One abstract major collection: ownership phases, root scan, instance
/// limits, sweep, force-true severing, retirement, and the VM epilogue
/// (promotion, region purge, halt latch).
pub(crate) fn collect_major(st: &mut AbsState) -> CycleOutcome {
    let engine = !st.config.base_mode;
    let ownership_active = engine && !st.ownership.is_empty();
    let mut cy = Cycle {
        engine,
        path_mode: engine && st.config.path_tracking,
        force_true: engine && st.config.reaction == Reaction::ForceTrue,
        report_once: st.config.report_once,
        phase: Phase::Root,
        stack: Vec::new(),
        deferred: Vec::new(),
        pending: Vec::new(),
        dead_edges: Vec::new(),
        violations: Vec::new(),
    };
    // gc_begin: per-cycle instance counters reset.
    for c in &mut st.classes {
        c.gc_count = 0;
    }
    // Phase 1: scan from each owner's children, then drain the deferred
    // ownee queue (LIFO), then resolve the held-back verdicts.
    if ownership_active {
        for idx in 0..st.ownership.len() {
            cy.phase = Phase::Ownership(idx);
            cy.push_children_of(st, st.ownership[idx].owner);
            cy.drain(st);
        }
        while let Some((ownee, idx)) = cy.deferred.pop() {
            cy.phase = Phase::Deferred(idx);
            cy.push_children_of(st, ownee);
            cy.drain(st);
        }
        let pending = std::mem::take(&mut cy.pending);
        for (obj, path) in pending {
            if st.objects[obj].owned {
                continue;
            }
            if cy.should_report(st, obj) {
                let summary = format!("not-owned {}", cy.class_name(st, obj));
                cy.violations.push(PredViolation {
                    kind: PredKind::NotOwned,
                    summary,
                    obj: Some(obj),
                    path,
                });
            }
        }
        cy.phase = Phase::Root;
    }
    // Phase 2: the root scan — all roots pushed, then one drain (LIFO,
    // so the last root is scanned first, exactly like the runtime).
    for r in st.gather_roots() {
        cy.stack.push(Entry {
            obj: r,
            field: None,
            on_path: false,
        });
    }
    cy.drain(st);
    // trace_done: instance limits fire every cycle while exceeded (no
    // report-once suppression).  The runtime iterates classes in
    // tracking order; only the multiset of violations is observable.
    if engine {
        for ci in 0..st.classes.len() {
            if let Some(lim) = st.classes[ci].limit {
                if st.classes[ci].gc_count > lim.limit {
                    let summary = format!(
                        "instance-limit {} {}>{}",
                        st.classes[ci].name, st.classes[ci].gc_count, lim.limit
                    );
                    cy.violations.push(PredViolation {
                        kind: PredKind::InstanceLimit,
                        summary,
                        obj: None,
                        path: Vec::new(),
                    });
                }
            }
        }
    }
    // Sweep in allocation order: free the unmarked, clear per-cycle
    // bits on survivors, record swept ownees/owners for retirement.
    let mut swept_ownees = Vec::new();
    let mut swept_owners = Vec::new();
    for id in 0..st.objects.len() {
        if !st.objects[id].alive {
            continue;
        }
        if st.objects[id].mark {
            st.objects[id].mark = false;
            st.objects[id].owned = false;
        } else {
            if engine {
                if st.objects[id].ownee {
                    swept_ownees.push(id);
                }
                if st.objects[id].owner {
                    swept_owners.push(id);
                }
            }
            st.occupied -= st.objects[id].total_words();
            st.objects[id].alive = false;
        }
    }
    // gc_end: force-true severs the recorded pinning edges, then dead
    // ownership participants are retired.
    if engine {
        if cy.force_true {
            for (parent, field) in cy.dead_edges.drain(..) {
                if st.objects[parent].alive {
                    st.objects[parent].fields[field] = None;
                }
            }
        }
        retire(st, &swept_ownees, &swept_owners, &mut cy.violations);
    }
    // VM epilogue: promote nursery survivors after a major, purge dead
    // region-queue entries, latch the halt reaction.
    if st.config.generational.is_some() {
        let young = std::mem::take(&mut st.young);
        for y in young {
            if st.objects[y].alive {
                st.objects[y].old = true;
            }
        }
        for o in &mut st.objects {
            o.remembered = false;
        }
        st.remembered.clear();
        st.minors_since_major = 0;
    }
    st.region_queue.retain(|&o| st.objects[o].alive);
    if engine && st.config.reaction == Reaction::Halt && !cy.violations.is_empty() {
        st.halted = true;
    }
    CycleOutcome {
        violations: cy.violations,
        ownership_active,
    }
}

/// One abstract minor collection.  No assertions are checked during the
/// nursery trace; only the sweep hook feeds ownership retirement, so the
/// sole possible reports are strict-owner-lifetime ones.  Faithfully
/// reproduces the runtime's stale-mark quirk: reached non-old, non-young
/// objects keep their mark bit until the next major sweep clears it.
pub(crate) fn collect_minor(st: &mut AbsState) -> Vec<PredViolation> {
    let engine = !st.config.base_mode;
    let young = std::mem::take(&mut st.young);
    let remembered = std::mem::take(&mut st.remembered);
    let mut stack: Vec<ObjId> = st.gather_roots();
    for r in remembered {
        if st.objects[r].alive {
            st.objects[r].remembered = false;
            for i in 0..st.objects[r].fields.len() {
                if let Some(child) = st.objects[r].fields[i] {
                    stack.push(child);
                }
            }
        }
    }
    let mut touched_old = Vec::new();
    while let Some(obj) = stack.pop() {
        if st.objects[obj].mark {
            continue;
        }
        st.objects[obj].mark = true;
        if st.objects[obj].old {
            // Old objects bound the nursery trace; their marks are
            // cleared below.
            touched_old.push(obj);
            continue;
        }
        for i in 0..st.objects[obj].fields.len() {
            if let Some(child) = st.objects[obj].fields[i] {
                stack.push(child);
            }
        }
    }
    // Sweep the nursery only: marked survivors are promoted, the rest
    // are freed (feeding the engine's sweep hook).
    let mut swept_ownees = Vec::new();
    let mut swept_owners = Vec::new();
    for y in young {
        if !st.objects[y].alive {
            continue;
        }
        if st.objects[y].mark {
            st.objects[y].mark = false;
            st.objects[y].owned = false;
            st.objects[y].old = true;
        } else if st.objects[y].old {
            // Duplicate young entry already promoted this cycle.
        } else {
            if engine {
                if st.objects[y].ownee {
                    swept_ownees.push(y);
                }
                if st.objects[y].owner {
                    swept_owners.push(y);
                }
            }
            st.occupied -= st.objects[y].total_words();
            st.objects[y].alive = false;
        }
    }
    for o in touched_old {
        st.objects[o].mark = false;
        st.objects[o].owned = false;
    }
    let mut violations = Vec::new();
    if engine {
        retire(st, &swept_ownees, &swept_owners, &mut violations);
    }
    st.minors_since_major += 1;
    st.region_queue.retain(|&o| st.objects[o].alive);
    violations
}

/// Mirror of `Vm::collect_auto`: the collection(s) the allocator runs
/// when the budget is exceeded.
pub(crate) fn collect_auto(st: &mut AbsState) -> Vec<Collection> {
    let mut events = Vec::new();
    match st.config.generational {
        None => events.push(Collection::Major(collect_major(st))),
        Some(every) => {
            if st.minors_since_major >= every {
                events.push(Collection::Major(collect_major(st)));
            } else {
                events.push(Collection::Minor(collect_minor(st)));
                if st.occupied * 4 > st.config.heap_budget * 3 {
                    events.push(Collection::Major(collect_major(st)));
                }
            }
        }
    }
    events
}
