//! Machine-readable renderings of [`Analysis`](super::Analysis) and
//! [`SuggestOutcome`](super::SuggestOutcome) for `gca check --json` and
//! `gca suggest --json`.
//!
//! Hand-rolled (the workspace takes no serialization dependency): a
//! small escaper plus literal structure.  The shape is pinned by a
//! golden test in `tests/check.rs` — treat it as a public contract.
//! Unlike the classic transcript, the JSON report carries *all*
//! diagnostics, including the Note-severity advisory lints that
//! [`Analysis::render`](super::Analysis::render) omits.

use super::{Analysis, DomainKind, Severity, SuggestOutcome};

/// JSON string escaping per RFC 8259 (quote, backslash, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!("[{}]", inner.join(","))
}

/// Renders a full `gca check` report as a single JSON object.
pub fn analysis_to_json(a: &Analysis, domain: DomainKind) -> String {
    let domain = match domain {
        DomainKind::AccessGraph => "access-graph",
        DomainKind::PerSite => "per-site",
    };
    let errors = a
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = a
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let notes = a
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    let diags: Vec<String> = a
        .diagnostics
        .iter()
        .map(|d| {
            let severity = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
                Severity::Note => "note",
            };
            let column = d
                .column
                .map_or_else(|| "null".to_owned(), |c| c.to_string());
            format!(
                "{{\"line\":{},\"column\":{},\"severity\":\"{}\",\"code\":\"{}\",\"message\":\"{}\",\"notes\":{}}}",
                d.line,
                column,
                severity,
                esc(d.code),
                esc(&d.message),
                string_array(&d.notes),
            )
        })
        .collect();
    let collections: Vec<String> = a
        .collections
        .iter()
        .map(|c| {
            format!(
                "{{\"line\":{},\"explicit\":{},\"minor\":{},\"summarized\":{},\"must\":{},\"may\":{}}}",
                c.line,
                c.explicit,
                c.minor,
                c.summarized,
                string_array(&c.must),
                string_array(&c.may),
            )
        })
        .collect();
    format!(
        "{{\"tool\":\"gca-check\",\"domain\":\"{}\",\"errors\":{},\"warnings\":{},\"notes\":{},\"diagnostics\":[{}],\"collections\":[{}]}}",
        domain,
        errors,
        warnings,
        notes,
        diags.join(","),
        collections.join(","),
    )
}

/// Renders a full `gca suggest` report as a single JSON object.
pub fn suggest_to_json(o: &SuggestOutcome) -> String {
    let refused = o
        .refused
        .as_ref()
        .map_or_else(|| "null".to_owned(), |r| format!("\"{}\"", esc(r)));
    let suggestions: Vec<String> = o
        .suggestions
        .iter()
        .map(|s| {
            format!(
                "{{\"beforeLine\":{},\"text\":\"{}\",\"reason\":\"{}\"}}",
                s.before_line,
                esc(&s.text),
                esc(&s.reason),
            )
        })
        .collect();
    format!(
        "{{\"tool\":\"gca-suggest\",\"refused\":{},\"rejected\":{},\"suggestions\":[{}]}}",
        refused,
        o.rejected,
        suggestions.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn check_json_is_well_formed_for_a_clean_script() {
        let a = super::super::analyze("class T\nnew a T\nroot a\ngc\n").unwrap();
        let j = analysis_to_json(&a, DomainKind::AccessGraph);
        assert!(j.starts_with("{\"tool\":\"gca-check\""), "{j}");
        assert!(j.contains("\"errors\":0"), "{j}");
        assert!(j.contains("\"summarized\":false"), "{j}");
    }
}
