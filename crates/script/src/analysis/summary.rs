//! The access-graph summary collector: abstract collections over heaps
//! that contain summary nodes.
//!
//! Once a `repeat`/`proc` body has been summarized, a single abstract
//! object may stand for unboundedly many runtime objects and the
//! analyzer can no longer replay the collector cycle exactly (flag state
//! such as report-once suppression diverges after the first summarized
//! iteration).  This module implements the sound degraded cycle:
//!
//! * **may-reachability** is a BFS over *all* edges — strong fields plus
//!   the weak [`summary_edges`](super::domain::AbsObj::summary_edges) —
//!   seeded from every root, global, and stale-marked object.  It
//!   over-approximates runtime reachability at every iteration of the
//!   summarized loop, so:
//! * objects that are **not** may-reachable are provably unreachable and
//!   are swept (this is where looping scripts earn Safe verdicts the
//!   per-site domain cannot give), and
//! * every assertion that *could* fire on a may-reachable object becomes
//!   a **may** verdict — the must-set of a summary collection is always
//!   empty, keeping the differential soundness contract trivially.
//!
//! Under [`graph_blind`](super::domain::AbsState::graph_blind) (the
//! per-site strawman domain, or a fixpoint that failed to converge) the
//! BFS is replaced by "every live object is may-reachable": no Safe
//! verdicts, nothing swept — the behavior the PR 4 domain would have had
//! if it met a loop.

use super::collect::{retire, CycleOutcome, PathStep, PredKind, PredViolation};
use super::domain::{AbsState, ObjId};

/// May-reachability over the access graph: `(reached, parent-edge)` per
/// object.  The parent chain reconstructs a witness path for Figure-1
/// style notes.
fn may_reach(st: &AbsState) -> (Vec<bool>, Vec<Option<(ObjId, usize)>>) {
    let n = st.objects.len();
    let mut may = vec![false; n];
    let mut parent: Vec<Option<(ObjId, usize)>> = vec![None; n];
    if st.graph_blind || st.havoc {
        for (i, o) in st.objects.iter().enumerate() {
            may[i] = o.alive;
        }
        return (may, parent);
    }
    let mut queue: Vec<ObjId> = st.gather_roots();
    // Stale mark bits (a `minor-gc` without generational mode) keep an
    // object alive through the next major at runtime: treat them as
    // roots so the sweep below stays an under-approximation of nothing.
    for (i, o) in st.objects.iter().enumerate() {
        if o.alive && o.mark {
            queue.push(i);
        }
    }
    while let Some(o) = queue.pop() {
        if may[o] || !st.objects[o].alive {
            continue;
        }
        may[o] = true;
        for (idx, f) in st.objects[o].fields.iter().enumerate() {
            if let Some(c) = f {
                if !may[*c] && st.objects[*c].alive {
                    parent[*c] = Some((o, idx));
                    queue.push(*c);
                }
            }
        }
        for &(idx, c) in &st.objects[o].summary_edges {
            if !may[c] && st.objects[c].alive {
                parent[c] = Some((o, idx));
                queue.push(c);
            }
        }
    }
    (may, parent)
}

/// Witness path root→`obj` from the BFS parent chain (empty when path
/// tracking is off or the domain is blind).
fn witness_path(st: &AbsState, parent: &[Option<(ObjId, usize)>], obj: ObjId) -> Vec<PathStep> {
    if !st.config.path_tracking || st.graph_blind || st.havoc {
        return Vec::new();
    }
    let mut rev = vec![PathStep { obj, field: None }];
    let mut cur = obj;
    while let Some((p, f)) = parent[cur] {
        rev.last_mut().expect("non-empty").field = Some(f);
        rev.push(PathStep {
            obj: p,
            field: None,
        });
        cur = p;
        if rev.len() > st.objects.len() {
            break;
        }
    }
    rev.reverse();
    rev
}

/// One summary major collection: may-verdicts for every assertion that
/// could fire, a sound sweep of provably unreachable objects, and a
/// conservative epilogue (no report-once latching, no force-true
/// severing, no halt latch — all uncertainty-increasing reactions are
/// modeled by the verdicts being *may*).
pub(crate) fn collect_summary(st: &mut AbsState) -> CycleOutcome {
    st.occupancy_unknown = true;
    let engine = !st.config.base_mode;
    let ownership_active = engine && !st.ownership.is_empty();
    let (may, parent) = may_reach(st);
    let mut violations = Vec::new();
    if engine {
        for (i, &reachable) in may.iter().enumerate() {
            if !st.objects[i].alive || !reachable {
                continue;
            }
            let class_name = st.classes[st.objects[i].class].name.clone();
            if st.objects[i].dead {
                violations.push(PredViolation {
                    kind: PredKind::DeadReachable,
                    summary: format!("dead-reachable {class_name}"),
                    obj: Some(i),
                    path: witness_path(st, &parent, i),
                });
            }
            if st.objects[i].unshared && (st.incoming(i) >= 2 || st.objects[i].summary) {
                violations.push(PredViolation {
                    kind: PredKind::Shared,
                    summary: format!("shared {class_name}"),
                    obj: Some(i),
                    path: witness_path(st, &parent, i),
                });
            }
            if ownership_active && st.objects[i].ownee {
                // Ownership reachability through summary nodes is where
                // the model earns the least trust: any reachable ownee
                // may fail the owner-scan.
                violations.push(PredViolation {
                    kind: PredKind::NotOwned,
                    summary: format!("not-owned {class_name}"),
                    obj: Some(i),
                    path: witness_path(st, &parent, i),
                });
            }
        }
        // Instance limits: may-reachable per-class counts (summary nodes
        // count once; the verdict is may, so undercounting only costs
        // recall, never soundness).
        for ci in 0..st.classes.len() {
            if let Some(lim) = st.classes[ci].limit {
                let count = st
                    .objects
                    .iter()
                    .enumerate()
                    .filter(|(i, o)| o.alive && may[*i] && o.class == ci)
                    .count() as u32;
                if count > lim.limit {
                    violations.push(PredViolation {
                        kind: PredKind::InstanceLimit,
                        summary: format!(
                            "instance-limit {} {}>{}",
                            st.classes[ci].name, count, lim.limit
                        ),
                        obj: None,
                        path: Vec::new(),
                    });
                }
            }
        }
    }
    // Sweep: only provably unreachable objects die.  Under a blind
    // domain nothing is provably unreachable, so nothing is swept.
    let mut swept_ownees = Vec::new();
    let mut swept_owners = Vec::new();
    for (i, &reachable) in may.iter().enumerate() {
        if !st.objects[i].alive {
            continue;
        }
        if reachable {
            st.objects[i].mark = false;
            st.objects[i].owned = false;
        } else {
            if engine {
                if st.objects[i].ownee {
                    swept_ownees.push(i);
                }
                if st.objects[i].owner {
                    swept_owners.push(i);
                }
            }
            st.objects[i].alive = false;
        }
    }
    if engine {
        retire(st, &swept_ownees, &swept_owners, &mut violations);
    }
    if st.config.generational.is_some() {
        let young = std::mem::take(&mut st.young);
        for y in young {
            if st.objects[y].alive {
                st.objects[y].old = true;
            }
        }
        for o in &mut st.objects {
            o.remembered = false;
        }
        st.remembered.clear();
        st.minors_since_major = 0;
    }
    st.region_queue.retain(|&o| st.objects[o].alive);
    CycleOutcome {
        violations,
        ownership_active,
    }
}

/// One summary minor collection: promote-everything, sweep-nothing — a
/// sound over-approximation that makes no claims (minors report nothing
/// in summary mode).
pub(crate) fn collect_minor_summary(st: &mut AbsState) -> Vec<PredViolation> {
    if st.config.generational.is_some() {
        let young = std::mem::take(&mut st.young);
        for y in young {
            if st.objects[y].alive {
                st.objects[y].old = true;
            }
        }
        for o in &mut st.objects {
            o.remembered = false;
        }
        st.remembered.clear();
    } else {
        // Stale-mark quirk, over-approximated: a non-generational minor
        // leaves mark bits on everything it reaches, pinning those
        // objects through the next major.  Mark every live object so
        // the following summary major claims nothing Safe about them.
        for o in &mut st.objects {
            if o.alive {
                o.mark = true;
            }
        }
    }
    st.minors_since_major += 1;
    Vec::new()
}
