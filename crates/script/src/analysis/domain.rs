//! The abstract heap domain: an allocation-site points-to graph.
//!
//! Because `.gca` scripts are straight-line (no branches, no loops, no
//! input), the abstract domain never needs to join two states — the
//! forward interpretation tracks a single abstract heap whose objects are
//! allocation sites, whose edges are the ref fields written so far, and
//! whose root set mirrors the mutator stack and global list.  Flow
//! sensitivity is exactness here: every command transforms the one state.
//! The *abstraction* shows up at presentation time instead, as the
//! Safe < May < Must verdict lattice (see `super`): whenever the
//! ownership subsystem is active during a collection the analyzer
//! deliberately downgrades its predictions to **may**, keeping the
//! must-set sound by construction.

use std::collections::HashMap;

/// Index of an abstract object (an allocation site occurrence).
pub(crate) type ObjId = usize;

/// Header words charged per object, mirroring the runtime heap layout.
pub(crate) const HEADER_WORDS: usize = 2;

/// An `assert-instances` limit registered against a class.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InstanceLimit {
    /// Maximum allowed marked instances per collection.
    pub limit: u32,
    /// Line of the registering `assert-instances`.
    pub line: usize,
}

/// A declared class in the abstract program.
#[derive(Debug, Clone)]
pub(crate) struct AbsClass {
    /// Class name as written in the script.
    pub name: String,
    /// Declared ref-field names, in order.
    pub fields: Vec<String>,
    /// `assert-instances` limit, if one was registered.
    pub limit: Option<InstanceLimit>,
    /// Marked-instance count for the collection in progress.
    pub gc_count: u32,
}

/// An abstract object: one `new` occurrence plus its evolving state.
#[derive(Debug, Clone)]
pub(crate) struct AbsObj {
    /// Index into [`AbsState::classes`].
    pub class: usize,
    /// Variable name the object was bound to at allocation.
    pub site_var: String,
    /// 1-based line of the allocating `new`.
    pub site_line: usize,
    /// Ref fields, `None` = null.
    pub fields: Vec<Option<ObjId>>,
    /// Data words (size accounting only).
    pub size_words: usize,
    /// Still allocated (not yet swept).
    pub alive: bool,
    /// `assert-dead` flag (sticky, like the runtime DEAD bit).
    pub dead: bool,
    /// Line of the `assert-dead`, for provenance notes.
    pub dead_line: Option<usize>,
    /// `assert-unshared` flag (sticky).
    pub unshared: bool,
    /// Line of the `assert-unshared`.
    pub unshared_line: Option<usize>,
    /// Currently registered as an ownee.
    pub ownee: bool,
    /// Currently registered as an owner.
    pub owner: bool,
    /// Violation already reported for this object (report-once mode).
    pub reported: bool,
    /// Promoted to the old generation.
    pub old: bool,
    /// In the remembered set (write barrier hit).
    pub remembered: bool,
    /// Mark bit; per-collection, but see the stale-mark quirk in
    /// [`super::collect`].
    pub mark: bool,
    /// OWNED bit; per-collection.
    pub owned: bool,
    /// Allocated inside the region active at its `new`, and that region
    /// has not ended yet (used by the region-escape lint).
    pub region: bool,
    /// Line of the `start-region` whose region allocated this object
    /// (sticky provenance for diagnostics).
    pub region_site: Option<usize>,
    /// A bounded access-graph summary node: this object stands for
    /// *every* allocation its site performs inside a summarized
    /// `repeat`/`proc` body, so field stores to it are weak updates.
    pub summary: bool,
    /// Weak field edges accumulated on a summary node: `(field, target)`
    /// pairs that *some* concretization may hold in addition to
    /// [`AbsObj::fields`].  Never removed — reachability through a
    /// summary node is an over-approximation by construction.
    pub summary_edges: Vec<(usize, ObjId)>,
}

impl AbsObj {
    /// Total heap words the object occupies.
    pub fn total_words(&self) -> usize {
        HEADER_WORDS + self.fields.len() + self.size_words
    }
}

/// One owner's entry in the abstract ownership table.
#[derive(Debug, Clone)]
pub(crate) struct OwnerEntry {
    /// The owning object.
    pub owner: ObjId,
    /// Its registered ownees.
    pub ownees: Vec<ObjId>,
}

/// Mirror of the runtime violation reactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Reaction {
    /// Record and continue.
    Log,
    /// Record and refuse further mutation.
    Halt,
    /// For lifetime violations, sever the pinning edge.
    ForceTrue,
}

/// Mirror of the runtime VM configuration knobs the analyzer models.
#[derive(Debug, Clone)]
pub(crate) struct AbsConfig {
    /// Heap budget in words.
    pub heap_budget: usize,
    /// Whether the heap grows instead of reporting out-of-memory.
    pub grow: bool,
    /// Report each violating object at most once, ever.
    pub report_once: bool,
    /// Record root-to-object paths (affects force-true edge severing).
    pub path_tracking: bool,
    /// Report ownees that survive their owner's death.
    pub strict_owner_lifetime: bool,
    /// `Some(n)` = generational mode, full GC every `n` minors.
    pub generational: Option<usize>,
    /// Semispace copying backend. Deliberately *unused* by the abstract
    /// interpretation: copying changes when (at which address) objects
    /// live, not whether — verdict prediction is collector-agnostic. The
    /// field exists so the analyzer validates the key (and its conflict
    /// with `generational`) exactly like the interpreter.
    pub copying: bool,
    /// Card-marking minors (vs the remembered-set side list). Deliberately
    /// *unused* like [`AbsConfig::copying`]: the two strategies reclaim and
    /// promote identical object sets, so verdict prediction is
    /// strategy-agnostic. The field exists so the analyzer validates the
    /// key exactly like the interpreter.
    pub minor_strategy_cards: bool,
    /// Global violation reaction.
    pub reaction: Reaction,
    /// Base mode: assertion hooks disabled.
    pub base_mode: bool,
}

impl Default for AbsConfig {
    fn default() -> AbsConfig {
        AbsConfig {
            heap_budget: 1 << 20,
            grow: true,
            report_once: true,
            path_tracking: true,
            strict_owner_lifetime: false,
            generational: None,
            copying: false,
            minor_strategy_cards: true,
            reaction: Reaction::Log,
            base_mode: false,
        }
    }
}

/// The whole abstract machine state threaded through the forward
/// interpretation.
#[derive(Debug, Default)]
pub(crate) struct AbsState {
    /// Modeled configuration.
    pub config: AbsConfig,
    /// Declared classes.
    pub classes: Vec<AbsClass>,
    /// Class name → index.
    pub class_by_name: HashMap<String, usize>,
    /// All abstract objects ever allocated, by id.
    pub objects: Vec<AbsObj>,
    /// Variable bindings (may alias, may be rebound).
    pub vars: HashMap<String, ObjId>,
    /// Global roots with the line that added them, in push order.
    pub globals: Vec<(ObjId, usize)>,
    /// Mutator stack roots with their provenance line; frames partition
    /// this by index.
    pub roots: Vec<(ObjId, usize)>,
    /// Frame boundaries: indices into `roots` at each `frame`.
    pub frames: Vec<usize>,
    /// Ownership table, in registration order.
    pub ownership: Vec<OwnerEntry>,
    /// Objects allocated since the last collection (generational young
    /// list), in allocation order.
    pub young: Vec<ObjId>,
    /// Remembered set, in barrier-hit order.
    pub remembered: Vec<ObjId>,
    /// Minor collections since the last major one.
    pub minors_since_major: usize,
    /// Whether a region is currently open, and its allocations.
    pub region_open: bool,
    /// Line of the active `start-region`.
    pub region_line: usize,
    /// Allocations of the active (or queued) regions awaiting `all-dead`.
    pub region_queue: Vec<ObjId>,
    /// Occupied heap words.
    pub occupied: usize,
    /// VM refused further mutation after a halt-reaction violation.
    pub halted: bool,
    /// Any command has started the VM (config gate mirror).
    pub started: bool,
    /// Ownership was ever active during a collection: the analyzer's
    /// exactness flag for expectation predictions is cleared.
    pub exact: bool,
    /// Summary node per allocation-site line, created while a block is
    /// being summarized and reused on every later round/iteration.
    pub summary_by_line: HashMap<usize, ObjId>,
    /// A block was ever summarized: collections switch permanently to
    /// the over-approximating access-graph collector (flag state such as
    /// report-once suppression can no longer be tracked exactly).
    pub summarized_ever: bool,
    /// The per-site strawman domain is active (or a fixpoint failed to
    /// converge): collections lose field-edge reasoning and treat every
    /// live object as may-reachable.
    pub graph_blind: bool,
    /// A work cap tripped mid-replay, so the abstract heap may be
    /// missing edges: collections must not claim Safe for anything.
    pub havoc: bool,
    /// Occupancy can no longer be tracked exactly (a summarized loop's
    /// total allocation is unknown): implicit-collection and
    /// out-of-memory prediction are disabled.
    pub occupancy_unknown: bool,
    /// Violations predicted for the last *explicit* `gc`.
    pub last_report: Vec<super::collect::PredViolation>,
    /// All predicted violations, cumulative (mirror of the violation log).
    pub violation_log: Vec<super::collect::PredViolation>,
}

impl AbsState {
    /// Fresh pre-start state.  The mutator begins with its base frame
    /// already on the stack, mirroring `Mutator::new`.
    pub fn new() -> AbsState {
        AbsState {
            exact: true,
            frames: vec![0],
            ..AbsState::default()
        }
    }

    /// The object bound to `var`, if any.
    pub fn lookup(&self, var: &str) -> Option<ObjId> {
        self.vars.get(var).copied()
    }

    /// Incoming reference count for `obj`: heap edges from live objects
    /// (weak summary edges included) plus stack roots plus globals.
    /// Drives the `unshared-with-two-stores` lint.
    pub fn incoming(&self, obj: ObjId) -> usize {
        let heap_edges = self
            .objects
            .iter()
            .filter(|o| o.alive)
            .flat_map(|o| o.fields.iter())
            .filter(|f| **f == Some(obj))
            .count();
        let weak_edges = self
            .objects
            .iter()
            .filter(|o| o.alive)
            .flat_map(|o| o.summary_edges.iter())
            .filter(|(_, t)| *t == obj)
            .count();
        let roots = self.roots.iter().filter(|(r, _)| *r == obj).count();
        let globals = self.globals.iter().filter(|(g, _)| *g == obj).count();
        heap_edges + weak_edges + roots + globals
    }

    /// `label (Class, line N)` for messages and abstract paths.
    pub fn describe(&self, obj: ObjId) -> String {
        let o = &self.objects[obj];
        format!(
            "{}: {} (line {})",
            o.site_var, self.classes[o.class].name, o.site_line
        )
    }

    /// The roots in the exact order the runtime scans them: globals in
    /// push order, then the mutator stack bottom-up.
    pub fn gather_roots(&self) -> Vec<ObjId> {
        self.globals
            .iter()
            .map(|(g, _)| *g)
            .chain(self.roots.iter().map(|(r, _)| *r))
            .collect()
    }

    /// Root provenance: line where `obj` was most recently rooted (stack
    /// or global), if it is directly rooted right now.
    pub fn rooted_at(&self, obj: ObjId) -> Option<usize> {
        self.roots
            .iter()
            .chain(self.globals.iter())
            .filter(|(r, _)| *r == obj)
            .map(|(_, line)| *line)
            .next_back()
    }
}
