//! Commands and the line parser.

use crate::error::{ScriptError, ScriptErrorKind};

/// A reference-valued operand: a variable or the null literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A bound variable.
    Var(String),
    /// The `null` literal.
    Null,
}

/// One script command. See the crate docs for the surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Command {
    /// `config <key> <value>` — VM configuration; must precede execution.
    Config {
        /// Configuration key (`heap`, `grow`, `reaction`, `report-once`,
        /// `generational`, `strict-owner-lifetime`, `path-tracking`).
        key: String,
        /// Raw value token.
        value: String,
    },
    /// `class <Name> [field...]` — declare a class with named ref fields.
    Class {
        /// Class name.
        name: String,
        /// Reference-field names.
        fields: Vec<String>,
    },
    /// `new <var> <Class> [data_words]` — allocate and bind.
    New {
        /// Variable to bind.
        var: String,
        /// Declared class.
        class: String,
        /// Data payload words.
        data_words: usize,
    },
    /// `set <var>.<field> <target>` — write a reference field.
    Set {
        /// Receiver variable.
        var: String,
        /// Field name on the receiver's class.
        field: String,
        /// New value.
        value: Target,
    },
    /// `data <var> <index> <value>` — write a data word.
    Data {
        /// Receiver variable.
        var: String,
        /// Data-word index.
        index: usize,
        /// Value.
        value: u64,
    },
    /// `root <var>` — add to the current frame.
    Root(String),
    /// `frame` — push a root frame.
    Frame,
    /// `end-frame` — pop the top root frame.
    EndFrame,
    /// `global <var>` / `unglobal <var>`.
    Global(String),
    /// Remove a global root.
    Unglobal(String),
    /// `assert-dead <var>`.
    AssertDead(String),
    /// `assert-unshared <var>`.
    AssertUnshared(String),
    /// `assert-instances <Class> <limit>`.
    AssertInstances {
        /// Tracked class.
        class: String,
        /// Instance limit.
        limit: u32,
    },
    /// `assert-owned-by <owner> <ownee>`.
    AssertOwnedBy {
        /// Owner variable.
        owner: String,
        /// Ownee variable.
        ownee: String,
    },
    /// `release-ownee <var>`.
    ReleaseOwnee(String),
    /// `start-region`.
    StartRegion,
    /// `all-dead` — end the region, asserting everything allocated in it
    /// dead.
    AllDead,
    /// `gc` — run a (major) collection.
    Gc,
    /// `minor-gc` — run a minor collection (generational mode).
    MinorGc,
    /// `probe <var>` — print the path to the object, if reachable.
    Probe(String),
    /// `print` — print the last report and its violations.
    Print,
    /// `histogram` — print live objects aggregated by class.
    Histogram,
    /// `stats` — print heap/GC statistics.
    Stats,
    /// `expect-violations <n>` — violations in the last `gc` report.
    ExpectViolations(usize),
    /// `expect-total-violations <n>` — cumulative violations so far.
    ExpectTotalViolations(usize),
    /// `expect-live <var>` / `expect-dead <var>`.
    ExpectLive(String),
    /// Expect the object to have been reclaimed.
    ExpectDead(String),
    /// `expect-instances <Class> <n>` — live instances right now (by
    /// probe).
    ExpectInstances {
        /// Probed class.
        class: String,
        /// Expected live count.
        count: u32,
    },
    /// `repeat <n>` — execute the block up to the matching `end-repeat`
    /// exactly `n` times.
    Repeat(usize),
    /// `end-repeat` — close the innermost open `repeat` block.
    EndRepeat,
    /// `proc <name>` — begin recording a procedure body (not executed).
    Proc(String),
    /// `end-proc` — close the innermost open `proc` definition.
    EndProc,
    /// `call <name>` — execute a recorded procedure.  Recursion is
    /// allowed; a call at the configured `call-depth` bound is a no-op,
    /// so recursive procedures terminate deterministically.
    Call(String),
    /// `copy <dst> <src>` — bind `dst` to the object `src` refers to
    /// (variable aliasing; the only way a loop can chain a structure).
    Copy {
        /// Variable to (re)bind.
        dst: String,
        /// Existing binding to alias.
        src: String,
    },
}

fn err(line: usize, kind: ScriptErrorKind) -> ScriptError {
    ScriptError::new(line, kind)
}

fn bad(line: usize, msg: &str) -> ScriptError {
    err(line, ScriptErrorKind::BadArguments(msg.to_owned()))
}

/// 1-based column of the `n`-th whitespace-separated token of `line`,
/// counted in characters so the column matches what an editor shows.
pub(crate) fn token_column(line: &str, n: usize) -> Option<usize> {
    let mut tokens = 0usize;
    let mut in_token = false;
    for (i, ch) in line.chars().enumerate() {
        if ch.is_whitespace() {
            in_token = false;
        } else if !in_token {
            in_token = true;
            if tokens == n {
                return Some(i + 1);
            }
            tokens += 1;
        }
    }
    None
}

fn parse_target(tok: &str) -> Target {
    if tok == "null" {
        Target::Null
    } else {
        Target::Var(tok.to_owned())
    }
}

/// Parses one line into a command; returns `Ok(None)` for blank lines and
/// comments.
///
/// # Errors
///
/// [`ScriptErrorKind::UnknownCommand`] or
/// [`ScriptErrorKind::BadArguments`] with the given line number.
pub fn parse_line(line_no: usize, line: &str) -> Result<Option<Command>, ScriptError> {
    let line = match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    };
    let toks: Vec<&str> = line.split_whitespace().collect();
    let Some((&cmd, args)) = toks.split_first() else {
        return Ok(None);
    };
    // Any error that did not pin a more specific token points at the
    // command word, so every parse diagnostic carries a token + column.
    parse_tokens(line_no, line, cmd, args)
        .map(Some)
        .map_err(|e| {
            if e.token.is_none() {
                e.with_token(cmd, token_column(line, 0))
            } else {
                e
            }
        })
}

fn parse_tokens(
    line_no: usize,
    line: &str,
    cmd: &str,
    args: &[&str],
) -> Result<Command, ScriptError> {
    let command = match cmd {
        "config" => match args {
            [key, value] => Command::Config {
                key: (*key).to_owned(),
                value: (*value).to_owned(),
            },
            _ => return Err(bad(line_no, "config <key> <value>")),
        },
        "class" => match args.split_first() {
            Some((&name, fields)) => Command::Class {
                name: name.to_owned(),
                fields: fields.iter().map(|s| (*s).to_owned()).collect(),
            },
            None => return Err(bad(line_no, "class <Name> [field...]")),
        },
        "new" => match args {
            [var, class] => Command::New {
                var: (*var).to_owned(),
                class: (*class).to_owned(),
                data_words: 0,
            },
            [var, class, words] => Command::New {
                var: (*var).to_owned(),
                class: (*class).to_owned(),
                data_words: words.parse().map_err(|_| {
                    bad(line_no, "data words must be an integer")
                        .with_token(*words, token_column(line, 3))
                })?,
            },
            _ => return Err(bad(line_no, "new <var> <Class> [data_words]")),
        },
        "set" => match args {
            [lhs, value] => {
                let (var, field) = lhs
                    .split_once('.')
                    .ok_or_else(|| bad(line_no, "set <var>.<field> <value>"))?;
                Command::Set {
                    var: var.to_owned(),
                    field: field.to_owned(),
                    value: parse_target(value),
                }
            }
            _ => return Err(bad(line_no, "set <var>.<field> <value>")),
        },
        "data" => match args {
            [var, index, value] => Command::Data {
                var: (*var).to_owned(),
                index: index.parse().map_err(|_| {
                    bad(line_no, "index must be an integer")
                        .with_token(*index, token_column(line, 2))
                })?,
                value: value.parse().map_err(|_| {
                    bad(line_no, "value must be an integer")
                        .with_token(*value, token_column(line, 3))
                })?,
            },
            _ => return Err(bad(line_no, "data <var> <index> <value>")),
        },
        "root" => one_var(line_no, args, "root <var>", Command::Root)?,
        "frame" => no_args(line_no, args, "frame", Command::Frame)?,
        "end-frame" => no_args(line_no, args, "end-frame", Command::EndFrame)?,
        "global" => one_var(line_no, args, "global <var>", Command::Global)?,
        "unglobal" => one_var(line_no, args, "unglobal <var>", Command::Unglobal)?,
        "assert-dead" => one_var(line_no, args, "assert-dead <var>", Command::AssertDead)?,
        "assert-unshared" => one_var(
            line_no,
            args,
            "assert-unshared <var>",
            Command::AssertUnshared,
        )?,
        "assert-instances" => match args {
            [class, limit] => Command::AssertInstances {
                class: (*class).to_owned(),
                limit: limit.parse().map_err(|_| {
                    bad(line_no, "limit must be an integer")
                        .with_token(*limit, token_column(line, 2))
                })?,
            },
            _ => return Err(bad(line_no, "assert-instances <Class> <limit>")),
        },
        "assert-owned-by" => match args {
            [owner, ownee] => Command::AssertOwnedBy {
                owner: (*owner).to_owned(),
                ownee: (*ownee).to_owned(),
            },
            _ => return Err(bad(line_no, "assert-owned-by <owner> <ownee>")),
        },
        "release-ownee" => one_var(line_no, args, "release-ownee <var>", Command::ReleaseOwnee)?,
        "start-region" => no_args(line_no, args, "start-region", Command::StartRegion)?,
        "all-dead" => no_args(line_no, args, "all-dead", Command::AllDead)?,
        "gc" => no_args(line_no, args, "gc", Command::Gc)?,
        "minor-gc" => no_args(line_no, args, "minor-gc", Command::MinorGc)?,
        "probe" => one_var(line_no, args, "probe <var>", Command::Probe)?,
        "print" => no_args(line_no, args, "print", Command::Print)?,
        "histogram" => no_args(line_no, args, "histogram", Command::Histogram)?,
        "stats" => no_args(line_no, args, "stats", Command::Stats)?,
        "expect-violations" => match args {
            [n] => Command::ExpectViolations(n.parse().map_err(|_| {
                bad(line_no, "count must be an integer").with_token(*n, token_column(line, 1))
            })?),
            _ => return Err(bad(line_no, "expect-violations <n>")),
        },
        "expect-total-violations" => match args {
            [n] => Command::ExpectTotalViolations(n.parse().map_err(|_| {
                bad(line_no, "count must be an integer").with_token(*n, token_column(line, 1))
            })?),
            _ => return Err(bad(line_no, "expect-total-violations <n>")),
        },
        "repeat" => match args {
            [n] => Command::Repeat(n.parse().map_err(|_| {
                bad(line_no, "count must be an integer").with_token(*n, token_column(line, 1))
            })?),
            _ => return Err(bad(line_no, "repeat <n>")),
        },
        "end-repeat" => no_args(line_no, args, "end-repeat", Command::EndRepeat)?,
        "proc" => one_var(line_no, args, "proc <name>", Command::Proc)?,
        "end-proc" => no_args(line_no, args, "end-proc", Command::EndProc)?,
        "call" => one_var(line_no, args, "call <name>", Command::Call)?,
        "copy" => match args {
            [dst, src] => Command::Copy {
                dst: (*dst).to_owned(),
                src: (*src).to_owned(),
            },
            _ => return Err(bad(line_no, "copy <dst> <src>")),
        },
        "expect-live" => one_var(line_no, args, "expect-live <var>", Command::ExpectLive)?,
        "expect-dead" => one_var(line_no, args, "expect-dead <var>", Command::ExpectDead)?,
        "expect-instances" => match args {
            [class, count] => Command::ExpectInstances {
                class: (*class).to_owned(),
                count: count.parse().map_err(|_| {
                    bad(line_no, "count must be an integer")
                        .with_token(*count, token_column(line, 2))
                })?,
            },
            _ => return Err(bad(line_no, "expect-instances <Class> <n>")),
        },
        other => {
            return Err(err(
                line_no,
                ScriptErrorKind::UnknownCommand(other.to_owned()),
            ))
        }
    };
    Ok(command)
}

fn one_var(
    line_no: usize,
    args: &[&str],
    usage: &str,
    make: impl FnOnce(String) -> Command,
) -> Result<Command, ScriptError> {
    match args {
        [v] => Ok(make((*v).to_owned())),
        _ => Err(bad(line_no, usage)),
    }
}

fn no_args(
    line_no: usize,
    args: &[&str],
    usage: &str,
    cmd: Command,
) -> Result<Command, ScriptError> {
    if args.is_empty() {
        Ok(cmd)
    } else {
        Err(bad(line_no, usage))
    }
}

/// Parses a whole script into `(line_number, command)` pairs.
///
/// # Errors
///
/// The first parse error, tagged with its line.
pub fn parse_script(src: &str) -> Result<Vec<(usize, Command)>, ScriptError> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(cmd) = parse_line(i + 1, line)? {
            out.push((i + 1, cmd));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_blanks_skipped() {
        assert_eq!(parse_line(1, "").unwrap(), None);
        assert_eq!(parse_line(1, "   # just a comment").unwrap(), None);
        assert_eq!(
            parse_line(1, "gc # trailing comment").unwrap(),
            Some(Command::Gc)
        );
    }

    #[test]
    fn class_and_new() {
        assert_eq!(
            parse_line(1, "class Node next value").unwrap(),
            Some(Command::Class {
                name: "Node".into(),
                fields: vec!["next".into(), "value".into()]
            })
        );
        assert_eq!(
            parse_line(1, "new a Node 4").unwrap(),
            Some(Command::New {
                var: "a".into(),
                class: "Node".into(),
                data_words: 4
            })
        );
    }

    #[test]
    fn set_with_null_and_var() {
        assert_eq!(
            parse_line(1, "set a.next b").unwrap(),
            Some(Command::Set {
                var: "a".into(),
                field: "next".into(),
                value: Target::Var("b".into())
            })
        );
        assert_eq!(
            parse_line(1, "set a.next null").unwrap(),
            Some(Command::Set {
                var: "a".into(),
                field: "next".into(),
                value: Target::Null
            })
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_line(42, "frobnicate x").unwrap_err();
        assert_eq!(e.line, 42);
        assert!(matches!(e.kind, ScriptErrorKind::UnknownCommand(_)));

        let e = parse_line(7, "set a b").unwrap_err();
        assert_eq!(e.line, 7);
        assert!(matches!(e.kind, ScriptErrorKind::BadArguments(_)));

        let e = parse_line(3, "new a Node nope").unwrap_err();
        assert!(matches!(e.kind, ScriptErrorKind::BadArguments(_)));
    }

    #[test]
    fn errors_carry_tokens_and_columns() {
        // Unknown command: the command word itself, at its real column.
        let e = parse_line(42, "  frobnicate x").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("frobnicate"));
        assert_eq!(e.column, Some(3));
        assert!(e.to_string().starts_with("line 42:3: "));

        // Bad arity: falls back to the command word.
        let e = parse_line(7, "set a b").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("set"));
        assert_eq!(e.column, Some(1));

        // Bad integer: pins the offending operand, not the command.
        let e = parse_line(3, "new a Node nope").unwrap_err();
        assert_eq!(e.token.as_deref(), Some("nope"));
        assert_eq!(e.column, Some(12));
    }

    #[test]
    fn whole_script_parses_with_line_numbers() {
        let script = "class T f\n\n# build\nnew a T\nroot a\ngc\n";
        let cmds = parse_script(script).unwrap();
        let lines: Vec<usize> = cmds.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![1, 4, 5, 6]);
    }

    #[test]
    fn all_assertion_commands_parse() {
        for (src, ok) in [
            ("assert-dead a", true),
            ("assert-unshared a", true),
            ("assert-instances T 3", true),
            ("assert-owned-by a b", true),
            ("release-ownee b", true),
            ("start-region", true),
            ("all-dead", true),
            ("assert-instances T", false),
            ("assert-owned-by a", false),
        ] {
            assert_eq!(parse_line(1, src).is_ok(), ok, "{src}");
        }
    }

    #[test]
    fn structured_commands_parse() {
        assert_eq!(parse_line(1, "repeat 8").unwrap(), Some(Command::Repeat(8)));
        assert_eq!(
            parse_line(1, "end-repeat").unwrap(),
            Some(Command::EndRepeat)
        );
        assert_eq!(
            parse_line(1, "proc grow").unwrap(),
            Some(Command::Proc("grow".into()))
        );
        assert_eq!(parse_line(1, "end-proc").unwrap(), Some(Command::EndProc));
        assert_eq!(
            parse_line(1, "call grow").unwrap(),
            Some(Command::Call("grow".into()))
        );
        assert_eq!(
            parse_line(1, "copy prev cell").unwrap(),
            Some(Command::Copy {
                dst: "prev".into(),
                src: "cell".into()
            })
        );
        assert!(parse_line(1, "repeat many").is_err());
        assert!(parse_line(1, "repeat").is_err());
        assert!(parse_line(1, "copy a").is_err());
        assert!(parse_line(1, "call").is_err());
    }

    #[test]
    fn expectations_parse() {
        assert_eq!(
            parse_line(1, "expect-violations 3").unwrap(),
            Some(Command::ExpectViolations(3))
        );
        assert_eq!(
            parse_line(1, "expect-instances Node 32").unwrap(),
            Some(Command::ExpectInstances {
                class: "Node".into(),
                count: 32
            })
        );
        assert!(parse_line(1, "expect-violations many").is_err());
    }
}
