//! The script interpreter: executes commands against a [`Vm`].

use std::collections::HashMap;

use gc_assertions::{
    ClassId, CollectorKind, GcReport, MinorStrategy, Mode, ObjRef, Reaction, Vm, VmConfig,
};

use crate::ast::{parse_script, Command, Target};
use crate::error::{ScriptError, ScriptErrorKind};

/// Everything a script run produced: the printed lines and final state
/// summaries, for asserting on in tests or printing from the CLI.
#[derive(Debug, Default)]
pub struct Output {
    /// Lines the script emitted (`gc`, `probe`, `print` commands).
    pub lines: Vec<String>,
    /// Total violations across the run.
    pub total_violations: usize,
    /// Major collections performed.
    pub collections: u64,
    /// Minor collections performed.
    pub minor_collections: u64,
    /// One entry per explicit `gc` command, in execution order: the
    /// script line of the `gc` and the summaries of the violations that
    /// collection reported.  Loops and procedure calls append one entry
    /// per *dynamic* execution, so a `gc` inside `repeat 3` appears
    /// three times under the same line — this is what the differential
    /// soundness harness aligns the analyzer's predictions against.
    pub explicit_gcs: Vec<(usize, Vec<String>)>,
}

/// Which structured block an open [`Recording`] belongs to.
#[derive(Debug, Clone)]
enum BlockKind {
    /// `repeat <n>` … `end-repeat`: replay the body `n` times on close.
    Repeat { count: usize },
    /// `proc <name>` … `end-proc`: store the body for later `call`s.
    Proc { name: String },
}

/// A block body being recorded.  While a recording is open, commands are
/// buffered instead of executed; the matching `end-repeat`/`end-proc`
/// closes it and the body is replayed (repeat) or stored (proc).  Nested
/// blocks stay flat in the buffer — replay re-records them naturally.
#[derive(Debug)]
struct Recording {
    kind: BlockKind,
    /// Line of the opening `repeat`/`proc`, for unclosed-block errors.
    line: usize,
    /// Openers nested inside the body: `true` for `repeat`, `false` for
    /// `proc`.  Used to match each `end-*` against the right opener.
    open: Vec<bool>,
    body: Vec<(usize, Command)>,
}

#[derive(Debug, Clone)]
struct ClassDecl {
    id: ClassId,
    fields: Vec<String>,
}

/// The interpreter: owns the VM and the script's variable bindings.
///
/// # Example
///
/// ```
/// use gca_script::Interpreter;
///
/// let out = Interpreter::run_script(
///     "class T\nnew a T\nassert-dead a\ngc\nexpect-violations 0\nexpect-dead a\n",
/// )
/// .unwrap();
/// assert_eq!(out.total_violations, 0);
/// assert_eq!(out.collections, 1);
/// ```
#[derive(Debug)]
pub struct Interpreter {
    config: VmConfig,
    vm: Option<Vm>,
    vars: HashMap<String, ObjRef>,
    classes: HashMap<String, ClassDecl>,
    last_report: Option<GcReport>,
    output: Output,
    /// The block currently being recorded, if a `repeat`/`proc` is open.
    recording: Option<Recording>,
    /// Procedure bodies by name, recorded by `proc` … `end-proc`.
    procs: HashMap<String, Vec<(usize, Command)>>,
    /// Current dynamic `call` nesting depth.
    call_depth: usize,
    /// Depth bound: a `call` at this depth is a silent no-op, which is
    /// what makes unconditionally recursive procedures terminate.
    call_limit: usize,
}

/// Default `call` depth bound; override with `config call-depth <n>`.
const DEFAULT_CALL_LIMIT: usize = 16;

impl Interpreter {
    /// Creates an interpreter with the default VM configuration (tweak it
    /// with `config` commands before the first executing command).
    pub fn new() -> Interpreter {
        Interpreter {
            config: VmConfig::builder().build(),
            vm: None,
            vars: HashMap::new(),
            classes: HashMap::new(),
            last_report: None,
            output: Output::default(),
            recording: None,
            procs: HashMap::new(),
            call_depth: 0,
            call_limit: DEFAULT_CALL_LIMIT,
        }
    }

    /// Parses and executes `src`, returning the collected output.
    ///
    /// # Errors
    ///
    /// The first parse error, VM error, or failed expectation — tagged
    /// with its script line.
    pub fn run_script(src: &str) -> Result<Output, ScriptError> {
        let mut interp = Interpreter::new();
        for (line, cmd) in parse_script(src)? {
            interp.execute(line, &cmd)?;
        }
        if let Some(rec) = &interp.recording {
            let msg = match &rec.kind {
                BlockKind::Repeat { .. } => {
                    "`repeat` opened here is never closed by `end-repeat`".to_owned()
                }
                BlockKind::Proc { name } => {
                    format!("`proc {name}` opened here is never closed by `end-proc`")
                }
            };
            return Err(ScriptError::new(
                rec.line,
                ScriptErrorKind::BadArguments(msg),
            ));
        }
        Ok(interp.finish())
    }

    /// Finishes the run, yielding the output.
    pub fn finish(mut self) -> Output {
        if let Some(vm) = &self.vm {
            self.output.total_violations = vm.violation_log().len();
            self.output.collections = vm.collections();
            self.output.minor_collections = vm.minor_collections();
        }
        self.output
    }

    fn vm(&mut self) -> &mut Vm {
        if self.vm.is_none() {
            self.vm = Some(Vm::new(self.config.clone()));
        }
        self.vm.as_mut().expect("just initialized")
    }

    /// The report from the most recent explicit `gc` command, if any.
    pub fn last_report(&self) -> Option<&GcReport> {
        self.last_report.as_ref()
    }

    /// The VM, if any command has started it yet.
    pub fn vm_ref(&self) -> Option<&Vm> {
        self.vm.as_ref()
    }

    /// Whether a `repeat`/`proc` recording is open — commands fed now
    /// are buffered, not executed.  (`gca suggest` uses this to tell
    /// top-level anchor steps from loop-body commands.)
    pub(crate) fn is_recording(&self) -> bool {
        self.recording.is_some()
    }

    /// The object currently bound to `name`, if any.
    pub(crate) fn binding(&self, name: &str) -> Option<ObjRef> {
        self.vars.get(name).copied()
    }

    /// The declared class id for `name`, if any.
    pub(crate) fn class_id(&self, name: &str) -> Option<ClassId> {
        self.classes.get(name).map(|c| c.id)
    }

    /// Mutable VM access for immediate heap probes, if started.
    pub(crate) fn vm_mut_opt(&mut self) -> Option<&mut Vm> {
        self.vm.as_mut()
    }

    fn var(&self, line: usize, name: &str) -> Result<ObjRef, ScriptError> {
        self.vars.get(name).copied().ok_or_else(|| {
            ScriptError::new(line, ScriptErrorKind::UnknownVariable(name.to_owned()))
        })
    }

    fn class(&self, line: usize, name: &str) -> Result<&ClassDecl, ScriptError> {
        self.classes
            .get(name)
            .ok_or_else(|| ScriptError::new(line, ScriptErrorKind::UnknownClass(name.to_owned())))
    }

    fn vm_err(line: usize) -> impl Fn(gc_assertions::VmError) -> ScriptError {
        move |e| ScriptError::new(line, ScriptErrorKind::Vm(e.to_string()))
    }

    fn expect_failed(line: usize, msg: String) -> ScriptError {
        ScriptError::new(line, ScriptErrorKind::ExpectationFailed(msg))
    }

    fn apply_config(&mut self, line: usize, key: &str, value: &str) -> Result<(), ScriptError> {
        if self.vm.is_some() {
            return Err(ScriptError::new(line, ScriptErrorKind::ConfigAfterStart));
        }
        let bad = |msg: &str| ScriptError::new(line, ScriptErrorKind::BadArguments(msg.to_owned()));
        let cfg = self.config.clone();
        self.config = match key {
            "heap" => cfg.heap_budget_words(value.parse().map_err(|_| bad("heap <words>"))?),
            "grow" => cfg.grow_on_oom(parse_bool(value).ok_or_else(|| bad("grow on|off"))?),
            "report-once" => {
                cfg.report_once(parse_bool(value).ok_or_else(|| bad("report-once on|off"))?)
            }
            "path-tracking" => {
                cfg.path_tracking(parse_bool(value).ok_or_else(|| bad("path-tracking on|off"))?)
            }
            "strict-owner-lifetime" => cfg.strict_owner_lifetime(
                parse_bool(value).ok_or_else(|| bad("strict-owner-lifetime on|off"))?,
            ),
            "generational" => {
                if cfg.collector == CollectorKind::Copying {
                    return Err(bad(
                        "the copying collector is full-heap; it cannot be generational",
                    ));
                }
                cfg.generational(value.parse().map_err(|_| bad("generational <n>"))?)
            }
            "collector" => {
                let kind = match value {
                    "mark-sweep" | "marksweep" => CollectorKind::MarkSweep,
                    "copying" if cfg.generational.is_some() => {
                        return Err(bad(
                            "the copying collector is full-heap; it cannot be generational",
                        ))
                    }
                    "copying" => CollectorKind::Copying,
                    _ => return Err(bad("collector mark-sweep|copying")),
                };
                cfg.collector(kind)
            }
            "minor-strategy" => cfg.minor_strategy(match value {
                "cards" => MinorStrategy::Cards,
                "remembered-set" => MinorStrategy::RememberedSet,
                _ => return Err(bad("minor-strategy cards|remembered-set")),
            }),
            "reaction" => cfg.reaction(match value {
                "log" => Reaction::Log,
                "halt" => Reaction::Halt,
                "force-true" => Reaction::ForceTrue,
                _ => return Err(bad("reaction log|halt|force-true")),
            }),
            "mode" => cfg.mode(match value {
                "base" => Mode::Base,
                "instrumented" => Mode::Instrumented,
                _ => return Err(bad("mode base|instrumented")),
            }),
            "gc-threads" => cfg.gc_threads(value.parse().map_err(|_| bad("gc-threads <workers>"))?),
            "call-depth" => {
                self.call_limit = value.parse().map_err(|_| bad("call-depth <n>"))?;
                cfg
            }
            _ => return Err(bad("unknown config key")),
        };
        Ok(())
    }

    /// Executes one command.
    ///
    /// While a `repeat`/`proc` block is open this *records* the command
    /// instead of running it; the matching `end-repeat` replays the body
    /// the requested number of times and `end-proc` stores it for later
    /// `call`s.  The method is therefore safe to feed one line at a time
    /// from a flat [`parse_script`] stream.
    ///
    /// # Errors
    ///
    /// VM errors, failed expectations, and block-structure errors
    /// (mismatched or stray `end-repeat`/`end-proc`, `call` of an
    /// undefined proc), tagged with `line`.
    pub fn execute(&mut self, line: usize, cmd: &Command) -> Result<(), ScriptError> {
        if self.recording.is_some() {
            return self.record(line, cmd);
        }
        match cmd {
            Command::Repeat(count) => {
                self.recording = Some(Recording {
                    kind: BlockKind::Repeat { count: *count },
                    line,
                    open: Vec::new(),
                    body: Vec::new(),
                });
                Ok(())
            }
            Command::Proc(name) => {
                self.recording = Some(Recording {
                    kind: BlockKind::Proc { name: name.clone() },
                    line,
                    open: Vec::new(),
                    body: Vec::new(),
                });
                Ok(())
            }
            Command::EndRepeat => Err(ScriptError::new(
                line,
                ScriptErrorKind::BadArguments("end-repeat without an open `repeat`".to_owned()),
            )),
            Command::EndProc => Err(ScriptError::new(
                line,
                ScriptErrorKind::BadArguments("end-proc without an open `proc`".to_owned()),
            )),
            Command::Call(name) => self.run_call(line, name),
            _ => self.execute_one(line, cmd),
        }
    }

    /// Buffers `cmd` into the open recording, closing the block when the
    /// matching `end-repeat`/`end-proc` arrives.
    fn record(&mut self, line: usize, cmd: &Command) -> Result<(), ScriptError> {
        let rec = self.recording.as_mut().expect("recording is open");
        let closes_repeat = match cmd {
            Command::Repeat(_) => {
                rec.open.push(true);
                rec.body.push((line, cmd.clone()));
                return Ok(());
            }
            Command::Proc(_) => {
                rec.open.push(false);
                rec.body.push((line, cmd.clone()));
                return Ok(());
            }
            Command::EndRepeat => true,
            Command::EndProc => false,
            _ => {
                rec.body.push((line, cmd.clone()));
                return Ok(());
            }
        };
        let mismatch = |line: usize, closes_repeat: bool| {
            let msg = if closes_repeat {
                "end-repeat cannot close a `proc` (use end-proc)"
            } else {
                "end-proc cannot close a `repeat` (use end-repeat)"
            };
            ScriptError::new(line, ScriptErrorKind::BadArguments(msg.to_owned()))
        };
        if let Some(opener_is_repeat) = rec.open.pop() {
            // Closes a block nested inside the body: keep recording.
            if opener_is_repeat != closes_repeat {
                return Err(mismatch(line, closes_repeat));
            }
            rec.body.push((line, cmd.clone()));
            return Ok(());
        }
        // Closes the outermost open block.
        if matches!(rec.kind, BlockKind::Repeat { .. }) != closes_repeat {
            return Err(mismatch(line, closes_repeat));
        }
        let rec = self.recording.take().expect("recording is open");
        match rec.kind {
            BlockKind::Repeat { count } => {
                for _ in 0..count {
                    for (l, c) in &rec.body {
                        self.execute(*l, c)?;
                    }
                }
            }
            BlockKind::Proc { name } => {
                self.procs.insert(name, rec.body);
            }
        }
        Ok(())
    }

    /// Runs a recorded procedure body; a call at the depth bound is a
    /// silent no-op, so unconditionally recursive procs terminate.
    fn run_call(&mut self, line: usize, name: &str) -> Result<(), ScriptError> {
        let body = self.procs.get(name).cloned().ok_or_else(|| {
            ScriptError::new(
                line,
                ScriptErrorKind::BadArguments(format!(
                    "call of undefined proc `{name}` (define it with `proc {name}` first)"
                )),
            )
        })?;
        if self.call_depth >= self.call_limit {
            return Ok(());
        }
        self.call_depth += 1;
        let mut result = Ok(());
        for (l, c) in &body {
            if let Err(e) = self.execute(*l, c) {
                result = Err(e);
                break;
            }
        }
        self.call_depth -= 1;
        result
    }

    /// Executes one non-structural command against the VM.
    fn execute_one(&mut self, line: usize, cmd: &Command) -> Result<(), ScriptError> {
        let ve = Self::vm_err(line);
        match cmd {
            Command::Config { key, value } => self.apply_config(line, key, value)?,
            Command::Class { name, fields } => {
                let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
                let id = self.vm().register_class(name, &refs);
                self.classes.insert(
                    name.clone(),
                    ClassDecl {
                        id,
                        fields: fields.clone(),
                    },
                );
            }
            Command::New {
                var,
                class,
                data_words,
            } => {
                let decl = self.class(line, class)?.clone();
                let m = self.vm().main();
                let nrefs = decl.fields.len();
                let obj = self
                    .vm()
                    .alloc(m, decl.id, nrefs, *data_words)
                    .map_err(&ve)?;
                self.vars.insert(var.clone(), obj);
            }
            Command::Set { var, field, value } => {
                let obj = self.var(line, var)?;
                let class_id = self.vm().class_of(obj).map_err(&ve)?;
                let decl = self
                    .classes
                    .values()
                    .find(|d| d.id == class_id)
                    .cloned()
                    .ok_or_else(|| {
                        ScriptError::new(
                            line,
                            ScriptErrorKind::UnknownClass(format!("{class_id:?}")),
                        )
                    })?;
                let idx = decl.fields.iter().position(|f| f == field).ok_or_else(|| {
                    let class_name = self
                        .classes
                        .iter()
                        .find(|(_, d)| d.id == class_id)
                        .map(|(n, _)| n.clone())
                        .unwrap_or_default();
                    ScriptError::new(
                        line,
                        ScriptErrorKind::UnknownField {
                            class: class_name,
                            field: field.clone(),
                        },
                    )
                })?;
                let value = match value {
                    Target::Null => ObjRef::NULL,
                    Target::Var(v) => self.var(line, v)?,
                };
                self.vm().set_field(obj, idx, value).map_err(&ve)?;
            }
            Command::Data { var, index, value } => {
                let obj = self.var(line, var)?;
                self.vm().set_data_word(obj, *index, *value).map_err(&ve)?;
            }
            Command::Root(var) => {
                let obj = self.var(line, var)?;
                let m = self.vm().main();
                self.vm().add_root(m, obj).map_err(&ve)?;
            }
            Command::Frame => {
                let m = self.vm().main();
                self.vm().push_frame(m).map_err(&ve)?;
            }
            Command::EndFrame => {
                let m = self.vm().main();
                self.vm().pop_frame(m).map_err(&ve)?;
            }
            Command::Global(var) => {
                let obj = self.var(line, var)?;
                self.vm().add_global(obj).map_err(&ve)?;
            }
            Command::Unglobal(var) => {
                let obj = self.var(line, var)?;
                self.vm().remove_global(obj).map_err(&ve)?;
            }
            Command::AssertDead(var) => {
                let obj = self.var(line, var)?;
                self.vm().assert_dead(obj).map_err(&ve)?;
            }
            Command::AssertUnshared(var) => {
                let obj = self.var(line, var)?;
                self.vm().assert_unshared(obj).map_err(&ve)?;
            }
            Command::AssertInstances { class, limit } => {
                let id = self.class(line, class)?.id;
                self.vm().assert_instances(id, *limit).map_err(&ve)?;
            }
            Command::AssertOwnedBy { owner, ownee } => {
                let o = self.var(line, owner)?;
                let e = self.var(line, ownee)?;
                self.vm().assert_owned_by(o, e).map_err(&ve)?;
            }
            Command::ReleaseOwnee(var) => {
                let obj = self.var(line, var)?;
                self.vm().release_ownee(obj).map_err(&ve)?;
            }
            Command::StartRegion => {
                let m = self.vm().main();
                self.vm().start_region(m).map_err(&ve)?;
            }
            Command::AllDead => {
                let m = self.vm().main();
                let n = self.vm().assert_alldead(m).map_err(&ve)?;
                self.output
                    .lines
                    .push(format!("all-dead: {n} object(s) asserted"));
            }
            Command::Copy { dst, src } => {
                let obj = self.var(line, src)?;
                self.vars.insert(dst.clone(), obj);
            }
            Command::Gc => {
                let report = self.vm().collect().map_err(&ve)?;
                self.output.lines.push(format!("gc: {report}"));
                self.output.explicit_gcs.push((
                    line,
                    report.violations.iter().map(|v| v.summary()).collect(),
                ));
                self.last_report = Some(report);
            }
            Command::MinorGc => {
                let stats = self.vm().collect_minor().map_err(&ve)?;
                self.output.lines.push(format!(
                    "minor-gc: {} promoted, {} swept",
                    stats.promoted, stats.objects_swept
                ));
            }
            Command::Probe(var) => {
                let obj = self.var(line, var)?;
                let path = self.vm().probe_path(obj).map_err(&ve)?;
                let msg = {
                    let vm = self.vm.as_ref().expect("vm started");
                    match path {
                        Some(p) => format!("probe {var}: {}", p.display(vm.registry())),
                        None => format!("probe {var}: unreachable"),
                    }
                };
                self.output.lines.push(msg);
            }
            Command::Print => {
                let vm = self.vm.as_ref();
                if let (Some(vm), Some(report)) = (vm, &self.last_report) {
                    self.output.lines.push(format!("report: {report}"));
                    for v in &report.violations {
                        self.output.lines.push(v.render(vm.registry()));
                    }
                } else {
                    self.output
                        .lines
                        .push("report: (no collection yet)".to_owned());
                }
            }
            Command::Histogram => {
                let vm = self.vm();
                let mut by_class: std::collections::HashMap<String, (usize, usize)> =
                    std::collections::HashMap::new();
                for (_, obj) in vm.heap().iter() {
                    let name = vm.heap().registry().name(obj.class()).to_owned();
                    let e = by_class.entry(name).or_default();
                    e.0 += 1;
                    e.1 += obj.size_words();
                }
                let mut rows: Vec<(String, usize, usize)> =
                    by_class.into_iter().map(|(k, (n, w))| (k, n, w)).collect();
                rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
                for (class, n, words) in rows {
                    self.output
                        .lines
                        .push(format!("histogram: {class} x{n} ({words} words)"));
                }
            }
            Command::Stats => {
                let vm = self.vm();
                let line = format!(
                    "stats: {} live objects, {} words occupied, {} allocations, {} majors, {} minors",
                    vm.heap().live_objects(),
                    vm.heap().occupied_words(),
                    vm.heap_stats().allocations,
                    vm.collections(),
                    vm.minor_collections(),
                );
                self.output.lines.push(line);
            }
            Command::ExpectViolations(n) => {
                let got = self
                    .last_report
                    .as_ref()
                    .map(|r| r.violations.len())
                    .unwrap_or(0);
                if got != *n {
                    return Err(Self::expect_failed(
                        line,
                        format!("expected {n} violation(s) in the last gc, got {got}"),
                    ));
                }
            }
            Command::ExpectTotalViolations(n) => {
                let got = self.vm().violation_log().len();
                if got != *n {
                    return Err(Self::expect_failed(
                        line,
                        format!("expected {n} total violation(s), got {got}"),
                    ));
                }
            }
            Command::ExpectLive(var) => {
                let obj = self.var(line, var)?;
                if !self.vm().is_live(obj) {
                    return Err(Self::expect_failed(
                        line,
                        format!("`{var}` was reclaimed but expected live"),
                    ));
                }
            }
            Command::ExpectDead(var) => {
                let obj = self.var(line, var)?;
                if self.vm().is_live(obj) {
                    return Err(Self::expect_failed(
                        line,
                        format!("`{var}` is live but expected reclaimed"),
                    ));
                }
            }
            Command::ExpectInstances { class, count } => {
                let id = self.class(line, class)?.id;
                let got = self.vm().probe_instances(id).map_err(&ve)?;
                if got != *count {
                    return Err(Self::expect_failed(
                        line,
                        format!("expected {count} live {class} instance(s), found {got}"),
                    ));
                }
            }
            Command::Repeat(_)
            | Command::EndRepeat
            | Command::Proc(_)
            | Command::EndProc
            | Command::Call(_) => {
                unreachable!("structured commands are dispatched by `execute`")
            }
        }
        Ok(())
    }
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter::new()
    }
}

fn parse_bool(s: &str) -> Option<bool> {
    match s {
        "on" | "true" | "yes" => Some(true),
        "off" | "false" | "no" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leak_scenario_end_to_end() {
        let out = Interpreter::run_script(
            "
class Registry entries
class Session user
class Cache hit
new r Registry
root r
new s Session
set r.entries s
new c Cache
root c
set c.hit s
set r.entries null
assert-dead s
gc
expect-violations 1
expect-live s
set c.hit null
gc
expect-dead s
",
        )
        .unwrap();
        assert_eq!(out.total_violations, 1);
        assert_eq!(out.collections, 2);
    }

    #[test]
    fn config_is_applied() {
        let out = Interpreter::run_script(
            "
config heap 128
config grow on
config generational 4
class T
new a T 8
minor-gc
",
        )
        .unwrap();
        assert_eq!(out.minor_collections, 1);
    }

    #[test]
    fn config_after_start_rejected() {
        let e = Interpreter::run_script("class T\nconfig heap 99\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.kind, ScriptErrorKind::ConfigAfterStart);
    }

    #[test]
    fn unknown_names_are_errors_with_lines() {
        let e = Interpreter::run_script("class T\nnew a U\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ScriptErrorKind::UnknownClass(_)));

        let e = Interpreter::run_script("class T f\nnew a T\nset a.g a\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(matches!(e.kind, ScriptErrorKind::UnknownField { .. }));

        let e = Interpreter::run_script("root nobody\n").unwrap_err();
        assert!(matches!(e.kind, ScriptErrorKind::UnknownVariable(_)));
    }

    #[test]
    fn expectations_fail_with_message() {
        let e =
            Interpreter::run_script("class T\nnew a T\nroot a\ngc\nexpect-dead a\n").unwrap_err();
        assert_eq!(e.line, 5);
        assert!(matches!(e.kind, ScriptErrorKind::ExpectationFailed(_)));
    }

    #[test]
    fn probe_prints_path_or_unreachable() {
        let out = Interpreter::run_script(
            "class T f\nnew a T\nroot a\nnew b T\nset a.f b\nprobe b\nset a.f null\nprobe b\n",
        )
        .unwrap();
        assert!(out.lines[0].contains("T"), "{:?}", out.lines);
        assert!(out.lines[1].contains("unreachable"));
    }

    #[test]
    fn frames_and_regions_work() {
        let out = Interpreter::run_script(
            "
class Buf
start-region
frame
new a Buf 8
root a
end-frame
all-dead
gc
expect-violations 0
",
        )
        .unwrap();
        assert!(out.lines.iter().any(|l| l.contains("all-dead: 1")));
    }

    #[test]
    fn histogram_and_stats_commands() {
        let out = Interpreter::run_script(
            "class Big\nclass Small\nnew a Big 20\nroot a\nnew b Small\nroot b\nnew c Small\nroot c\nhistogram\nstats\n",
        )
        .unwrap();
        let hist: Vec<&String> = out
            .lines
            .iter()
            .filter(|l| l.starts_with("histogram:"))
            .collect();
        assert_eq!(hist.len(), 2);
        assert!(hist[0].contains("Big x1 (22 words)"), "{hist:?}");
        assert!(hist[1].contains("Small x2"), "{hist:?}");
        let stats = out.lines.iter().find(|l| l.starts_with("stats:")).unwrap();
        assert!(stats.contains("3 live objects"), "{stats}");
        assert!(stats.contains("3 allocations"), "{stats}");
    }

    #[test]
    fn instance_expectation_probes_now() {
        Interpreter::run_script(
            "class S\nnew a S\nroot a\nnew b S\nroot b\nexpect-instances S 2\n",
        )
        .unwrap();
    }

    #[test]
    fn repeat_builds_a_list_via_copy() {
        // A loop chains ten cells head-first; nulling the head kills them
        // all, which `all-dead` then proves.
        let out = Interpreter::run_script(
            "
class Head next
class Cell next
new head Head
root head
copy prev head
repeat 10
new cell Cell
set prev.next cell
copy prev cell
end-repeat
expect-instances Cell 10
set head.next null
gc
expect-instances Cell 0
",
        )
        .unwrap();
        assert_eq!(out.total_violations, 0);
        assert_eq!(out.collections, 1);
    }

    #[test]
    fn repeat_zero_skips_the_body() {
        let out =
            Interpreter::run_script("class T\nrepeat 0\nnew a T\nroot a\nend-repeat\nstats\n")
                .unwrap();
        let stats = out.lines.iter().find(|l| l.starts_with("stats:")).unwrap();
        assert!(stats.contains("0 live objects"), "{stats}");
    }

    #[test]
    fn nested_repeats_multiply() {
        let out = Interpreter::run_script(
            "class T\nrepeat 3\nrepeat 4\nnew a T\nroot a\nend-repeat\nend-repeat\nexpect-instances T 12\n",
        )
        .unwrap();
        assert_eq!(out.total_violations, 0);
    }

    #[test]
    fn recursive_proc_is_depth_bounded() {
        // `grow` allocates one node then calls itself; the depth bound
        // turns the infinite recursion into exactly `call-depth` rounds.
        let out = Interpreter::run_script(
            "
config call-depth 5
class Node next
proc grow
new n Node
root n
call grow
end-proc
call grow
expect-instances Node 5
",
        )
        .unwrap();
        assert_eq!(out.total_violations, 0);
    }

    #[test]
    fn gc_inside_repeat_records_each_execution() {
        let out = Interpreter::run_script("class T\nrepeat 3\nnew a T\ngc\nend-repeat\n").unwrap();
        assert_eq!(out.collections, 3);
        assert_eq!(out.explicit_gcs.len(), 3);
        assert!(out
            .explicit_gcs
            .iter()
            .all(|(line, v)| *line == 4 && v.is_empty()));
    }

    #[test]
    fn block_structure_errors_are_line_tagged() {
        let e = Interpreter::run_script("class T\nend-repeat\n").unwrap_err();
        assert_eq!(e.line, 2);

        let e = Interpreter::run_script("repeat 2\nclass T\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("never closed"), "{e}");

        let e = Interpreter::run_script("proc p\nclass T\nend-repeat\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("end-proc"), "{e}");

        let e = Interpreter::run_script("class T\ncall nowhere\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("undefined proc"), "{e}");
    }

    #[test]
    fn assertions_and_frames_work_inside_loops() {
        // Frames, regions, and assert-dead all live inside a repeat body;
        // each iteration's temporary dies before the gc at iteration end.
        let out = Interpreter::run_script(
            "
class Buf
repeat 4
start-region
frame
new tmp Buf 8
root tmp
end-frame
all-dead
gc
expect-violations 0
end-repeat
",
        )
        .unwrap();
        assert_eq!(out.total_violations, 0);
        assert_eq!(out.collections, 4);
    }

    #[test]
    fn gc_threads_config_is_accepted() {
        let out =
            Interpreter::run_script("config gc-threads 2\nclass T\nnew a T\nroot a\ngc\n").unwrap();
        assert_eq!(out.collections, 1);
    }
}
