//! The `gca` script runner: executes and statically checks `.gca`
//! heap-scenario scripts.
//!
//! ```text
//! gca <script.gca>            # run a script file
//! gca -                       # read the script from stdin
//! gca check <script.gca>      # static analysis only: predict verdicts
//!     [--json]                # machine-readable report on stdout
//!     [--domain access-graph | per-site]
//! gca suggest <script.gca>    # propose verified assertion placements
//!     [--json]                # machine-readable placements
//!     [--apply]               # print the annotated script on stdout
//! gca --check <script.gca>    # pre-flight check, then run
//! gca soak [options]          # run a fleet soak (see `gca soak --help`)
//! ```
//!
//! Run mode exits 0 when the script (including its `expect-*`
//! assertions) succeeds; 1 with a line-tagged diagnostic otherwise.
//! Check mode exits 0 when no must-violate diagnostics are found, 2 when
//! at least one is, and 1 on usage, read, or parse errors.  The
//! `--check` pre-flight prints the analyzer's diagnostics to stderr and
//! then runs the script regardless (a predicted violation may be exactly
//! what the script expects); the exit status is the run's.
//!
//! Suggest mode proposes `assert-dead` / region-bracket /
//! `assert-instances` placements for an unannotated script, each
//! verified by splicing it in and re-running; it exits 0 whether or not
//! placements were found (an already-annotated script is declined with a
//! reason), and 1 on usage, read, parse, or runtime errors.
//!
//! Soak mode drives a sharded VM fleet through an open-loop arrival
//! schedule with GC assertions on, optionally injecting faults and
//! serving a live `/metrics` endpoint; it exits 0 only when every
//! injected fault was detected and every clean shard stayed clean.

use std::io::Read;
use std::process::ExitCode;

use gca_script::analysis::json;
use gca_script::{analyze_with, apply_suggestions, suggest, DomainKind, Interpreter};

const USAGE: &str =
    "usage: gca [check [--json] [--domain D] | suggest [--json | --apply] | --check] \
                     <script.gca | ->  |  gca soak [options]";

const SOAK_USAGE: &str = "\
usage: gca soak [options]
  --shards N            fleet size (default 4)
  --scenarios CSV       session-cache,social-graph,broker (round-robin)
  --phases SPEC         comma-separated NAME:MS:RPS or NAME:MS:FROM:TO
                        (default ramp:250:100:800,steady:500:800,spike:250:2400)
  --pacing MODE         wall | virtual (default wall)
  --seed N              base RNG seed (default 42)
  --fault KIND@SHARD[:AFTER]
                        inject KIND (leak|ownership|unshared|drift) into
                        SHARD after AFTER requests (default 100); repeatable
  --slo-ms N            request-latency SLO in milliseconds (default 10)
  --http PORT           serve /metrics, /healthz, /status on 127.0.0.1:PORT
  --jsonl-dir DIR       write shard-<i>.jsonl + merged fleet.jsonl
  --bench-out PATH      write the BENCH_soak.json summary
exit status: 0 when every injected fault was detected and every clean
shard stayed clean; 1 otherwise.";

/// Parses the `--phases` spec: `NAME:MS:RPS` or `NAME:MS:FROM:TO`.
fn parse_phases(spec: &str) -> Result<Vec<gca_soak::Phase>, String> {
    let mut phases = Vec::new();
    for part in spec.split(',') {
        let fields: Vec<&str> = part.split(':').collect();
        let err = || format!("bad phase {part:?} (want NAME:MS:RPS or NAME:MS:FROM:TO)");
        match fields.as_slice() {
            [name, ms, rps] => {
                let ms = ms.parse().map_err(|_| err())?;
                let rps = rps.parse().map_err(|_| err())?;
                phases.push(gca_soak::Phase::steady(name, ms, rps));
            }
            [name, ms, from, to] => {
                let ms = ms.parse().map_err(|_| err())?;
                let from = from.parse().map_err(|_| err())?;
                let to = to.parse().map_err(|_| err())?;
                phases.push(gca_soak::Phase::ramp(name, ms, from, to));
            }
            _ => return Err(err()),
        }
    }
    Ok(phases)
}

/// Parses one `--fault` spec: `KIND@SHARD[:AFTER]`.
fn parse_fault(spec: &str) -> Result<gca_soak::FaultPlan, String> {
    let err = || format!("bad fault {spec:?} (want KIND@SHARD[:AFTER])");
    let (kind, rest) = spec.split_once('@').ok_or_else(err)?;
    let kind = gca_soak::FaultKind::parse(kind).ok_or_else(err)?;
    let (shard, after) = match rest.split_once(':') {
        Some((s, a)) => (s.parse().map_err(|_| err())?, a.parse().map_err(|_| err())?),
        None => (rest.parse().map_err(|_| err())?, 100),
    };
    Ok(gca_soak::FaultPlan::new(shard, kind, after))
}

fn parse_soak_config(args: &[String]) -> Result<gca_soak::SoakConfig, String> {
    let mut config = gca_soak::SoakConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" {
            return Err(SOAK_USAGE.to_string());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{SOAK_USAGE}"))?;
        match flag.as_str() {
            "--shards" => {
                config.shards = value
                    .parse()
                    .map_err(|_| format!("bad --shards {value:?}"))?;
                if config.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--scenarios" => {
                config.scenarios = value
                    .split(',')
                    .map(|s| {
                        gca_workloads::scenario::ScenarioKind::parse(s)
                            .ok_or_else(|| format!("unknown scenario {s:?}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--phases" => config.phases = parse_phases(value)?,
            "--pacing" => {
                config.pacing = match value.as_str() {
                    "wall" => gca_soak::Pacing::Wall,
                    "virtual" => gca_soak::Pacing::Virtual,
                    _ => return Err(format!("bad --pacing {value:?} (wall | virtual)")),
                }
            }
            "--seed" => {
                config.seed = value.parse().map_err(|_| format!("bad --seed {value:?}"))?;
            }
            "--fault" => config.faults.push(parse_fault(value)?),
            "--slo-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("bad --slo-ms {value:?}"))?;
                config.slo_ns = ms * 1_000_000;
            }
            "--http" => {
                config.http_port =
                    Some(value.parse().map_err(|_| format!("bad --http {value:?}"))?);
            }
            "--jsonl-dir" => config.jsonl_dir = Some(value.into()),
            "--bench-out" => config.bench_out = Some(value.into()),
            _ => return Err(format!("unknown flag {flag}\n{SOAK_USAGE}")),
        }
    }
    for fault in &config.faults {
        if fault.shard >= config.shards {
            return Err(format!(
                "--fault targets shard {} but the fleet has {} shards",
                fault.shard, config.shards
            ));
        }
    }
    Ok(config)
}

fn soak(args: &[String]) -> ExitCode {
    let config = match parse_soak_config(args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let fleet = match gca_soak::Fleet::start(config) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error starting soak: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(addr) = fleet.http_addr() {
        println!("serving http://{addr}/metrics /healthz /status");
    }
    while !fleet.done() {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    match fleet.wait() {
        Ok(report) => {
            print!("{}", report.summary());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error finishing soak: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_source(path: &str) -> Result<String, ExitCode> {
    if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("error reading stdin: {e}");
            return Err(ExitCode::FAILURE);
        }
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("error reading {path}: {e}");
            ExitCode::FAILURE
        })
    }
}

/// Exit 0 = clean, 1 = parse error, 2 = must-violate present.
fn check(source: &str, domain: DomainKind, as_json: bool) -> ExitCode {
    match analyze_with(source, domain) {
        Ok(analysis) => {
            if as_json {
                println!("{}", json::analysis_to_json(&analysis, domain));
            } else {
                print!("{}", analysis.render());
            }
            if analysis.has_errors() {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `gca suggest`: propose placements (text or `--json`), or `--apply`
/// to print the spliced script. Exit 0 on success (including a
/// declined annotated script), 1 on any error.
fn suggest_cmd(source: &str, as_json: bool, apply: bool) -> ExitCode {
    match suggest(source) {
        Ok(outcome) => {
            if apply {
                print!("{}", apply_suggestions(source, &outcome.suggestions));
                if let Some(reason) = &outcome.refused {
                    eprintln!("suggest: declined — {reason}");
                }
            } else if as_json {
                println!("{}", json::suggest_to_json(&outcome));
            } else {
                print!("{}", outcome.render());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `check` / `suggest` flag lists: the one non-flag argument is
/// the script path; flags are validated per subcommand.
struct CheckArgs {
    path: String,
    json: bool,
    apply: bool,
    domain: DomainKind,
}

fn parse_check_args(cmd: &str, args: &[String]) -> Result<CheckArgs, String> {
    let mut path = None;
    let mut json = false;
    let mut apply = false;
    let mut domain = DomainKind::AccessGraph;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--apply" if cmd == "suggest" => apply = true,
            "--domain" if cmd == "check" => {
                domain = match it.next().map(String::as_str) {
                    Some("access-graph") => DomainKind::AccessGraph,
                    Some("per-site") => DomainKind::PerSite,
                    other => {
                        return Err(format!(
                            "--domain wants access-graph or per-site, got {other:?}"
                        ))
                    }
                };
            }
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(format!("unknown flag {flag} for gca {cmd}"));
            }
            p => {
                if path.replace(p.to_string()).is_some() {
                    return Err(format!("gca {cmd} takes exactly one script path"));
                }
            }
        }
    }
    if json && apply {
        return Err("--json and --apply are mutually exclusive".into());
    }
    let path = path.ok_or_else(|| format!("gca {cmd} needs a script path"))?;
    Ok(CheckArgs {
        path,
        json,
        apply,
        domain,
    })
}

fn run(source: &str) -> ExitCode {
    match Interpreter::run_script(source) {
        Ok(output) => {
            for line in &output.lines {
                println!("{line}");
            }
            println!(
                "ok: {} major + {} minor collection(s), {} violation(s)",
                output.collections, output.minor_collections, output.total_violations
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("soak") {
        return soak(&args[1..]);
    }
    match args.as_slice() {
        [cmd, rest @ ..] if (cmd == "check" || cmd == "suggest") && !rest.is_empty() => {
            let parsed = match parse_check_args(cmd, rest) {
                Ok(p) => p,
                Err(msg) => {
                    eprintln!("error: {msg}\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            };
            let source = match read_source(&parsed.path) {
                Ok(s) => s,
                Err(code) => return code,
            };
            if cmd == "check" {
                check(&source, parsed.domain, parsed.json)
            } else {
                suggest_cmd(&source, parsed.json, parsed.apply)
            }
        }
        [flag, path] if flag == "--check" => {
            let source = match read_source(path) {
                Ok(s) => s,
                Err(code) => return code,
            };
            // Pre-flight: diagnostics go to stderr so the run's output
            // stays clean on stdout.
            match analyze_with(&source, DomainKind::AccessGraph) {
                Ok(analysis) => eprint!("{}", analysis.render()),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            run(&source)
        }
        [path] if path != "check" && path != "--check" && path != "suggest" => {
            match read_source(path) {
                Ok(source) => run(&source),
                Err(code) => code,
            }
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
