//! The `gca` script runner: executes and statically checks `.gca`
//! heap-scenario scripts.
//!
//! ```text
//! gca <script.gca>          # run a script file
//! gca -                     # read the script from stdin
//! gca check <script.gca>    # static analysis only: predict verdicts
//! gca --check <script.gca>  # pre-flight check, then run
//! ```
//!
//! Run mode exits 0 when the script (including its `expect-*`
//! assertions) succeeds; 1 with a line-tagged diagnostic otherwise.
//! Check mode exits 0 when no must-violate diagnostics are found, 2 when
//! at least one is, and 1 on usage, read, or parse errors.  The
//! `--check` pre-flight prints the analyzer's diagnostics to stderr and
//! then runs the script regardless (a predicted violation may be exactly
//! what the script expects); the exit status is the run's.

use std::io::Read;
use std::process::ExitCode;

use gca_script::{analyze, Interpreter};

const USAGE: &str = "usage: gca [check | --check] <script.gca | ->";

fn read_source(path: &str) -> Result<String, ExitCode> {
    if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("error reading stdin: {e}");
            return Err(ExitCode::FAILURE);
        }
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("error reading {path}: {e}");
            ExitCode::FAILURE
        })
    }
}

/// Exit 0 = clean, 1 = parse error, 2 = must-violate present.
fn check(source: &str) -> ExitCode {
    match analyze(source) {
        Ok(analysis) => {
            print!("{}", analysis.render());
            if analysis.has_errors() {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(source: &str) -> ExitCode {
    match Interpreter::run_script(source) {
        Ok(output) => {
            for line in &output.lines {
                println!("{line}");
            }
            println!(
                "ok: {} major + {} minor collection(s), {} violation(s)",
                output.collections, output.minor_collections, output.total_violations
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, path] if cmd == "check" => match read_source(path) {
            Ok(source) => check(&source),
            Err(code) => code,
        },
        [flag, path] if flag == "--check" => {
            let source = match read_source(path) {
                Ok(s) => s,
                Err(code) => return code,
            };
            // Pre-flight: diagnostics go to stderr so the run's output
            // stays clean on stdout.
            match analyze(&source) {
                Ok(analysis) => eprint!("{}", analysis.render()),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            run(&source)
        }
        [path] if path != "check" && path != "--check" => match read_source(path) {
            Ok(source) => run(&source),
            Err(code) => code,
        },
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
