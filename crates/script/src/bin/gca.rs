//! The `gca` script runner: executes `.gca` heap-scenario scripts.
//!
//! ```text
//! gca <script.gca>     # run a script file
//! gca -                # read the script from stdin
//! ```
//!
//! Exit status 0 when the script (including its `expect-*` assertions)
//! succeeds; 1 with a line-tagged diagnostic otherwise.

use std::io::Read;
use std::process::ExitCode;

use gca_script::Interpreter;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = match args.as_slice() {
        [path] if path == "-" => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("error reading stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        }
        [path] => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("usage: gca <script.gca | ->");
            return ExitCode::FAILURE;
        }
    };

    match Interpreter::run_script(&source) {
        Ok(output) => {
            for line in &output.lines {
                println!("{line}");
            }
            println!(
                "ok: {} major + {} minor collection(s), {} violation(s)",
                output.collections, output.minor_collections, output.total_violations
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
