//! Card-scan minors ≡ remembered-set minors, differentially, over the
//! whole shipped script corpus.
//!
//! The two [`MinorStrategy`] implementations find hidden old→young edges
//! very differently — the remembered set is an exact write-barrier log of
//! old sources, while the card harvest rescans *every* live old object on
//! a dirty page — yet both must reclaim, promote, and report exactly the
//! same objects. This suite pins that equivalence bit-identically: same
//! output lines, same violation reports, same final live set (slot,
//! generation, class, size, and header flags per object). Only
//! scan-effort statistics (`remembered_scanned`, trace counters) may
//! differ, and those are deliberately excluded from script output.

use gca_script::{parse_script, Interpreter, Output};

/// Strips the wall-clock suffix (`…, cycle 24.085µs`) from report lines —
/// the only nondeterministic content the interpreter ever prints.
fn normalize(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|l| match l.find(", cycle ") {
            Some(pos) => l[..pos].to_owned(),
            None => l.clone(),
        })
        .collect()
}

/// Runs a script with a `minor-strategy` prefix and returns the script
/// output plus a canonical fingerprint of the final heap: one line per
/// live object and one per logged violation.
fn run_with_strategy(name: &str, src: &str, strategy: &str) -> (Output, Vec<String>) {
    let src = format!("config minor-strategy {strategy}\n{src}");
    let mut interp = Interpreter::new();
    for (line, cmd) in parse_script(&src).expect("parse") {
        interp
            .execute(line, &cmd)
            .unwrap_or_else(|e| panic!("{name} ({strategy}): {e}"));
    }
    let mut fingerprint = Vec::new();
    if let Some(vm) = interp.vm_ref() {
        let heap = vm.heap();
        for (r, obj) in heap.iter() {
            fingerprint.push(format!(
                "live {r:?} class={:?} words={} flags={:?}",
                obj.class(),
                obj.size_words(),
                heap.flags_of(r).expect("iterated object is live"),
            ));
        }
        for v in vm.violation_log() {
            fingerprint.push(format!("violation {}", v.render(vm.registry())));
        }
    }
    (interp.finish(), fingerprint)
}

#[test]
fn every_script_is_bit_identical_under_both_minor_strategies() {
    let dir = format!("{}/../../scripts", env!("CARGO_MANIFEST_DIR"));
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("scripts dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("gca") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        let (out_cards, heap_cards) = run_with_strategy(&name, &src, "cards");
        let (out_rs, heap_rs) = run_with_strategy(&name, &src, "remembered-set");
        assert_eq!(
            normalize(&out_cards.lines),
            normalize(&out_rs.lines),
            "{name}: output lines"
        );
        assert_eq!(
            out_cards.total_violations, out_rs.total_violations,
            "{name}: violation totals"
        );
        assert_eq!(
            out_cards.collections, out_rs.collections,
            "{name}: major collections"
        );
        assert_eq!(
            out_cards.minor_collections, out_rs.minor_collections,
            "{name}: minor collections"
        );
        assert_eq!(heap_cards, heap_rs, "{name}: final live set + violations");
        count += 1;
    }
    assert!(count >= 6, "expected the bundled scenarios, found {count}");
}

/// A minor-heavy scenario exercising exactly the case where the two
/// strategies scan different source sets: a promoted object on a page
/// shared with other old objects acquires a young reference, so the card
/// harvest rescans the whole page while the remembered set names one
/// object. Both must keep the young target alive and agree on everything
/// observable.
#[test]
fn shared_page_old_to_young_edges_agree() {
    let src = "\
config generational 100
class T f
new root T
root root
new a T
new b T
new c T
set root.f a
minor-gc
new y T
set a.f y
minor-gc
expect-live y
minor-gc
expect-live y
gc
expect-violations 0
";
    let (out_cards, heap_cards) = run_with_strategy("inline", src, "cards");
    let (out_rs, heap_rs) = run_with_strategy("inline", src, "remembered-set");
    assert_eq!(normalize(&out_cards.lines), normalize(&out_rs.lines));
    assert_eq!(heap_cards, heap_rs);
}
