//! `gca check` coverage for the shipped scenarios: a golden test pinning
//! the analyzer's diagnostics for every script under `scripts/`, plus
//! the differential soundness harness — the analyzer's must-violate set
//! must be a subset of the violations the interpreter actually reports
//! (zero false positives at error severity).

use gca_script::{analyze, parse_script, Analysis, Command, Interpreter, Severity};

fn script_path(name: &str) -> String {
    format!("{}/../../scripts/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn read_script(name: &str) -> String {
    let path = script_path(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn all_scripts() -> Vec<String> {
    let dir = format!("{}/../../scripts", env!("CARGO_MANIFEST_DIR"));
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir}: {e}"))
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".gca"))
        .collect();
    names.sort();
    names
}

fn check(name: &str) -> Analysis {
    analyze(&read_script(name)).unwrap_or_else(|e| panic!("{name}: parse error {e}"))
}

/// The golden transcript for every shipped script, pinned verbatim.
/// A new script must be added here — the `goldens_cover_every_script`
/// test enforces it.
const GOLDENS: &[(&str, &str)] = &[
    (
        "cache_leak.gca",
        "error[dead-reachable] line 21:1: session: Session (line 14) was asserted dead (line 20) but must still be reachable at this collection\n\
         \x20 path: cache: Cache (line 11) -.hit-> session: Session (line 14)\n\
         check: 2 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "checked_clean.gca",
        "check: 2 collection(s) analyzed, 0 error(s), 0 warning(s)\n",
    ),
    (
        "copying_backend.gca",
        "error[dead-reachable] line 24:1: session: Session (line 17) was asserted dead (line 23) but must still be reachable at this collection\n\
         \x20 path: cache: Cache (line 14) -.hit-> session: Session (line 17)\n\
         check: 2 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "force_true.gca",
        "error[dead-reachable] line 19:1: x: Obj (line 14) was asserted dead (line 17) but must still be reachable at this collection\n\
         \x20 path: h2: Holder (line 12) -.b-> x: Obj (line 14)\n\
         check: 2 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "generational.gca",
        "error[dead-reachable] line 21:1: victim: Obj (line 12) was asserted dead (line 14) but must still be reachable at this collection\n\
         \x20 path: holder: Holder (line 10) -.keep-> victim: Obj (line 12)\n\
         check: 3 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "ownership.gca",
        "warning[not-owned] line 26:1: y: Elem (line 17) may be reachable without passing through its owner at this collection\n\
         \x20 path: table: CacheTable (line 11) -.hit-> y: Elem (line 17)\n\
         check: 3 collection(s) analyzed, 0 error(s), 1 warning(s)\n",
    ),
    (
        "region_server.gca",
        "warning[region-escape] line 26:1: req2: Request (line 24) was allocated in the active region (region begun at line 22) but escapes into `audit`, which is outside it\n\
         error[dead-reachable] line 29:1: req2: Request (line 24) was asserted dead (line 28) but must still be reachable at this collection\n\
         \x20 path: audit: Audit (line 8) -.entry-> req2: Request (line 24)\n\
         \x20 allocated inside the region begun at line 22\n\
         check: 2 collection(s) analyzed, 1 error(s), 1 warning(s)\n",
    ),
    (
        "session_lru.gca",
        "error[dead-reachable] line 33:1: s2: Session (line 17) was asserted dead (line 32) but must still be reachable at this collection\n\
         \x20 path: sampler: Sampler (line 12) -.last-> s2: Session (line 17)\n\
         check: 3 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "singleton.gca",
        "error[instance-limit] line 23:1: instance limit must be exceeded: IndexSearcher 3>1 (asserted line 7)\n\
         check: 1 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "swap_leak.gca",
        "error[dead-reachable] line 25:1: fresh: SObject (line 15) was asserted dead (line 23) but must still be reachable at this collection\n\
         \x20 path: occupant: SObject (line 8) -.rep-> fresh_rep: Rep (line 16) -.outer-> fresh: SObject (line 15)\n\
         check: 1 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "unshared_tree.gca",
        "warning[unshared-with-two-stores] line 17:1: b: Node (line 10) now has 2 incoming references (asserted unshared at line 12)\n\
         error[unshared-violated] line 18:1: b: Node (line 10) was asserted unshared (line 12) but must be reachable through more than one reference\n\
         \x20 path: root: Node (line 6) -.l-> a: Node (line 8) -.l-> b: Node (line 10)\n\
         check: 2 collection(s) analyzed, 1 error(s), 1 warning(s)\n",
    ),
];

#[test]
fn goldens_cover_every_script() {
    let pinned: Vec<&str> = GOLDENS.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        all_scripts(),
        pinned,
        "every shipped script needs a pinned golden in tests/check.rs"
    );
}

#[test]
fn golden_diagnostics_for_every_script() {
    for (name, expected) in GOLDENS {
        let rendered = check(name).render();
        assert_eq!(
            rendered, *expected,
            "golden mismatch for {name}:\n--- got ---\n{rendered}--- want ---\n{expected}"
        );
    }
}

#[test]
fn swap_leak_is_flagged_with_a_line_accurate_path() {
    // The ISSUE's named acceptance case: the stale swap is caught
    // statically, with the paper-style root-to-object path naming each
    // allocation site and line.
    let a = check("swap_leak.gca");
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.severity == Severity::Error)
        .expect("swap_leak must be statically flagged");
    assert_eq!(d.code, "dead-reachable");
    assert_eq!(d.line, 25);
    let path = d
        .notes
        .iter()
        .find(|n| n.starts_with("path: "))
        .expect("path note");
    assert_eq!(
        path,
        "path: occupant: SObject (line 8) -.rep-> fresh_rep: Rep (line 16) -.outer-> fresh: SObject (line 15)"
    );
}

#[test]
fn check_exit_condition_matches_must_presence() {
    // `gca check` exits non-zero iff a must-violate (error-severity)
    // diagnostic is present; `has_errors` is that exit condition.
    for name in all_scripts() {
        let a = check(&name);
        let has_must = a.collections.iter().any(|c| !c.must.is_empty());
        let has_runtime_failure = a
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.code == "expect-will-fail");
        assert!(
            !has_runtime_failure,
            "{name}: analyzer predicts a failing expectation in a shipped script"
        );
        assert_eq!(
            a.has_errors(),
            has_must,
            "{name}: error severity must correspond to must-violate verdicts"
        );
    }
}

/// The soundness pin: run analyzer and interpreter side by side over
/// every shipped script.  At each explicit `gc`, the analyzer's
/// must-set must be a sub-multiset of the report the interpreter
/// produced; when nothing was downgraded to may, the prediction must be
/// *exact*.  Finally the union of all must-sets (implicit collections
/// included) must be a sub-multiset of the cumulative violation log.
#[test]
fn differential_must_set_is_sound() {
    for name in all_scripts() {
        let src = read_script(&name);
        let analysis = analyze(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut predictions = analysis.collections.iter().filter(|c| c.explicit);

        let mut interp = Interpreter::new();
        let commands = parse_script(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (line, cmd) in &commands {
            interp
                .execute(*line, cmd)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            if !matches!(cmd, Command::Gc) {
                continue;
            }
            let report = interp.last_report().expect("gc just ran");
            let actual: Vec<String> = report.violations.iter().map(|v| v.summary()).collect();
            let pred = predictions
                .next()
                .unwrap_or_else(|| panic!("{name} line {line}: analyzer missed this gc"));
            assert_eq!(
                pred.line, *line,
                "{name}: prediction/collection order diverged"
            );
            let mut remaining = actual.clone();
            for must in &pred.must {
                let pos = remaining.iter().position(|a| a == must).unwrap_or_else(|| {
                    panic!(
                        "{name} line {line}: FALSE POSITIVE — analyzer promised `{must}` \
                         but the interpreter reported {actual:?}"
                    )
                });
                remaining.remove(pos);
            }
            if pred.may.is_empty() {
                assert!(
                    remaining.is_empty(),
                    "{name} line {line}: analyzer claimed exactness but the interpreter \
                     also reported {remaining:?}"
                );
            }
        }
        assert!(
            predictions.next().is_none(),
            "{name}: analyzer predicted a gc the interpreter never ran"
        );

        // Cumulative check across every collection, implicit and minor
        // included.
        let log: Vec<String> = interp
            .vm_ref()
            .map(|vm| vm.violation_log().iter().map(|v| v.summary()).collect())
            .unwrap_or_default();
        let mut remaining = log.clone();
        for c in &analysis.collections {
            for must in &c.must {
                let pos = remaining.iter().position(|a| a == must).unwrap_or_else(|| {
                    panic!(
                        "{name}: cumulative FALSE POSITIVE — `{must}` absent from the \
                         violation log {log:?}"
                    )
                });
                remaining.remove(pos);
            }
        }
    }
}

#[test]
fn checked_clean_scenario_runs_clean() {
    let out = Interpreter::run_script(&read_script("checked_clean.gca"))
        .unwrap_or_else(|e| panic!("checked_clean.gca: {e}"));
    assert_eq!(out.total_violations, 0);
    assert_eq!(out.collections, 2);
}
