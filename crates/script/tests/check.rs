//! `gca check` coverage for the shipped scenarios: a golden test pinning
//! the analyzer's diagnostics for every script under `scripts/`, plus
//! the differential soundness harness — the analyzer's must-violate set
//! must be a subset of the violations the interpreter actually reports
//! (zero false positives at error severity).

use std::collections::{HashMap, VecDeque};

use gca_script::analysis::json;
use gca_script::{
    analyze, analyze_with, apply_suggestions, parse_script, suggest, Analysis, DomainKind,
    GcPrediction, Interpreter, Severity,
};

fn script_path(name: &str) -> String {
    format!("{}/../../scripts/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn read_script(name: &str) -> String {
    let path = script_path(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn all_scripts() -> Vec<String> {
    let dir = format!("{}/../../scripts", env!("CARGO_MANIFEST_DIR"));
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir}: {e}"))
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".gca"))
        .collect();
    names.sort();
    names
}

fn check(name: &str) -> Analysis {
    analyze(&read_script(name)).unwrap_or_else(|e| panic!("{name}: parse error {e}"))
}

/// The golden transcript for every shipped script, pinned verbatim.
/// A new script must be added here — the `goldens_cover_every_script`
/// test enforces it.
const GOLDENS: &[(&str, &str)] = &[
    (
        "cache_leak.gca",
        "error[dead-reachable] line 21:1: session: Session (line 14) was asserted dead (line 20) but must still be reachable at this collection\n\
         \x20 path: cache: Cache (line 11) -.hit-> session: Session (line 14)\n\
         check: 2 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "checked_clean.gca",
        "check: 2 collection(s) analyzed, 0 error(s), 0 warning(s)\n",
    ),
    (
        "copying_backend.gca",
        "error[dead-reachable] line 24:1: session: Session (line 17) was asserted dead (line 23) but must still be reachable at this collection\n\
         \x20 path: cache: Cache (line 14) -.hit-> session: Session (line 17)\n\
         check: 2 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "force_true.gca",
        "error[dead-reachable] line 19:1: x: Obj (line 14) was asserted dead (line 17) but must still be reachable at this collection\n\
         \x20 path: h2: Holder (line 12) -.b-> x: Obj (line 14)\n\
         check: 2 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "generational.gca",
        "error[dead-reachable] line 21:1: victim: Obj (line 12) was asserted dead (line 14) but must still be reachable at this collection\n\
         \x20 path: holder: Holder (line 10) -.keep-> victim: Obj (line 12)\n\
         check: 3 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "list_builder.gca",
        "check: 1 collection(s) analyzed, 0 error(s), 0 warning(s)\n",
    ),
    (
        "ownership.gca",
        "warning[not-owned] line 26:1: y: Elem (line 17) may be reachable without passing through its owner at this collection\n\
         \x20 path: table: CacheTable (line 11) -.hit-> y: Elem (line 17)\n\
         check: 3 collection(s) analyzed, 0 error(s), 1 warning(s)\n",
    ),
    (
        "recursive_tree.gca",
        "check: 2 collection(s) analyzed, 0 error(s), 0 warning(s)\n",
    ),
    (
        "region_server.gca",
        "warning[region-escape] line 26:1: req2: Request (line 24) was allocated in the active region (region begun at line 22) but escapes into `audit`, which is outside it\n\
         error[dead-reachable] line 29:1: req2: Request (line 24) was asserted dead (line 28) but must still be reachable at this collection\n\
         \x20 path: audit: Audit (line 8) -.entry-> req2: Request (line 24)\n\
         \x20 allocated inside the region begun at line 22\n\
         check: 2 collection(s) analyzed, 1 error(s), 1 warning(s)\n",
    ),
    (
        "session_lru.gca",
        "error[dead-reachable] line 33:1: s2: Session (line 17) was asserted dead (line 32) but must still be reachable at this collection\n\
         \x20 path: sampler: Sampler (line 12) -.last-> s2: Session (line 17)\n\
         check: 3 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "singleton.gca",
        "error[instance-limit] line 23:1: instance limit must be exceeded: IndexSearcher 3>1 (asserted line 7)\n\
         check: 1 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "suggest_demo.gca",
        "check: 2 collection(s) analyzed, 0 error(s), 0 warning(s)\n",
    ),
    (
        "swap_leak.gca",
        "error[dead-reachable] line 25:1: fresh: SObject (line 15) was asserted dead (line 23) but must still be reachable at this collection\n\
         \x20 path: occupant: SObject (line 8) -.rep-> fresh_rep: Rep (line 16) -.outer-> fresh: SObject (line 15)\n\
         check: 1 collection(s) analyzed, 1 error(s), 0 warning(s)\n",
    ),
    (
        "unshared_tree.gca",
        "warning[unshared-with-two-stores] line 17:1: b: Node (line 10) now has 2 incoming references (asserted unshared at line 12)\n\
         error[unshared-violated] line 18:1: b: Node (line 10) was asserted unshared (line 12) but must be reachable through more than one reference\n\
         \x20 path: root: Node (line 6) -.l-> a: Node (line 8) -.l-> b: Node (line 10)\n\
         check: 2 collection(s) analyzed, 1 error(s), 1 warning(s)\n",
    ),
];

#[test]
fn goldens_cover_every_script() {
    let pinned: Vec<&str> = GOLDENS.iter().map(|(n, _)| *n).collect();
    assert_eq!(
        all_scripts(),
        pinned,
        "every shipped script needs a pinned golden in tests/check.rs"
    );
}

#[test]
fn golden_diagnostics_for_every_script() {
    for (name, expected) in GOLDENS {
        let rendered = check(name).render();
        assert_eq!(
            rendered, *expected,
            "golden mismatch for {name}:\n--- got ---\n{rendered}--- want ---\n{expected}"
        );
    }
}

#[test]
fn swap_leak_is_flagged_with_a_line_accurate_path() {
    // The ISSUE's named acceptance case: the stale swap is caught
    // statically, with the paper-style root-to-object path naming each
    // allocation site and line.
    let a = check("swap_leak.gca");
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.severity == Severity::Error)
        .expect("swap_leak must be statically flagged");
    assert_eq!(d.code, "dead-reachable");
    assert_eq!(d.line, 25);
    let path = d
        .notes
        .iter()
        .find(|n| n.starts_with("path: "))
        .expect("path note");
    assert_eq!(
        path,
        "path: occupant: SObject (line 8) -.rep-> fresh_rep: Rep (line 16) -.outer-> fresh: SObject (line 15)"
    );
}

#[test]
fn check_exit_condition_matches_must_presence() {
    // `gca check` exits non-zero iff a must-violate (error-severity)
    // diagnostic is present; `has_errors` is that exit condition.
    for name in all_scripts() {
        let a = check(&name);
        let has_must = a.collections.iter().any(|c| !c.must.is_empty());
        let has_runtime_failure = a
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.code == "expect-will-fail");
        assert!(
            !has_runtime_failure,
            "{name}: analyzer predicts a failing expectation in a shipped script"
        );
        assert_eq!(
            a.has_errors(),
            has_must,
            "{name}: error severity must correspond to must-violate verdicts"
        );
    }
}

/// Checks one script's analyzer predictions against one dynamic run.
///
/// Since loops and procedures landed, a single `gc` *line* can execute
/// any number of times, so predictions are keyed by line rather than
/// zipped in stream order: exact predictions form a FIFO queue per line
/// (the analyzer replays blocks in program order, so queue order is
/// dynamic order), while a summarized prediction collapses to one
/// sticky entry standing for *every* dynamic execution of its line —
/// its must-set is empty by construction, which we also assert.
fn differential_check(name: &str, src: &str, analysis: &Analysis) {
    let mut interp = Interpreter::new();
    for (line, cmd) in parse_script(src).unwrap_or_else(|e| panic!("{name}: {e}")) {
        interp
            .execute(line, &cmd)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    let log: Vec<String> = interp
        .vm_ref()
        .map(|vm| vm.violation_log().iter().map(|v| v.summary()).collect())
        .unwrap_or_default();
    let out = interp.finish();

    let mut queues: HashMap<usize, VecDeque<&GcPrediction>> = HashMap::new();
    let mut sticky: HashMap<usize, &GcPrediction> = HashMap::new();
    for c in analysis.collections.iter().filter(|c| c.explicit) {
        if c.summarized {
            assert!(
                c.must.is_empty(),
                "{name} line {}: a summarized collection must never promise a must-set",
                c.line
            );
            sticky.insert(c.line, c);
        } else {
            queues.entry(c.line).or_default().push_back(c);
        }
    }

    for (line, actual) in &out.explicit_gcs {
        if let Some(pred) = queues.get_mut(line).and_then(|q| q.pop_front()) {
            let mut remaining = actual.clone();
            for must in &pred.must {
                let pos = remaining.iter().position(|a| a == must).unwrap_or_else(|| {
                    panic!(
                        "{name} line {line}: FALSE POSITIVE — analyzer promised `{must}` \
                         but the interpreter reported {actual:?}"
                    )
                });
                remaining.remove(pos);
            }
            if pred.may.is_empty() {
                assert!(
                    remaining.is_empty(),
                    "{name} line {line}: analyzer claimed exactness but the interpreter \
                     also reported {remaining:?}"
                );
            }
        } else {
            assert!(
                sticky.contains_key(line),
                "{name} line {line}: the interpreter ran a gc the analyzer never predicted"
            );
        }
    }
    for (line, q) in &queues {
        assert!(
            q.is_empty(),
            "{name} line {line}: analyzer predicted {} gc(s) the interpreter never ran",
            q.len()
        );
    }

    // Cumulative check across every collection, implicit and minor
    // included.
    let mut remaining = log.clone();
    for c in &analysis.collections {
        for must in &c.must {
            let pos = remaining.iter().position(|a| a == must).unwrap_or_else(|| {
                panic!(
                    "{name}: cumulative FALSE POSITIVE — `{must}` absent from the \
                     violation log {log:?}"
                )
            });
            remaining.remove(pos);
        }
    }
}

/// The soundness pin: run analyzer and interpreter side by side over
/// every shipped script.  At each explicit `gc`, the analyzer's
/// must-set must be a sub-multiset of the report the interpreter
/// produced; when nothing was downgraded to may, the prediction must be
/// *exact*.  Finally the union of all must-sets (implicit collections
/// included) must be a sub-multiset of the cumulative violation log.
#[test]
fn differential_must_set_is_sound() {
    for name in all_scripts() {
        let src = read_script(&name);
        let analysis = analyze(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        differential_check(&name, &src, &analysis);
    }
}

/// The access graph earns Safe on `list_builder.gca`'s severed chain —
/// the before/after comparison against the per-site strawman, pinned:
/// the per-site domain is loop-blind and can only answer May.
#[test]
fn list_builder_loop_summary_beats_per_site() {
    let src = read_script("list_builder.gca");

    let graph = analyze_with(&src, DomainKind::AccessGraph)
        .unwrap_or_else(|e| panic!("list_builder.gca: {e}"));
    assert!(!graph.has_errors(), "{:?}", graph.diagnostics);
    assert!(
        graph
            .diagnostics
            .iter()
            .all(|d| d.severity != Severity::Warning),
        "{:?}",
        graph.diagnostics
    );
    let gc = &graph.collections[0];
    assert!(gc.summarized, "the 200-iteration loop must be summarized");
    assert!(gc.must.is_empty() && gc.may.is_empty(), "Safe verdict");

    let per_site =
        analyze_with(&src, DomainKind::PerSite).unwrap_or_else(|e| panic!("list_builder.gca: {e}"));
    let warnings: Vec<&str> = per_site
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .map(|d| d.code)
        .collect();
    assert_eq!(
        warnings,
        ["dead-reachable"],
        "per-site must downgrade the severed chain to May"
    );
    assert_eq!(per_site.collections[0].may, ["dead-reachable Cell"]);
}

/// One `--json` report pinned verbatim as the machine-readable contract
/// (satellite of the ISSUE): shape changes here are API changes.
#[test]
fn json_report_is_pinned_for_list_builder() {
    let a = check("list_builder.gca");
    assert_eq!(
        json::analysis_to_json(&a, DomainKind::AccessGraph),
        "{\"tool\":\"gca-check\",\"domain\":\"access-graph\",\"errors\":0,\"warnings\":0,\
         \"notes\":1,\"diagnostics\":[{\"line\":24,\"column\":1,\"severity\":\"note\",\
         \"code\":\"redundant-assert-dead\",\"message\":\"this `assert-dead` is proven Safe \
         at every collection that examines it — the assertion can be removed\",\"notes\":[]}],\
         \"collections\":[{\"line\":25,\"explicit\":true,\"minor\":false,\"summarized\":true,\
         \"must\":[],\"may\":[]}]}"
    );
}

/// `gca suggest` on the unannotated demo: placements pinned verbatim,
/// then spliced back in and re-run — the annotated script must hold.
#[test]
fn suggest_demo_placements_are_pinned_and_verified() {
    let src = read_script("suggest_demo.gca");
    let out = suggest(&src).unwrap_or_else(|e| panic!("suggest_demo.gca: {e}"));
    assert!(out.refused.is_none(), "{:?}", out.refused);
    assert_eq!(out.rejected, 0, "all placements must survive verification");
    assert_eq!(
        out.render(),
        "@ line 7: + assert-instances Doc 2\n\
         \x20   reason: observed peak of 1 live `Doc` instance(s); limit adds census headroom\n\
         @ line 12: + start-region\n\
         \x20   reason: 3 allocation(s) on lines 12-14 all die before the next collection\n\
         @ line 16: + all-dead\n\
         \x20   reason: every allocation of the region above is unreachable here\n\
         @ line 20: + assert-dead tmp\n\
         \x20   reason: tmp: Scratch (line 19) is unreachable from here to the end of the run\n\
         suggest: 4 placement(s), 0 candidate(s) rejected by splice-and-verify\n"
    );

    let spliced = apply_suggestions(&src, &out.suggestions);
    let run = Interpreter::run_script(&spliced)
        .unwrap_or_else(|e| panic!("spliced suggest_demo.gca: {e}"));
    assert_eq!(run.total_violations, 0, "spliced assertions must all hold");
    let a = analyze(&spliced).unwrap_or_else(|e| panic!("spliced suggest_demo.gca: {e}"));
    assert!(!a.has_errors(), "{:?}", a.diagnostics);

    // Annotated scripts are declined rather than double-annotated.
    let again = suggest(&spliced).unwrap_or_else(|e| panic!("re-suggest: {e}"));
    assert!(again.refused.is_some());
    assert!(again.suggestions.is_empty());
}

#[test]
fn checked_clean_scenario_runs_clean() {
    let out = Interpreter::run_script(&read_script("checked_clean.gca"))
        .unwrap_or_else(|e| panic!("checked_clean.gca: {e}"));
    assert_eq!(out.total_violations, 0);
    assert_eq!(out.collections, 2);
}
