//! Runs every `.gca` scenario in the repository's `scripts/` directory.
//! The scripts are self-checking (they contain `expect-*` commands), so
//! this test is green exactly when every scenario behaves as documented.

use gca_script::Interpreter;

fn run_file(name: &str) -> gca_script::Output {
    let path = format!("{}/../../scripts/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    Interpreter::run_script(&src).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn cache_leak_scenario() {
    let out = run_file("cache_leak.gca");
    assert_eq!(out.total_violations, 1);
    assert!(out
        .lines
        .iter()
        .any(|l| l.contains("asserted dead is reachable")));
    assert!(out.lines.iter().any(|l| l.contains("Cache")));
}

#[test]
fn singleton_scenario() {
    let out = run_file("singleton.gca");
    assert!(out
        .lines
        .iter()
        .any(|l| l.contains("instance limit exceeded")));
    assert!(out.lines.iter().any(|l| l.contains("IndexSearcher")));
}

#[test]
fn swap_leak_scenario() {
    let out = run_file("swap_leak.gca");
    assert_eq!(out.total_violations, 1);
    // The probe explains the pin through the Rep's outer reference.
    let probe = out
        .lines
        .iter()
        .find(|l| l.starts_with("probe fresh"))
        .expect("probe output");
    assert!(probe.contains("Rep"), "{probe}");
}

#[test]
fn ownership_scenario() {
    let out = run_file("ownership.gca");
    assert_eq!(out.total_violations, 1);
    assert!(out
        .lines
        .iter()
        .any(|l| l.contains("not through its owner")));
}

#[test]
fn region_server_scenario() {
    let out = run_file("region_server.gca");
    assert_eq!(out.total_violations, 1);
    assert!(out.lines.iter().any(|l| l.contains("all-dead: 1")));
}

#[test]
fn generational_scenario() {
    let out = run_file("generational.gca");
    assert_eq!(out.total_violations, 1);
    assert!(out.minor_collections >= 2);
    assert!(out.collections >= 1);
}

#[test]
fn force_true_scenario() {
    let out = run_file("force_true.gca");
    assert_eq!(out.total_violations, 1);
    assert_eq!(out.collections, 2);
}

#[test]
fn unshared_tree_scenario() {
    let out = run_file("unshared_tree.gca");
    assert_eq!(out.total_violations, 1);
    assert!(out
        .lines
        .iter()
        .any(|l| l.contains("more than one incoming pointer")));
}

#[test]
fn copying_backend_scenario() {
    let out = run_file("copying_backend.gca");
    assert_eq!(out.total_violations, 1);
    assert_eq!(out.collections, 2);
    // Same verdict and the same class chain as cache_leak.gca, found by
    // evacuation instead of marking.
    assert!(out
        .lines
        .iter()
        .any(|l| l.contains("asserted dead is reachable")));
    assert!(out.lines.iter().any(|l| l.contains("Cache")));
}

#[test]
fn session_lru_scenario() {
    let out = run_file("session_lru.gca");
    // Clean eviction, one pinned evictee, clean after the fix.
    assert_eq!(out.total_violations, 1);
    assert!(out
        .lines
        .iter()
        .any(|l| l.contains("asserted dead is reachable")));
    assert!(out.lines.iter().any(|l| l.contains("Sampler")));
}

#[test]
fn list_builder_scenario() {
    let out = run_file("list_builder.gca");
    // The 200-cell chain is severed by one store and fully collected.
    assert_eq!(out.total_violations, 0);
    assert_eq!(out.collections, 1);
}

#[test]
fn recursive_tree_scenario() {
    let out = run_file("recursive_tree.gca");
    // The call-depth bound terminates the recursion; ownership holds
    // throughout and the spine dies with the owner's one reference.
    assert_eq!(out.total_violations, 0);
    assert_eq!(out.collections, 2);
    assert!(out.lines.iter().any(|l| l.contains("7 ownees checked")));
}

#[test]
fn suggest_demo_scenario() {
    let out = run_file("suggest_demo.gca");
    // Unannotated on purpose — `gca suggest` adds the assertions (see
    // tests/check.rs for the pinned placements).
    assert_eq!(out.total_violations, 0);
    assert_eq!(out.collections, 2);
}

#[test]
fn all_scripts_in_directory_run_clean() {
    // Safety net: any script added to scripts/ must at least execute.
    let dir = format!("{}/../../scripts", env!("CARGO_MANIFEST_DIR"));
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("scripts dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("gca") {
            let src = std::fs::read_to_string(&path).unwrap();
            Interpreter::run_script(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            count += 1;
        }
    }
    assert!(count >= 6, "expected the bundled scenarios, found {count}");
}
