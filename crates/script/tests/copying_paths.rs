//! Path-report equivalence pins for the shipped example scripts: running
//! a script under the semispace copying backend must report the *same*
//! root→object class chains as the sequential mark-sweep engine.
//!
//! The copying collector reconstructs violation paths from first-arrival
//! forwarding edges of its breadth-first Cheney scan, while the sequential
//! engine reads its depth-first path-tracking worklist — so this is a real
//! equivalence claim about node identity, not about address order or scan
//! order. On every shipped script the chains agree exactly; if a future
//! script ever diverges legitimately (a `Shared` report's *second* path
//! depends on which extra edge the scan order sees first), pin the copying
//! chain as golden here with a comment instead of weakening the
//! comparison.

use gc_assertions::Violation;
use gca_script::{parse_script, Interpreter};

/// Runs a shipped script, optionally prefixed with
/// `config collector copying`, and returns each violation as
/// `"kind: Root Class.field -> ... -> Class"` — the §2.7 (Figure 1)
/// report reduced to class-chain identity.
fn run_chains(name: &str, copying: bool) -> Vec<String> {
    let path = format!("{}/../../scripts/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let src = if copying {
        format!("config collector copying\n{src}")
    } else {
        src
    };
    let mut interp = Interpreter::new();
    for (line, cmd) in parse_script(&src).expect("parse") {
        interp
            .execute(line, &cmd)
            .unwrap_or_else(|e| panic!("{name} (copying={copying}): {e}"));
    }
    let vm = interp.vm_ref().expect("script never started the VM");
    let reg = vm.registry();
    let chain = |v: &Violation| {
        let steps: Vec<String> = v
            .path
            .steps()
            .iter()
            .map(|s| match s.field {
                None => reg.name(s.class).to_owned(),
                Some(f) => format!(".{f} {}", reg.name(s.class)),
            })
            .collect();
        format!("{:?}: {}", v.class(), steps.join(" -> "))
    };
    vm.violation_log().iter().map(chain).collect()
}

/// Every shipped script that runs under both engines must name identical
/// violation class chains, in the same report order (report order is
/// detection order *across collections*, which both engines share; only
/// intra-trace edge ordering differs, and that never reorders reports of
/// distinct objects across `gc` commands in these scripts).
#[test]
fn shipped_scripts_report_identical_class_chains() {
    for script in [
        "cache_leak.gca",
        "checked_clean.gca",
        "list_builder.gca",
        "ownership.gca",
        "recursive_tree.gca",
        "suggest_demo.gca",
        "region_server.gca",
        "singleton.gca",
        "swap_leak.gca",
        "unshared_tree.gca",
    ] {
        let sequential = run_chains(script, false);
        let copying = run_chains(script, true);
        assert_eq!(
            sequential, copying,
            "{script}: copying path chains diverged from sequential"
        );
    }
}

/// The one shipped script with a legitimate path divergence, pinned as
/// golden. `force_true.gca` gives the asserted-dead object *two* incoming
/// edges (`h1.a` and `h2.b`); which one becomes the reported first-arrival
/// path depends on scan order. The sequential engine's LIFO worklist
/// drains root `h2` first and reports the `.1` (`h2.b`) edge; the Cheney
/// scan processes roots breadth-first in root order and reports the `.0`
/// (`h1.a`) edge. Same violation, same classes, equally valid retaining
/// path — and ForceTrue still severs *both* edges on either engine, which
/// the script's own `expect-dead x` verifies.
#[test]
fn force_true_paths_are_pinned_per_engine() {
    assert_eq!(
        run_chains("force_true.gca", false),
        vec!["Lifetime: Holder -> .1 Obj".to_owned()],
        "sequential golden path changed"
    );
    assert_eq!(
        run_chains("force_true.gca", true),
        vec!["Lifetime: Holder -> .0 Obj".to_owned()],
        "copying golden path changed"
    );
}

/// The one shipped script that cannot run under copying: generational
/// mode conflicts, and the interpreter must say so cleanly instead of
/// panicking inside `Vm::new`.
#[test]
fn generational_script_rejects_copying_cleanly() {
    let path = format!(
        "{}/../../scripts/generational.gca",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(path).unwrap();
    let src = format!("config collector copying\n{src}");
    let mut interp = Interpreter::new();
    let err = parse_script(&src)
        .expect("parse")
        .into_iter()
        .find_map(|(line, cmd)| interp.execute(line, &cmd).err())
        .expect("config generational after config collector copying must error");
    assert!(
        err.to_string().contains("full-heap"),
        "unexpected error: {err}"
    );
}
