//! Pinned diagnostics for the two advisory lints. Notes never appear in
//! the human `render()` transcript (goldens stay byte-stable), so the
//! fixtures pin the structured diagnostic — line, code and message —
//! and the `--json` surface where notes are reported.

use gca_script::analysis::json;
use gca_script::{analyze, Diagnostic, DomainKind, Interpreter, Severity};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn notes(src: &str) -> Vec<Diagnostic> {
    let a = analyze(src).expect("fixture parses");
    assert!(!a.has_errors(), "{:?}", a.diagnostics);
    a.diagnostics
        .into_iter()
        .filter(|d| d.severity == Severity::Note)
        .collect()
}

#[test]
fn redundant_assert_dead_fixture_is_pinned() {
    let src = fixture("redundant_assert_dead.gca");
    // The fixture is self-checking at runtime too: the probe passes.
    let out = Interpreter::run_script(&src).expect("fixture runs");
    assert_eq!(out.total_violations, 0);

    let notes = notes(&src);
    assert_eq!(notes.len(), 1, "{notes:?}");
    assert_eq!(notes[0].line, 9);
    assert_eq!(notes[0].code, "redundant-assert-dead");
    assert_eq!(
        notes[0].message,
        "this `assert-dead` is proven Safe at every collection that examines it \
         — the assertion can be removed"
    );
}

#[test]
fn loop_invariant_assertion_fixture_is_pinned() {
    let src = fixture("loop_invariant_assertion.gca");
    let out = Interpreter::run_script(&src).expect("fixture runs");
    assert_eq!(out.total_violations, 0);

    let notes = notes(&src);
    let lint = notes
        .iter()
        .find(|d| d.code == "loop-invariant-assertion")
        .unwrap_or_else(|| panic!("lint note missing: {notes:?}"));
    assert_eq!(lint.line, 13);
    assert_eq!(
        lint.message,
        "this assertion registers the same target on every iteration \
         — hoist it out of the loop"
    );
}

#[test]
fn notes_reach_the_json_surface_but_not_render() {
    let src = fixture("loop_invariant_assertion.gca");
    let a = analyze(&src).expect("fixture parses");
    assert!(
        !a.render().contains("loop-invariant-assertion"),
        "render() must stay note-free for golden stability"
    );
    let j = json::analysis_to_json(&a, DomainKind::AccessGraph);
    assert!(j.contains("\"code\":\"loop-invariant-assertion\""), "{j}");
}
