//! Fuzz-style property tests for the script language: arbitrary input
//! never panics the parser, and generated well-formed scripts always
//! either run or fail with a line-tagged error (never a panic).

use gca_script::{parse_line, parse_script, Interpreter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_text(src in ".{0,200}") {
        // Any unicode soup: must return Ok or Err, not panic.
        let _ = parse_script(&src);
    }

    #[test]
    fn parser_never_panics_on_command_shaped_lines(
        cmd in "[a-z-]{1,18}",
        args in proptest::collection::vec("[A-Za-z0-9_.]{1,10}", 0..5),
    ) {
        let line = format!("{cmd} {}", args.join(" "));
        let _ = parse_line(1, &line);
    }

    #[test]
    fn generated_scripts_never_panic_the_interpreter(
        ops in proptest::collection::vec(0u8..10, 1..60),
        vars in proptest::collection::vec(0usize..6, 60),
    ) {
        // Build a syntactically valid script whose *semantics* may be
        // nonsense (unknown vars, double regions, ...). The interpreter
        // must produce a ScriptError, never panic.
        let names = ["a", "b", "c", "d", "e", "f"];
        let mut script = String::from("class T f g\n");
        for (i, op) in ops.iter().enumerate() {
            let v = names[vars[i % vars.len()]];
            let w = names[vars[(i + 1) % vars.len()]];
            let line = match op {
                0 => format!("new {v} T"),
                1 => format!("set {v}.f {w}"),
                2 => format!("root {v}"),
                3 => "frame".to_owned(),
                4 => "end-frame".to_owned(),
                5 => format!("assert-dead {v}"),
                6 => format!("assert-owned-by {v} {w}"),
                7 => "gc".to_owned(),
                8 => "start-region".to_owned(),
                _ => "all-dead".to_owned(),
            };
            script.push_str(&line);
            script.push('\n');
        }
        let _ = Interpreter::run_script(&script); // Ok or Err — both fine
    }

    #[test]
    fn well_formed_alloc_scripts_succeed(n in 1usize..30) {
        let mut script = String::from("class T f\n");
        for i in 0..n {
            script.push_str(&format!("new v{i} T\nroot v{i}\n"));
        }
        script.push_str("gc\nexpect-violations 0\n");
        for i in 0..n {
            script.push_str(&format!("expect-live v{i}\n"));
        }
        let out = Interpreter::run_script(&script).expect("well-formed script runs");
        prop_assert_eq!(out.collections, 1);
    }
}
