//! Differential coverage for the looping language: every corpus script
//! that uses `repeat`/`call-depth` is re-run at iteration counts 0, 1
//! and its shipped k, with the analyzer's must-sets checked against the
//! dynamic run at each count; plus a randomized leg that renders
//! `gca-modelcheck` FuzzOp programs as scripts, wraps their bodies in
//! `repeat 3`, and verifies the violation stream agrees across the
//! mark-sweep, parallel-mark (`gc-threads 2`) and semispace copying
//! engines — and that the analyzer stays sound on every variant.

use std::collections::{HashMap, VecDeque};

use gca_modelcheck::{emit_gca, normalize_violations, FuzzOp};
use gca_script::{analyze, parse_script, Analysis, GcPrediction, Interpreter};

fn all_scripts() -> Vec<(String, String)> {
    let dir = format!("{}/../../scripts", env!("CARGO_MANIFEST_DIR"));
    let mut out: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir}: {e}"))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("gca"))
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

/// Runs the analyzer/interpreter differential soundness check on one
/// script: every explicit-gc must-set is a sub-multiset of the report
/// the dynamic run produced at that line (predictions are per-line FIFO
/// queues; summarized predictions match every dynamic gc of their
/// line), exactness holds when the may-set is empty, and the union of
/// all must-sets is a sub-multiset of the cumulative violation log.
fn differential_check(name: &str, src: &str, analysis: &Analysis) {
    let mut interp = Interpreter::new();
    for (line, cmd) in parse_script(src).unwrap_or_else(|e| panic!("{name}: {e}")) {
        interp
            .execute(line, &cmd)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    let log: Vec<String> = interp
        .vm_ref()
        .map(|vm| vm.violation_log().iter().map(|v| v.summary()).collect())
        .unwrap_or_default();
    let out = interp.finish();

    let mut queues: HashMap<usize, VecDeque<&GcPrediction>> = HashMap::new();
    let mut sticky: HashMap<usize, &GcPrediction> = HashMap::new();
    for c in analysis.collections.iter().filter(|c| c.explicit) {
        if c.summarized {
            assert!(c.must.is_empty(), "{name}: summarized must-set not empty");
            sticky.insert(c.line, c);
        } else {
            queues.entry(c.line).or_default().push_back(c);
        }
    }
    for (line, actual) in &out.explicit_gcs {
        if let Some(pred) = queues.get_mut(line).and_then(|q| q.pop_front()) {
            let mut remaining = actual.clone();
            for must in &pred.must {
                let pos = remaining.iter().position(|a| a == must).unwrap_or_else(|| {
                    panic!("{name} line {line}: FALSE POSITIVE `{must}` vs {actual:?}")
                });
                remaining.remove(pos);
            }
            if pred.may.is_empty() {
                assert!(
                    remaining.is_empty(),
                    "{name} line {line}: exactness claimed but {remaining:?} also reported"
                );
            }
        } else {
            assert!(
                sticky.contains_key(line),
                "{name} line {line}: dynamic gc the analyzer never predicted"
            );
        }
    }
    for (line, q) in &queues {
        assert!(
            q.is_empty(),
            "{name} line {line}: {} predicted gc(s) never ran",
            q.len()
        );
    }
    let mut remaining = log.clone();
    for c in &analysis.collections {
        for must in &c.must {
            let pos = remaining.iter().position(|a| a == must).unwrap_or_else(|| {
                panic!("{name}: cumulative FALSE POSITIVE `{must}` vs log {log:?}")
            });
            remaining.remove(pos);
        }
    }
}

/// Rewrites every `repeat N` / `config call-depth N` to count `n`, and
/// neuters `expect-*` self-checks (their pinned values are only correct
/// at the shipped iteration count; assertions stay in — a violating run
/// is exactly what the differential harness wants to cross-check).
fn at_count(src: &str, n: usize) -> String {
    let mut out = String::new();
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("repeat ") {
            out.push_str(&format!("repeat {n}\n"));
        } else if t.starts_with("config call-depth ") {
            out.push_str(&format!("config call-depth {n}\n"));
        } else if t.starts_with("expect-") {
            out.push_str(&format!("# (count-variant) {t}\n"));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn corpus_loops_hold_at_iteration_counts_0_1_k() {
    let mut exercised = 0;
    for (name, src) in all_scripts() {
        if !src.contains("repeat ") && !src.contains("config call-depth ") {
            continue;
        }
        exercised += 1;
        for (label, variant) in [
            ("count=0", at_count(&src, 0)),
            ("count=1", at_count(&src, 1)),
            ("count=k", src.clone()),
        ] {
            let tag = format!("{name} [{label}]");
            let analysis = analyze(&variant).unwrap_or_else(|e| panic!("{tag}: {e}"));
            differential_check(&tag, &variant, &analysis);
        }
    }
    assert!(
        exercised >= 2,
        "expected looping corpus scripts (list_builder, recursive_tree), found {exercised}"
    );
}

/// A deterministic splitmix-style generator — the leg must reproduce
/// bit-for-bit across runs, so no OS entropy.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> usize {
        (self.next() % n) as usize
    }
}

/// Draws a FuzzOp program from the loop-safe subset: ownership ops and
/// `UnrootTo` are excluded because re-running them inside `repeat`
/// violates their single-shot emission invariants (e.g. `BreakOwner`
/// severs an edge that exists only on the first iteration), and
/// `MinorGc` because none of these variants are generational.
fn gen_ops(rng: &mut Rng, len: usize) -> Vec<FuzzOp> {
    let mut ops = vec![FuzzOp::Alloc {
        data: 0,
        root: true,
    }];
    for _ in 0..len {
        ops.push(match rng.below(9) {
            0 => FuzzOp::Alloc {
                data: rng.below(4),
                root: rng.below(2) == 0,
            },
            1 => FuzzOp::Link {
                from: rng.below(8),
                field: rng.below(3),
                to: rng.below(8),
            },
            2 => FuzzOp::Unlink {
                from: rng.below(8),
                field: rng.below(3),
            },
            3 => FuzzOp::Swap {
                a: rng.below(8),
                b: rng.below(8),
                field: rng.below(3),
            },
            4 => FuzzOp::Collect,
            5 => FuzzOp::AssertDead {
                target: rng.below(8),
            },
            6 => FuzzOp::AssertUnshared {
                target: rng.below(8),
            },
            7 => FuzzOp::AssertInstances {
                limit: 1 + rng.below(6) as u32,
            },
            _ => FuzzOp::Region {
                len: rng.below(6),
                leak: rng.below(4) == 0,
            },
        });
    }
    ops.push(FuzzOp::Collect);
    ops
}

/// Splits an `emit_gca` rendering into (preamble, body) and re-renders
/// with the body wrapped in `repeat 3`, plus `extra` config lines.
fn wrap_in_repeat(emitted: &str, extra: &[&str]) -> String {
    let mut preamble = String::new();
    let mut body = String::new();
    for line in emitted.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with("config ") || t.starts_with("class ")
        {
            preamble.push_str(line);
            preamble.push('\n');
        } else {
            body.push_str(line);
            body.push('\n');
        }
    }
    let extra = extra.iter().map(|l| format!("{l}\n")).collect::<String>();
    format!("{extra}{preamble}repeat 3\n{body}end-repeat\ngc\n")
}

fn run_violations(tag: &str, src: &str) -> Vec<String> {
    let mut interp = Interpreter::new();
    for (line, cmd) in parse_script(src).unwrap_or_else(|e| panic!("{tag}: {e}")) {
        interp
            .execute(line, &cmd)
            .unwrap_or_else(|e| panic!("{tag}: {e}\n--- script ---\n{src}"));
    }
    let vm = interp.vm_ref().expect("program allocates");
    normalize_violations(vm.violation_log())
}

#[test]
fn randomized_repeat_programs_agree_across_engines() {
    let mut rng = Rng(0x6ca5_5e77);
    let mut violating_cases = 0;
    for case in 0..24 {
        let ops = gen_ops(&mut rng, 4 + case % 9);
        let emitted = emit_gca(&ops, &Default::default(), &[]);
        let base = wrap_in_repeat(&emitted, &[]);
        let par2 = wrap_in_repeat(&emitted, &["config gc-threads 2"]);
        let copying = wrap_in_repeat(&emitted, &["config collector copying"]);

        let ms_log = run_violations(&format!("case {case} [ms]"), &base);
        if !ms_log.is_empty() {
            violating_cases += 1;
        }
        assert_eq!(
            ms_log,
            run_violations(&format!("case {case} [par2]"), &par2),
            "case {case}: parallel marking diverged\n--- script ---\n{par2}"
        );
        assert_eq!(
            ms_log,
            run_violations(&format!("case {case} [copying]"), &copying),
            "case {case}: copying diverged\n--- script ---\n{copying}"
        );

        // The analyzer must stay sound on the loop-wrapped program too.
        let tag = format!("case {case} [analyzer]");
        let analysis = analyze(&base).unwrap_or_else(|e| panic!("{tag}: {e}"));
        differential_check(&tag, &base, &analysis);
    }
    assert!(
        violating_cases >= 3,
        "the randomized leg went vacuous: only {violating_cases}/24 cases report violations"
    );
}
