//! The exhaustive sweep at the default (tier-1) scope: every heap
//! program up to scope k must produce identical observables on every
//! engine pairing, and no collector invariant may trip.
//!
//! `GCA_MODELCHECK_K` overrides the scope — CI's model-check gate runs
//! the same sweep at a larger k via the release-with-debug-assertions
//! `mcheck` profile (see `.github/workflows/ci.yml`).

use gca_modelcheck::{explore, Scope};

fn scope_k() -> usize {
    std::env::var("GCA_MODELCHECK_K")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

#[test]
fn exhaustive_sweep_verifies_engine_equivalence() {
    let k = scope_k();
    let report = explore(&Scope::uniform(k));
    if let Some(cx) = &report.counterexample {
        panic!(
            "engine mismatch at scope k={k}: {}\nreplay seed: {}\n{}",
            cx.error, cx.seed, cx.script
        );
    }
    // The walk must have actually covered a state space, not returned
    // vacuously: at k=1 the canonicalized space is already thousands of
    // programs deep.
    assert!(
        report.programs_checked >= 1_000,
        "suspiciously small sweep: {report:?}"
    );
    assert!(
        report.distinct_states >= 100,
        "no pruning space: {report:?}"
    );
    assert!(
        report.pruned > 0,
        "canonical-form pruning never fired: {report:?}"
    );
    assert!(report.max_depth >= 4, "programs too short: {report:?}");
}
