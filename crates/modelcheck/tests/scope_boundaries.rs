//! Scope-boundary edge cases, pinned across all four engine families.
//!
//! The exhaustive walk visits these implicitly; pinning them as named
//! tests keeps their *expected* verdicts explicit (the model checker
//! only proves the engines agree — these prove they agree on the right
//! answer) and keeps the cases covered even when someone shrinks the CI
//! scope.

use gc_assertions::{Vm, VmConfig};
use gca_modelcheck::{engine_matrix, run_program, FuzzOp, Outcome};

/// Runs `ops` on every engine in the matrix, asserts the pinned
/// expectations on each outcome, and returns the outcomes.
fn on_all_engines(ops: &[FuzzOp], expect: impl Fn(&str, &Outcome)) {
    for spec in engine_matrix() {
        let out = run_program(spec.config.clone(), ops);
        expect(spec.name, &out);
    }
}

#[test]
fn empty_program() {
    // No ops at all: only the closing collection runs. Nothing is live,
    // nothing violates, every checking counter is zero.
    on_all_engines(&[], |name, out| {
        assert!(out.live.is_empty(), "{name}: no objects were allocated");
        assert!(out.violations.is_empty(), "{name}: nothing to report");
        assert_eq!(
            out.check_totals,
            (0, 0, 0, 0, 0, 0),
            "{name}: no checking work on an empty heap"
        );
        assert!(out.census_classes.is_empty(), "{name}: empty census");
    });
}

#[test]
fn gc_with_empty_root_set() {
    // Allocate without rooting, then collect with an empty root set:
    // everything dies, on every engine, with no checking work.
    let ops = vec![
        FuzzOp::Alloc {
            data: 0,
            root: false,
        },
        FuzzOp::Alloc {
            data: 27,
            root: false,
        },
        FuzzOp::Collect,
    ];
    on_all_engines(&ops, |name, out| {
        assert_eq!(out.live, vec![false, false], "{name}");
        assert!(out.violations.is_empty(), "{name}");
    });
}

#[test]
fn assertion_before_first_allocation() {
    // assert-instances on a class with zero allocations, registered
    // before anything exists: vacuously satisfied at every GC.
    let ops = vec![
        FuzzOp::AssertInstances { limit: 0 },
        FuzzOp::Collect,
        FuzzOp::Alloc {
            data: 0,
            root: false,
        },
        FuzzOp::Collect,
    ];
    on_all_engines(&ops, |name, out| {
        assert_eq!(out.live, vec![false], "{name}");
        assert!(
            out.violations.is_empty(),
            "{name}: an unrooted object is never live at GC time, so the \
             zero-instance limit holds"
        );
    });
}

#[test]
fn assertion_before_first_allocation_then_violated() {
    // Same site, but the allocation is rooted: the limit-0 assertion
    // must fire identically on the full-outcome engines. (The checker's
    // policy compares generational engines on liveness only, so pin the
    // violation explicitly here instead.)
    let ops = vec![
        FuzzOp::AssertInstances { limit: 0 },
        FuzzOp::Alloc {
            data: 0,
            root: true,
        },
    ];
    on_all_engines(&ops, |name, out| {
        assert_eq!(out.live, vec![true], "{name}");
        assert_eq!(
            out.violations,
            vec!["instances:N:0:1".to_string()],
            "{name}: one live instance against a limit of zero"
        );
    });
}

#[test]
fn large_object_only_heap() {
    // A heap holding nothing but large-object-space residents: survives
    // when rooted, dies when unrooted, and the census sees its words.
    let ops = vec![
        FuzzOp::Alloc {
            data: 300,
            root: true,
        },
        FuzzOp::Alloc {
            data: 300,
            root: false,
        },
        FuzzOp::Collect,
    ];
    on_all_engines(&ops, |name, out| {
        assert_eq!(out.live, vec![true, false], "{name}");
        assert!(out.violations.is_empty(), "{name}");
        assert_eq!(out.census_classes.len(), 1, "{name}: only class N lives");
        let (class, objects, _) = &out.census_classes[0];
        assert_eq!((class.as_str(), *objects), ("N", 1), "{name}");
    });
}

#[test]
fn region_bracket_with_zero_allocations() {
    // assert-alldead on an empty region: zero objects asserted, nothing
    // reported — on every engine. (The op language always allocates
    // inside a region, so this drives the VM directly.)
    for spec in engine_matrix() {
        let mut vm = Vm::new(spec.config.clone());
        let m = vm.main();
        vm.start_region(m).unwrap();
        let asserted = vm.assert_alldead(m).unwrap();
        assert_eq!(asserted, 0, "{}: empty region", spec.name);
        vm.collect().unwrap();
        assert!(
            vm.violation_log().is_empty(),
            "{}: empty region cannot violate",
            spec.name
        );
    }
}

#[test]
fn assert_dead_on_large_object_reports_on_every_engine() {
    // Cross-cutting boundary: the DEAD bit on a large-object-space
    // resident must be seen by the trace on all engines (the LOS is
    // swept differently from the small-object pages).
    let ops = vec![
        FuzzOp::Alloc {
            data: 300,
            root: true,
        },
        FuzzOp::AssertDead { target: 0 },
    ];
    on_all_engines(&ops, |name, out| {
        assert_eq!(out.live, vec![true], "{name}");
        assert_eq!(
            out.violations,
            vec!["dead:0:N".to_string()],
            "{name}: the rooted large object is reachable at the close"
        );
    });
}

#[test]
fn boundary_outcomes_agree_pairwise_in_full() {
    // The same edge cases, swept through the differential checker itself
    // (full Outcome comparison policy, not just the pinned fields).
    let cases: Vec<Vec<FuzzOp>> = vec![
        vec![],
        vec![FuzzOp::Collect],
        vec![FuzzOp::AssertInstances { limit: 0 }, FuzzOp::Collect],
        vec![
            FuzzOp::Alloc {
                data: 300,
                root: true,
            },
            FuzzOp::Collect,
        ],
        vec![
            FuzzOp::Region {
                len: 0,
                leak: false,
            },
            FuzzOp::Collect,
        ],
        vec![FuzzOp::Region { len: 0, leak: true }, FuzzOp::Collect],
    ];
    for ops in &cases {
        gca_modelcheck::check_program(ops)
            .unwrap_or_else(|e| panic!("boundary case {ops:?} diverged: {e}"));
    }
}

#[test]
fn minor_gc_before_any_allocation() {
    // A minor collection on a completely empty nursery, before anything
    // exists: legal, and a no-op everywhere.
    let out = run_program(
        VmConfig::builder()
            .heap_budget(gca_modelcheck::MODEL_HEAP_WORDS)
            .generational(2)
            .build(),
        &[FuzzOp::MinorGc],
    );
    assert!(out.live.is_empty());
    assert!(out.violations.is_empty());
}
