//! Seeded-bug validation: the whole verification stack must actually
//! catch a planted collector defect, minimize it, and emit a runnable
//! counterexample.
//!
//! The fault (see `gca_collector::sabotage`) drops the first
//! forwarding-address install of every copying-collector cycle: the
//! survivor is marked but never evacuated, so it loses its address at
//! the space flip. In debug builds the forwarding-totality invariant
//! module fails the cycle immediately; either way the engine run panics
//! and the differential checker converts it into an `EngineFailure`.

use gca_collector::sabotage::SkipFirstForwardGuard;
use gca_modelcheck::{
    check_program_with, engine_matrix, minimize_counterexample, parse_replay, CheckError, FuzzOp,
};

fn copying_spec() -> Vec<gca_modelcheck::EngineSpec> {
    engine_matrix()
        .into_iter()
        .filter(|s| s.name == "ms" || s.name == "copying")
        .collect()
}

#[test]
fn seeded_forwarding_bug_is_caught_and_minimized() {
    let matrix = copying_spec();
    // A deliberately noisy program: the fault only needs the rooted
    // alloc + a collection, everything else is shrinkable chaff.
    let ops = vec![
        FuzzOp::Alloc {
            data: 27,
            root: false,
        },
        FuzzOp::Alloc {
            data: 0,
            root: true,
        },
        FuzzOp::Link {
            from: 0,
            field: 1,
            to: 0,
        },
        FuzzOp::AssertUnshared { target: 0 },
        FuzzOp::Collect,
        FuzzOp::Alloc {
            data: 0,
            root: true,
        },
        FuzzOp::UnrootTo { keep: 1 },
        FuzzOp::Collect,
    ];

    let _armed = SkipFirstForwardGuard::arm();
    let error = check_program_with(&matrix, &ops)
        .expect_err("the planted bug must fail the differential check");
    match &error {
        CheckError::EngineFailure { engine, .. } => {
            assert_eq!(*engine, "copying", "only the copying backend is sabotaged")
        }
        other => panic!("expected an engine failure, got: {other}"),
    }

    let cx = minimize_counterexample(&matrix, &ops);
    // The minimal trigger is a single rooted allocation (the implicit
    // closing collection does the rest).
    assert!(
        cx.ops.len() <= 2,
        "expected a 1-2 op counterexample, got {:?}",
        cx.ops
    );
    assert!(
        cx.ops
            .iter()
            .any(|op| matches!(op, FuzzOp::Alloc { root: true, .. })),
        "a rooted survivor is required to trigger the skipped forward: {:?}",
        cx.ops
    );
    assert!(matches!(cx.error, CheckError::EngineFailure { engine, .. } if engine == "copying"));

    // The replay seed round-trips to the same minimized program.
    assert_eq!(parse_replay(&cx.seed).unwrap(), cx.ops);

    // The emitted counterexample is a runnable .gca script targeting the
    // implicated engine.
    let script = gca_script::parse_script(&cx.script)
        .unwrap_or_else(|e| panic!("emitted script must parse: {e}\n{}", cx.script));
    assert!(!script.is_empty());
    assert!(
        cx.script.contains("config collector copying"),
        "script must select the failing engine:\n{}",
        cx.script
    );
    assert!(
        cx.script.contains(&cx.seed),
        "script header must carry the replay seed"
    );
}

#[test]
fn disarmed_fault_leaves_engines_equivalent() {
    // The same program with the fault disarmed checks clean — proving
    // the failure above came from the planted bug, not the checker.
    let matrix = copying_spec();
    let ops = vec![
        FuzzOp::Alloc {
            data: 0,
            root: true,
        },
        FuzzOp::Collect,
    ];
    check_program_with(&matrix, &ops).expect("no fault, no failure");
}
