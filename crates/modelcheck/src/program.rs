//! The shared heap-program language and its deterministic interpreter.
//!
//! This is the *single* definition of the random/enumerated program
//! language consumed by every differential harness in the repository: the
//! proptest fuzz suites in `crates/core/tests`, the exhaustive bounded
//! model checker in [`crate::enumerate`], and the counterexample shrinker
//! in [`crate::shrink`]. Adding an op here (e.g. when the concurrent
//! marking engine lands) extends all of them at once.
//!
//! Object-referencing operations index into the *rooted* set modulo its
//! length, and every op silently no-ops when its preconditions are unmet,
//! so **any** op sequence — and any subsequence of one, which is what
//! makes greedy shrinking sound — is a valid program under any collection
//! schedule.

use gc_assertions::{ObjRef, Violation, ViolationKind, Vm, VmConfig};
use proptest::prelude::*;

/// One step of a heap program. Object-referencing operations index into
/// the *rooted* set (modulo its length), so every program is valid under
/// any collection schedule — an engine can never make an op dangle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzOp {
    /// Allocate a 3-field `N` object with `data` payload words (the data
    /// size selects the BiBOP size class, or the large-object space past
    /// the LOS threshold), optionally rooting it.
    Alloc {
        /// Data payload words.
        data: usize,
        /// Whether to root the new object.
        root: bool,
    },
    /// `rooted[from].field = rooted[to]`.
    Link {
        /// Source index into the rooted set.
        from: usize,
        /// Field index (modulo the field count).
        field: usize,
        /// Target index into the rooted set.
        to: usize,
    },
    /// `rooted[from].field = null`.
    Unlink {
        /// Source index into the rooted set.
        from: usize,
        /// Field index (modulo the field count).
        field: usize,
    },
    /// Exchange `rooted[a].field` and `rooted[b].field` — the third edge
    /// mutation shape (store / clear / swap) of the model checker's scope.
    Swap {
        /// First object index into the rooted set.
        a: usize,
        /// Second object index into the rooted set.
        b: usize,
        /// Field index (modulo the field count).
        field: usize,
    },
    /// Unroot every rooted object past the first `keep`.
    UnrootTo {
        /// Number of oldest roots to keep.
        keep: usize,
    },
    /// Full (major) collection + heap verification.
    Collect,
    /// Minor (nursery-only) collection on generational engines; a no-op
    /// everywhere else. Exercises the card-scan / remembered-set minor
    /// paths, which explicit majors never reach on small programs.
    MinorGc,
    /// `assert-dead` on a rooted object. It passes if a later `UnrootTo`
    /// kills the object before the next collection, and reports a
    /// `DeadReachable` violation otherwise — both outcomes must be
    /// engine-independent.
    AssertDead {
        /// Target index into the rooted set.
        target: usize,
    },
    /// `assert-unshared` on a rooted object.
    AssertUnshared {
        /// Target index into the rooted set.
        target: usize,
    },
    /// `assert-instances` on class `N`.
    AssertInstances {
        /// Live-instance limit.
        limit: u32,
    },
    /// A bracketed `start_region` / `assert_alldead` pair allocating
    /// `1 + len % 4` objects inline; with `leak` the first one is rooted,
    /// which must produce a `DeadReachable` violation on every engine.
    Region {
        /// Controls the inline allocation count (`1 + len % 4`).
        len: usize,
        /// Whether to leak (root) the first region object.
        leak: bool,
    },
    /// Allocate an owner and an ownee, pin both as globals (so no
    /// collection schedule can kill a participant mid-program), link
    /// `owner -> ownee` and `assert_owned_by`.
    OwnPair,
    /// Leak the most recent ownee: `rooted[from].field = ownee`. Harmless
    /// while the owner edge stands (the pre-phase marks the ownee owned),
    /// but after `BreakOwner` the root scan reaches an unowned ownee.
    LeakOwnee {
        /// Source index into the rooted set.
        from: usize,
    },
    /// Sever the most recent owner's edge to its ownee.
    BreakOwner,
}

/// Strategy over [`FuzzOp`], weighted so programs mix heap mutation with
/// every assertion kind.
pub fn fuzz_op_strategy() -> impl Strategy<Value = FuzzOp> {
    prop_oneof![
        4 => (0usize..6, any::<bool>()).prop_map(|(data, root)| FuzzOp::Alloc { data, root }),
        3 => (0usize..64, 0usize..3, 0usize..64)
            .prop_map(|(from, field, to)| FuzzOp::Link { from, field, to }),
        2 => (0usize..64, 0usize..3).prop_map(|(from, field)| FuzzOp::Unlink { from, field }),
        1 => (0usize..64, 0usize..64, 0usize..3)
            .prop_map(|(a, b, field)| FuzzOp::Swap { a, b, field }),
        1 => (0usize..16).prop_map(|keep| FuzzOp::UnrootTo { keep }),
        2 => Just(FuzzOp::Collect),
        1 => Just(FuzzOp::MinorGc),
        2 => (0usize..64).prop_map(|target| FuzzOp::AssertDead { target }),
        2 => (0usize..64).prop_map(|target| FuzzOp::AssertUnshared { target }),
        1 => (0u32..4).prop_map(|limit| FuzzOp::AssertInstances { limit }),
        1 => (0usize..4, any::<bool>()).prop_map(|(len, leak)| FuzzOp::Region { len, leak }),
        1 => Just(FuzzOp::OwnPair),
        1 => (0usize..64).prop_map(|from| FuzzOp::LeakOwnee { from }),
        1 => Just(FuzzOp::BreakOwner),
    ]
}

/// Strategy over the mutation-only subset of [`FuzzOp`] (no assertion
/// sites, no minors): allocation, edge stores/clears, unrooting, and
/// full collections. Used by the pure liveness-equivalence suite.
pub fn mutation_op_strategy() -> impl Strategy<Value = FuzzOp> {
    prop_oneof![
        3 => (0usize..6, any::<bool>()).prop_map(|(data, root)| FuzzOp::Alloc { data, root }),
        2 => (0usize..64, 0usize..3, 0usize..64)
            .prop_map(|(from, field, to)| FuzzOp::Link { from, field, to }),
        1 => (0usize..64, 0usize..3).prop_map(|(from, field)| FuzzOp::Unlink { from, field }),
        1 => (0usize..16).prop_map(|keep| FuzzOp::UnrootTo { keep }),
        1 => Just(FuzzOp::Collect),
    ]
}

/// Everything one engine run observably produced. Two engines agree on a
/// program iff their `Outcome`s are equal (`PartialEq` derives field-wise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Allocation-ordered liveness bitmap after the closing collection.
    pub live: Vec<bool>,
    /// Normalized, sorted violation log across the whole run — one string
    /// per report keyed by (kind, object slot, class names); paths are
    /// deliberately excluded (a BFS scan reports edges in a different
    /// *order* than a DFS scan, but must report the same *set*).
    pub violations: Vec<String>,
    /// Cumulative assertion-checking work: this pins the visit
    /// *multiplicities* (one `visit_new` per object, one `visit_marked`
    /// per extra edge), not just the verdicts.
    pub check_totals: (u64, u64, u64, u64, u64, u64),
    /// Per-class live totals from the final collection's census.
    pub census_classes: Vec<(String, u64, u64)>,
    /// Per-allocation-site live totals from the final collection's census.
    pub census_sites: Vec<(String, u64, u64)>,
}

/// Collapses a violation to an order-independent, path-independent key.
pub fn violation_key(v: &Violation) -> String {
    match &v.kind {
        ViolationKind::DeadReachable { object, class_name } => {
            format!("dead:{}:{}", object.index(), class_name)
        }
        ViolationKind::InstanceLimit {
            class_name,
            limit,
            count,
        } => format!("instances:{class_name}:{limit}:{count}"),
        ViolationKind::Shared { object, class_name } => {
            format!("shared:{}:{}", object.index(), class_name)
        }
        ViolationKind::NotOwned {
            ownee,
            ownee_class,
            owner,
            owner_class,
        } => format!(
            "notowned:{}:{}:{}:{}",
            ownee.index(),
            ownee_class,
            owner.index(),
            owner_class
        ),
        ViolationKind::ImproperOwnership {
            ownee,
            ownee_class,
            scanned_owner,
            scanned_owner_class,
        } => format!(
            "improper:{}:{}:{}:{}",
            ownee.index(),
            ownee_class,
            scanned_owner.index(),
            scanned_owner_class
        ),
        ViolationKind::OwneeOutlivedOwner {
            ownee,
            ownee_class,
            owner_class,
        } => format!("outlived:{}:{}:{}", ownee.index(), ownee_class, owner_class),
        other => panic!("violation_key: unhandled violation kind {other:?}"),
    }
}

/// Normalizes a violation log for cross-engine comparison: per-violation
/// keys, sorted.
pub fn normalize_violations(vs: &[Violation]) -> Vec<String> {
    let mut out: Vec<String> = vs.iter().map(violation_key).collect();
    out.sort();
    out
}

/// Replays `ops` on a fresh VM built from `config` and returns the full
/// [`Outcome`].
///
/// After every collection (and at the end) the backend-dispatched
/// [`gc_assertions::Vm::heap`] `verify()` runs — page/card geometry,
/// dangling references, and the active space's address invariants — so a
/// substrate corruption fails the run rather than corrupting the
/// comparison.
///
/// # Panics
///
/// On any VM error or heap-verification failure (failing the property or
/// model-check run that called it).
pub fn run_program(config: VmConfig, ops: &[FuzzOp]) -> Outcome {
    let generational = config.generational.is_some();
    let mut vm = Vm::new(config);
    let n = vm.register_class("N", &["a", "b", "c"]);
    let owner_c = vm.register_class("Owner", &["prop"]);
    let ownee_c = vm.register_class("Ownee", &["x"]);
    let m = vm.main();

    let mut allocated: Vec<ObjRef> = Vec::new();
    // Rooted handles with their root-slot indices (we unroot suffixes).
    let mut rooted: Vec<(usize, ObjRef)> = Vec::new();
    // Ownership participants are pinned as globals, never unrooted.
    let mut owners: Vec<ObjRef> = Vec::new();
    let mut ownees: Vec<ObjRef> = Vec::new();

    let verify = |vm: &Vm| {
        // One backend-dispatched check: page/card structure, dangling
        // references, and the active space's address invariants.
        let problems = vm.heap().verify();
        assert!(problems.is_empty(), "heap corruption: {problems:?}");
    };

    for op in ops {
        match op {
            FuzzOp::Alloc { data, root } => {
                let o = vm.alloc(m, n, 3, *data).unwrap();
                allocated.push(o);
                if *root {
                    let slot = vm.add_root(m, o).unwrap();
                    rooted.push((slot, o));
                }
            }
            FuzzOp::Link { from, field, to } if !rooted.is_empty() => {
                let f = rooted[from % rooted.len()].1;
                let t = rooted[to % rooted.len()].1;
                vm.set_field(f, field % 3, t).unwrap();
            }
            FuzzOp::Unlink { from, field } if !rooted.is_empty() => {
                let f = rooted[from % rooted.len()].1;
                vm.set_field(f, field % 3, ObjRef::NULL).unwrap();
            }
            FuzzOp::Swap { a, b, field } if !rooted.is_empty() => {
                let x = rooted[a % rooted.len()].1;
                let y = rooted[b % rooted.len()].1;
                let f = field % 3;
                let fx = vm.field(x, f).unwrap();
                let fy = vm.field(y, f).unwrap();
                vm.set_field(x, f, fy).unwrap();
                vm.set_field(y, f, fx).unwrap();
            }
            FuzzOp::UnrootTo { keep } if rooted.len() > *keep => {
                for &(slot, _) in &rooted[*keep..] {
                    vm.set_root(m, slot, ObjRef::NULL).unwrap();
                }
                rooted.truncate(*keep);
            }
            FuzzOp::Collect => {
                vm.collect().unwrap();
                verify(&vm);
            }
            FuzzOp::MinorGc if generational => {
                vm.collect_minor().unwrap();
                verify(&vm);
            }
            FuzzOp::AssertDead { target } if !rooted.is_empty() => {
                let t = rooted[target % rooted.len()].1;
                vm.assert_dead(t).unwrap();
            }
            FuzzOp::AssertUnshared { target } if !rooted.is_empty() => {
                let t = rooted[target % rooted.len()].1;
                vm.assert_unshared(t).unwrap();
            }
            FuzzOp::AssertInstances { limit } => {
                vm.assert_instances(n, *limit).unwrap();
            }
            FuzzOp::Region { len, leak } => {
                vm.start_region(m).unwrap();
                let mut first = None;
                for _ in 0..(len % 4) + 1 {
                    let o = vm.alloc(m, n, 3, 0).unwrap();
                    allocated.push(o);
                    first.get_or_insert(o);
                }
                if *leak {
                    let o = first.unwrap();
                    let slot = vm.add_root(m, o).unwrap();
                    rooted.push((slot, o));
                }
                vm.assert_alldead(m).unwrap();
            }
            FuzzOp::OwnPair => {
                let o = vm.alloc(m, owner_c, 1, 0).unwrap();
                let e = vm.alloc(m, ownee_c, 1, 0).unwrap();
                allocated.push(o);
                allocated.push(e);
                vm.add_global(o).unwrap();
                // The ownee is pinned too: after `BreakOwner` it must stay
                // referenceable (for `LeakOwnee`) and the global root then
                // reaches an unowned ownee — a deterministic `NotOwned`.
                vm.add_global(e).unwrap();
                vm.set_field(o, 0, e).unwrap();
                vm.assert_owned_by(o, e).unwrap();
                owners.push(o);
                ownees.push(e);
            }
            FuzzOp::LeakOwnee { from } if !rooted.is_empty() && !ownees.is_empty() => {
                let f = rooted[from % rooted.len()].1;
                vm.set_field(f, from % 3, *ownees.last().unwrap()).unwrap();
            }
            FuzzOp::BreakOwner if !owners.is_empty() => {
                vm.set_field(*owners.last().unwrap(), 0, ObjRef::NULL)
                    .unwrap();
            }
            _ => {}
        }
    }
    vm.collect().unwrap();
    verify(&vm);

    let t = vm.check_totals();
    let check_totals = (
        t.owners_scanned,
        t.ownees_checked,
        t.deferred_ownees_processed,
        t.dead_bits_seen,
        t.tracked_instances_counted,
        t.unshared_bits_seen,
    );
    let census = vm.census();
    let (census_classes, census_sites) = match census.latest() {
        None => (Vec::new(), Vec::new()),
        Some(cycle) => (
            cycle
                .data
                .classes
                .iter()
                .map(|e| (e.name.clone(), e.objects, e.bytes))
                .collect(),
            cycle
                .data
                .sites
                .iter()
                .map(|e| (e.name.clone(), e.objects, e.bytes))
                .collect(),
        ),
    };
    Outcome {
        live: allocated.iter().map(|&o| vm.is_live(o)).collect(),
        violations: normalize_violations(vm.violation_log()),
        check_totals,
        census_classes,
        census_sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_exchanges_fields() {
        let ops = vec![
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
            FuzzOp::Link {
                from: 0,
                field: 0,
                to: 1,
            },
            FuzzOp::Swap {
                a: 0,
                b: 1,
                field: 0,
            },
            FuzzOp::UnrootTo { keep: 1 },
            FuzzOp::Collect,
        ];
        // Before the swap: n0.a = n1, n1.a = null. After: n0.a = null,
        // n1.a = n1 (a self-loop). Unrooting n1 then leaves it
        // unreachable — the swap severed its only path from a root.
        let out = run_program(VmConfig::builder().build(), &ops);
        assert_eq!(out.live, vec![true, false]);
    }

    #[test]
    fn minor_gc_is_a_no_op_without_generational() {
        let ops = vec![
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
            FuzzOp::MinorGc,
            FuzzOp::Collect,
        ];
        let out = run_program(VmConfig::builder().build(), &ops);
        assert_eq!(out.live, vec![true]);
    }

    #[test]
    fn minor_gc_runs_on_generational() {
        let ops = vec![
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
            FuzzOp::Alloc {
                data: 0,
                root: false,
            },
            FuzzOp::MinorGc,
        ];
        let out = run_program(VmConfig::builder().generational(4).build(), &ops);
        // The unrooted nursery object is reclaimed by the minor; the
        // rooted one is promoted and survives the closing major.
        assert_eq!(out.live, vec![true, false]);
    }
}
