//! Bounded model checking for the GC-assertions engine matrix.
//!
//! This crate exhaustively enumerates every small heap program up to a
//! configurable scope — allocations across the BiBOP size classes and
//! the large-object space, edge mutations (store / clear / swap),
//! root-set changes, explicit major/minor GC points, and every
//! assertion kind the paper describes, interleaved at every program
//! point — and runs each one through the full collector engine matrix
//! (`ms`, `par2`, `copying`, `gen-cards`, `gen-rs`), requiring
//! bit-identical observable outcomes per the pairing policy in
//! [`engines`].
//!
//! The walk is made tractable by canonical-form pruning (heap-graph
//! isomorphism reduction plus prefix memoization, see [`enumerate`])
//! without ever skipping a program check. When a pairing disagrees or an
//! engine trips an invariant, the failing program is minimized by the
//! greedy shrinker in [`shrink`] and emitted as a runnable `.gca`
//! script plus a compact replay seed by [`emit`].
//!
//! The same op language ([`program`]) feeds the randomized differential
//! suites in `crates/core/tests`, so the fuzzers and the model checker
//! can never drift apart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod engines;
pub mod enumerate;
pub mod program;
pub mod shrink;

pub use emit::{emit_gca, parse_replay, replay_seed};
pub use engines::{
    check_program, check_program_with, engine_matrix, CheckError, EngineSpec, MODEL_HEAP_WORDS,
};
pub use enumerate::{
    explore, explore_with, minimize_counterexample, Counterexample, Report, Scope,
};
pub use program::{
    fuzz_op_strategy, mutation_op_strategy, normalize_violations, run_program, violation_key,
    FuzzOp, Outcome,
};
pub use shrink::shrink_ops;
