//! Greedy counterexample shrinker.
//!
//! The op language is *total* — every op no-ops when its preconditions
//! are unmet and operand indices wrap modulo the rooted set — so **any
//! subsequence of a failing program is itself a valid program**. That
//! makes delta debugging sound without any repair step: we just delete
//! ops while the failure persists.

use crate::program::FuzzOp;

/// Shrinks `ops` to a locally-minimal failing program: first a
/// halving-chunk pass (classic ddmin, cheap on long fuzz programs), then
/// single-op deletion to a fixpoint. `still_fails` must return `true`
/// when the candidate program still exhibits the failure being chased.
///
/// The result is 1-minimal: removing any single remaining op makes the
/// failure disappear.
pub fn shrink_ops<F: FnMut(&[FuzzOp]) -> bool>(ops: &[FuzzOp], mut still_fails: F) -> Vec<FuzzOp> {
    let mut current: Vec<FuzzOp> = ops.to_vec();

    // Chunked pass: try dropping contiguous halves, quarters, ...
    let mut chunk = current.len() / 2;
    while chunk >= 1 {
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                // Retry the same window position on the shrunk program.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Single-op fixpoint (also handles what the chunk pass left behind).
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < current.len() {
            if current.len() == 1 {
                break;
            }
            let mut candidate = current.clone();
            candidate.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
        if !changed {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(root: bool) -> FuzzOp {
        FuzzOp::Alloc { data: 0, root }
    }

    #[test]
    fn shrinks_to_the_failure_core() {
        // "Failure" = program contains both a rooted alloc and a Collect.
        let ops = vec![
            alloc(false),
            alloc(true),
            FuzzOp::Unlink { from: 0, field: 0 },
            FuzzOp::Collect,
            alloc(false),
            FuzzOp::BreakOwner,
        ];
        let fails = |ops: &[FuzzOp]| {
            ops.iter()
                .any(|o| matches!(o, FuzzOp::Alloc { root: true, .. }))
                && ops.iter().any(|o| matches!(o, FuzzOp::Collect))
        };
        let minimal = shrink_ops(&ops, fails);
        assert_eq!(minimal, vec![alloc(true), FuzzOp::Collect]);
    }

    #[test]
    fn minimal_program_is_1_minimal() {
        let ops = vec![alloc(true); 5];
        let fails = |ops: &[FuzzOp]| ops.len() >= 3;
        let minimal = shrink_ops(&ops, fails);
        assert_eq!(minimal.len(), 3, "exactly at the failure threshold");
    }
}
