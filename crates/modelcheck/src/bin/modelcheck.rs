//! Command-line driver for the bounded model checker.
//!
//! ```text
//! modelcheck [--k N]          exhaustive sweep at uniform scope k (default 2,
//!                             or $GCA_MODELCHECK_K); exits 1 on a mismatch
//! modelcheck --scope O,L,M,R,G,A
//!                             sweep a fine-grained scope: objects, large
//!                             objects, mutations, root ops, GCs, asserts
//! modelcheck --table MAXK     state-space table for k = 1..=MAXK (markdown)
//! modelcheck --replay SEED    re-check one program from a replay seed
//! ```

use std::process::ExitCode;
use std::time::Instant;

use gca_modelcheck::{explore, parse_replay, replay_seed, Counterexample, Report, Scope};

fn print_report(r: &Report) {
    println!(
        "scope k: objects={} large={} mutations={} root_ops={} gcs={} asserts={}",
        r.scope.objects,
        r.scope.large,
        r.scope.mutations,
        r.scope.root_ops,
        r.scope.gcs,
        r.scope.asserts
    );
    println!("programs checked : {}", r.programs_checked);
    println!("distinct states  : {}", r.distinct_states);
    println!("pruned expansions: {}", r.pruned);
    println!("max depth        : {}", r.max_depth);
}

fn print_counterexample(cx: &Counterexample) {
    eprintln!("MISMATCH: {}", cx.error);
    eprintln!(
        "minimized from {} ops to {}; replay seed: {}",
        cx.original_len,
        cx.ops.len(),
        replay_seed(&cx.ops)
    );
    eprintln!("--- counterexample.gca ---");
    eprint!("{}", cx.script);
    eprintln!("--------------------------");
}

fn sweep(scope: &Scope) -> ExitCode {
    let start = Instant::now();
    let report = explore(scope);
    print_report(&report);
    println!("wall time        : {:.2?}", start.elapsed());
    match &report.counterexample {
        None => {
            println!("verified clean at scope {scope:?}");
            ExitCode::SUCCESS
        }
        Some(cx) => {
            print_counterexample(cx);
            ExitCode::FAILURE
        }
    }
}

/// Parses `--scope O,L,M,R,G,A` into per-dimension budgets.
fn parse_scope(s: &str) -> Option<Scope> {
    let parts: Vec<usize> = s
        .split(',')
        .map(|p| p.trim().parse().ok())
        .collect::<Option<_>>()?;
    match parts.as_slice() {
        &[objects, large, mutations, root_ops, gcs, asserts] => Some(Scope {
            objects,
            large,
            mutations,
            root_ops,
            gcs,
            asserts,
        }),
        _ => None,
    }
}

fn table(max_k: usize) -> ExitCode {
    println!("| k | programs checked | distinct states | pruned | max depth | wall time |");
    println!("|---|-----------------:|----------------:|-------:|----------:|----------:|");
    let mut failed = false;
    for k in 1..=max_k {
        let start = Instant::now();
        let report = explore(&Scope::uniform(k));
        println!(
            "| {k} | {} | {} | {} | {} | {:.2?} |",
            report.programs_checked,
            report.distinct_states,
            report.pruned,
            report.max_depth,
            start.elapsed()
        );
        if let Some(cx) = &report.counterexample {
            print_counterexample(cx);
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn replay(seed: &str) -> ExitCode {
    let ops = match parse_replay(seed) {
        Ok(ops) => ops,
        Err(e) => {
            eprintln!("bad replay seed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("replaying {} ops", ops.len());
    match gca_modelcheck::check_program(&ops) {
        Ok(()) => {
            println!("all engine pairings agree");
            ExitCode::SUCCESS
        }
        Err(e) => {
            let cx =
                gca_modelcheck::minimize_counterexample(&gca_modelcheck::engine_matrix(), &ops);
            eprintln!("check failed: {e}");
            print_counterexample(&cx);
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse_k = |s: &str| -> Option<usize> { s.parse().ok() };
    match args.as_slice() {
        [] => {
            let k = std::env::var("GCA_MODELCHECK_K")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(2);
            sweep(&Scope::uniform(k))
        }
        [flag, value] if flag == "--k" => match parse_k(value) {
            Some(k) => sweep(&Scope::uniform(k)),
            None => usage(),
        },
        [flag, value] if flag == "--scope" => match parse_scope(value) {
            Some(scope) => sweep(&scope),
            None => usage(),
        },
        [flag, value] if flag == "--table" => match parse_k(value) {
            Some(k) if k >= 1 => table(k),
            _ => usage(),
        },
        [flag, seed] if flag == "--replay" => replay(seed),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: modelcheck [--k N | --scope O,L,M,R,G,A | --table MAXK | --replay SEED]");
    ExitCode::FAILURE
}
