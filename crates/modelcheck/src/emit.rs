//! Counterexample emission: a failing op sequence becomes a runnable
//! `.gca` script (for the existing `gca` / golden-pin workflow) plus a
//! compact replay seed that round-trips through [`parse_replay`].
//!
//! Emission replays the program on a small shadow interpreter so every
//! modulo-indexed operand is resolved to the concrete variable it hit —
//! including `Swap`, which the script language has no primitive for (the
//! shadow knows both field values, so it lowers to two `set`s).

use gc_assertions::{CollectorKind, MinorStrategy, VmConfig};

use crate::program::FuzzOp;

const N_FIELDS: [&str; 3] = ["a", "b", "c"];

/// Serializes ops as a compact one-line replay seed.
pub fn replay_seed(ops: &[FuzzOp]) -> String {
    let mut parts = Vec::with_capacity(ops.len());
    for op in ops {
        parts.push(match op {
            FuzzOp::Alloc { data, root } => {
                format!("a{data}{}", if *root { "r" } else { "" })
            }
            FuzzOp::Link { from, field, to } => format!("l{from},{field},{to}"),
            FuzzOp::Unlink { from, field } => format!("u{from},{field}"),
            FuzzOp::Swap { a, b, field } => format!("s{a},{b},{field}"),
            FuzzOp::UnrootTo { keep } => format!("k{keep}"),
            FuzzOp::Collect => "g".to_string(),
            FuzzOp::MinorGc => "m".to_string(),
            FuzzOp::AssertDead { target } => format!("d{target}"),
            FuzzOp::AssertUnshared { target } => format!("n{target}"),
            FuzzOp::AssertInstances { limit } => format!("i{limit}"),
            FuzzOp::Region { len, leak } => {
                format!("r{len}{}", if *leak { "x" } else { "" })
            }
            FuzzOp::OwnPair => "o".to_string(),
            FuzzOp::LeakOwnee { from } => format!("e{from}"),
            FuzzOp::BreakOwner => "b".to_string(),
        });
    }
    parts.join(";")
}

/// Parses a replay seed back into the op sequence.
///
/// # Errors
///
/// A human-readable description of the first malformed token.
pub fn parse_replay(seed: &str) -> Result<Vec<FuzzOp>, String> {
    let mut ops = Vec::new();
    for tok in seed.split(';').filter(|t| !t.is_empty()) {
        let (head, rest) = tok.split_at(1);
        let nums = |s: &str, n: usize| -> Result<Vec<usize>, String> {
            let parts: Vec<&str> = s.split(',').collect();
            if parts.len() != n {
                return Err(format!("token {tok:?}: expected {n} operands"));
            }
            parts
                .iter()
                .map(|p| {
                    p.parse::<usize>()
                        .map_err(|_| format!("bad operand in {tok:?}"))
                })
                .collect()
        };
        ops.push(match head {
            "a" => {
                let (digits, root) = match rest.strip_suffix('r') {
                    Some(d) => (d, true),
                    None => (rest, false),
                };
                FuzzOp::Alloc {
                    data: digits.parse().map_err(|_| format!("bad data in {tok:?}"))?,
                    root,
                }
            }
            "l" => {
                let v = nums(rest, 3)?;
                FuzzOp::Link {
                    from: v[0],
                    field: v[1],
                    to: v[2],
                }
            }
            "u" => {
                let v = nums(rest, 2)?;
                FuzzOp::Unlink {
                    from: v[0],
                    field: v[1],
                }
            }
            "s" => {
                let v = nums(rest, 3)?;
                FuzzOp::Swap {
                    a: v[0],
                    b: v[1],
                    field: v[2],
                }
            }
            "k" => FuzzOp::UnrootTo {
                keep: rest.parse().map_err(|_| format!("bad keep in {tok:?}"))?,
            },
            "g" => FuzzOp::Collect,
            "m" => FuzzOp::MinorGc,
            "d" => FuzzOp::AssertDead {
                target: rest.parse().map_err(|_| format!("bad target in {tok:?}"))?,
            },
            "n" => FuzzOp::AssertUnshared {
                target: rest.parse().map_err(|_| format!("bad target in {tok:?}"))?,
            },
            "i" => FuzzOp::AssertInstances {
                limit: rest.parse().map_err(|_| format!("bad limit in {tok:?}"))?,
            },
            "r" => {
                let (digits, leak) = match rest.strip_suffix('x') {
                    Some(d) => (d, true),
                    None => (rest, false),
                };
                FuzzOp::Region {
                    len: digits.parse().map_err(|_| format!("bad len in {tok:?}"))?,
                    leak,
                }
            }
            "o" => FuzzOp::OwnPair,
            "e" => FuzzOp::LeakOwnee {
                from: rest.parse().map_err(|_| format!("bad from in {tok:?}"))?,
            },
            "b" => FuzzOp::BreakOwner,
            other => return Err(format!("unknown op tag {other:?} in {tok:?}")),
        });
    }
    Ok(ops)
}

/// Shadow object for name resolution during emission.
struct EObj {
    var: String,
    fields: Vec<Option<usize>>, // alloc ids
}

/// Renders `ops` as a runnable `.gca` script configured for `config`
/// (collector kind, generational schedule and minor strategy are
/// scriptable; worker count and census are noted as comments). Extra
/// `header` lines are prepended as `#` comments — the caller puts the
/// mismatch description and replay seed there.
pub fn emit_gca(ops: &[FuzzOp], config: &VmConfig, header: &[String]) -> String {
    let mut out = String::new();
    let mut push = |line: &str| {
        out.push_str(line);
        out.push('\n');
    };
    push("# gca-modelcheck counterexample");
    for h in header {
        push(&format!("# {h}"));
    }
    push(&format!("# replay seed: {}", replay_seed(ops)));
    push(&format!("config heap {}", config.heap_budget));
    push(&format!(
        "config grow {}",
        if config.grow { "on" } else { "off" }
    ));
    if config.collector == CollectorKind::Copying {
        push("config collector copying");
    }
    if let Some(n) = config.generational {
        push(&format!("config generational {n}"));
        push(&format!(
            "config minor-strategy {}",
            match config.minor_strategy {
                MinorStrategy::Cards => "cards",
                MinorStrategy::RememberedSet => "remembered-set",
            }
        ));
    }
    if config.gc_threads > 1 {
        push(&format!(
            "# gc_threads {} is not scriptable; run this engine via the API",
            config.gc_threads
        ));
    }
    push("class N a b c");
    push("class Owner prop");
    push("class Ownee x");

    let generational = config.generational.is_some();
    let mut objs: Vec<EObj> = Vec::new();
    let mut rooted: Vec<usize> = Vec::new(); // alloc ids, one frame each
    let mut owners: Vec<usize> = Vec::new();
    let mut ownees: Vec<usize> = Vec::new();
    let mut n_count = 0usize;
    let mut own_count = 0usize;

    let alloc_n = |objs: &mut Vec<EObj>, n_count: &mut usize| -> usize {
        let var = format!("n{n_count}");
        *n_count += 1;
        objs.push(EObj {
            var,
            fields: vec![None; 3],
        });
        objs.len() - 1
    };
    let field_target = |objs: &[EObj], id: Option<usize>| -> String {
        match id {
            None => "null".to_string(),
            Some(i) => objs[i].var.clone(),
        }
    };

    for op in ops {
        match op {
            FuzzOp::Alloc { data, root } => {
                let id = alloc_n(&mut objs, &mut n_count);
                if *data > 0 {
                    push(&format!("new {} N {}", objs[id].var, data));
                } else {
                    push(&format!("new {} N", objs[id].var));
                }
                if *root {
                    push("frame");
                    push(&format!("root {}", objs[id].var));
                    rooted.push(id);
                }
            }
            FuzzOp::Link { from, field, to } if !rooted.is_empty() => {
                let f = rooted[from % rooted.len()];
                let t = rooted[to % rooted.len()];
                let fi = field % 3;
                objs[f].fields[fi] = Some(t);
                let tv = objs[t].var.clone();
                push(&format!("set {}.{} {}", objs[f].var, N_FIELDS[fi], tv));
            }
            FuzzOp::Unlink { from, field } if !rooted.is_empty() => {
                let f = rooted[from % rooted.len()];
                let fi = field % 3;
                objs[f].fields[fi] = None;
                push(&format!("set {}.{} null", objs[f].var, N_FIELDS[fi]));
            }
            FuzzOp::Swap { a, b, field } if !rooted.is_empty() => {
                let x = rooted[a % rooted.len()];
                let y = rooted[b % rooted.len()];
                let fi = field % 3;
                let old_x = objs[x].fields[fi];
                let old_y = objs[y].fields[fi];
                objs[x].fields[fi] = old_y;
                objs[y].fields[fi] = old_x;
                // The script language has no swap or field reads; the
                // shadow knows both old values, so lower to two stores.
                let xv = field_target(&objs, old_y);
                push(&format!("set {}.{} {}", objs[x].var, N_FIELDS[fi], xv));
                let yv = field_target(&objs, old_x);
                push(&format!("set {}.{} {}", objs[y].var, N_FIELDS[fi], yv));
            }
            FuzzOp::UnrootTo { keep } if rooted.len() > *keep => {
                // One frame per root makes unrooting a suffix exactly a
                // run of frame pops (the rooted set is LIFO).
                for _ in *keep..rooted.len() {
                    push("end-frame");
                }
                rooted.truncate(*keep);
            }
            FuzzOp::Collect => push("gc"),
            FuzzOp::MinorGc => {
                if generational {
                    push("minor-gc");
                } else {
                    push("# minor-gc (no-op: engine is not generational)");
                }
            }
            FuzzOp::AssertDead { target } if !rooted.is_empty() => {
                let t = rooted[target % rooted.len()];
                push(&format!("assert-dead {}", objs[t].var));
            }
            FuzzOp::AssertUnshared { target } if !rooted.is_empty() => {
                let t = rooted[target % rooted.len()];
                push(&format!("assert-unshared {}", objs[t].var));
            }
            FuzzOp::AssertInstances { limit } => {
                push(&format!("assert-instances N {limit}"));
            }
            FuzzOp::Region { len, leak } => {
                push("start-region");
                let mut first = None;
                for _ in 0..(len % 4) + 1 {
                    let id = alloc_n(&mut objs, &mut n_count);
                    push(&format!("new {} N", objs[id].var));
                    first.get_or_insert(id);
                }
                if *leak {
                    let id = first.unwrap();
                    push("frame");
                    push(&format!("root {}", objs[id].var));
                    rooted.push(id);
                }
                push("all-dead");
            }
            FuzzOp::OwnPair => {
                let ov = format!("ow{own_count}");
                let ev = format!("oe{own_count}");
                own_count += 1;
                objs.push(EObj {
                    var: ov.clone(),
                    fields: vec![None; 1],
                });
                let oid = objs.len() - 1;
                objs.push(EObj {
                    var: ev.clone(),
                    fields: vec![None; 1],
                });
                let eid = objs.len() - 1;
                push(&format!("new {ov} Owner"));
                push(&format!("new {ev} Ownee"));
                push(&format!("global {ov}"));
                push(&format!("global {ev}"));
                objs[oid].fields[0] = Some(eid);
                push(&format!("set {ov}.prop {ev}"));
                push(&format!("assert-owned-by {ov} {ev}"));
                owners.push(oid);
                ownees.push(eid);
            }
            FuzzOp::LeakOwnee { from } if !rooted.is_empty() && !ownees.is_empty() => {
                let f = rooted[from % rooted.len()];
                let fi = from % 3;
                let e = *ownees.last().unwrap();
                objs[f].fields[fi] = Some(e);
                let ev = objs[e].var.clone();
                push(&format!("set {}.{} {}", objs[f].var, N_FIELDS[fi], ev));
            }
            FuzzOp::BreakOwner if !owners.is_empty() => {
                let o = *owners.last().unwrap();
                objs[o].fields[0] = None;
                push(&format!("set {}.prop null", objs[o].var));
            }
            _ => push(&format!("# skipped (preconditions unmet): {op:?}")),
        }
    }
    push("gc");
    push("print");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<FuzzOp> {
        vec![
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
            FuzzOp::Alloc {
                data: 27,
                root: true,
            },
            FuzzOp::Link {
                from: 0,
                field: 1,
                to: 1,
            },
            FuzzOp::Swap {
                a: 0,
                b: 1,
                field: 1,
            },
            FuzzOp::OwnPair,
            FuzzOp::LeakOwnee { from: 0 },
            FuzzOp::BreakOwner,
            FuzzOp::Region { len: 1, leak: true },
            FuzzOp::AssertDead { target: 2 },
            FuzzOp::AssertUnshared { target: 0 },
            FuzzOp::AssertInstances { limit: 1 },
            FuzzOp::UnrootTo { keep: 1 },
            FuzzOp::MinorGc,
            FuzzOp::Collect,
        ]
    }

    #[test]
    fn replay_seed_round_trips() {
        let ops = sample_ops();
        let seed = replay_seed(&ops);
        assert_eq!(parse_replay(&seed).unwrap(), ops);
    }

    #[test]
    fn emitted_script_mentions_every_construct() {
        let cfg = VmConfig::builder().generational(2).build();
        let text = emit_gca(&sample_ops(), &cfg, &["demo".to_string()]);
        for needle in [
            "config generational 2",
            "config minor-strategy cards",
            "class N a b c",
            "new n0 N",
            "new n1 N 27",
            "set n0.b n1",
            "assert-owned-by ow0 oe0",
            "start-region",
            "all-dead",
            "assert-instances N 1",
            "end-frame",
            "minor-gc",
            "gc",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
