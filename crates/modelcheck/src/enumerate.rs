//! Exhaustive small-scope enumeration with canonical-form pruning.
//!
//! The checker walks *every* heap program expressible within a
//! [`Scope`]: at most `objects` small allocations across two BiBOP size
//! classes plus `large` large-object allocations, `mutations` edge
//! mutations (store / clear / swap, plus the ownership edge ops),
//! `root_ops` root-set changes, `gcs` explicit GC points (major and
//! minor), and `asserts` assertion sites — interleaved at every program
//! point. Because the op language is total, **every DFS node is itself a
//! complete program**, and each one is run through the whole engine
//! matrix via [`crate::engines::check_program_with`] before its
//! successors are expanded.
//!
//! Two prunes keep the walk tractable, and neither ever skips a check —
//! they only gate *suffix expansion*:
//!
//! 1. **Effectful-op enumeration**: an op whose preconditions are unmet
//!    no-ops identically on every engine (that is what makes shrinking
//!    sound), so appending it reaches a state already visited with a
//!    smaller budget. Candidates are generated only where they change
//!    the shadow state.
//! 2. **Canonical-form memoization**: a shadow heap simulation mirrors
//!    the VM semantics (reachability, generational promotion, the
//!    report-once bit) and states are canonicalized by BFS relabeling
//!    from the root sequence — heap-graph isomorphism reduction. A
//!    (canonical state, remaining budgets) pair seen before is not
//!    re-expanded.
//!
//! The reduction assumes engine behavior is invariant under
//! allocation-order isomorphism of the reachable heap (page layout and
//! card geometry do not leak into the observable [`crate::program::Outcome`] —
//! the property PR 6's differential suites fuzz independently). The
//! random fuzz suites retain full allocation-order coverage; the model
//! checker buys exhaustiveness within the scope at the price of that
//! assumption.

use std::collections::HashSet;

use crate::engines::{check_program_with, engine_matrix, CheckError, EngineSpec};
use crate::program::FuzzOp;
use crate::shrink::shrink_ops;

/// Data payloads for the two small BiBOP size classes (with
/// `HEADER_WORDS = 2` and 3 reference fields: 5 words → class 8 and 32
/// words → class 32) and the large-object space (> the LOS threshold).
const SMALL_DATA: [usize; 2] = [0, 27];
/// Large-object payload, past the LOS threshold of 256 words.
const LARGE_DATA: usize = 300;
/// Instance limits enumerated for `assert-instances`.
const LIMITS: [u32; 2] = [0, 1];

/// Per-op-kind budgets bounding the enumerated programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scope {
    /// Small-object allocations (both size classes; region and ownership
    /// allocations are charged here too).
    pub objects: usize,
    /// Large-object allocations.
    pub large: usize,
    /// Edge mutations: `Link`, `Unlink`, `Swap`, `LeakOwnee`, `BreakOwner`.
    pub mutations: usize,
    /// Root-set changes (`UnrootTo`).
    pub root_ops: usize,
    /// Explicit GC points (`Collect` and `MinorGc`).
    pub gcs: usize,
    /// Assertion sites (`AssertDead`, `AssertUnshared`, `AssertInstances`,
    /// `Region`, `OwnPair`).
    pub asserts: usize,
}

impl Scope {
    /// The uniform scope-`k` instance: `k` of everything, one large
    /// object.
    pub fn uniform(k: usize) -> Scope {
        Scope {
            objects: k,
            large: 1,
            mutations: k,
            root_ops: k,
            gcs: k,
            asserts: k,
        }
    }
}

/// What an exploration did, and what (if anything) it found.
#[derive(Debug)]
pub struct Report {
    /// The scope explored.
    pub scope: Scope,
    /// Programs run through the engine matrix (= DFS nodes visited).
    pub programs_checked: u64,
    /// Distinct canonical (state, budgets) pairs.
    pub distinct_states: u64,
    /// Expansions skipped because the canonical state was already seen.
    pub pruned: u64,
    /// Longest program reached.
    pub max_depth: usize,
    /// The first failure found, minimized — `None` means the whole scope
    /// verified clean.
    pub counterexample: Option<Counterexample>,
}

/// A minimized failing program with its artifacts.
#[derive(Debug)]
pub struct Counterexample {
    /// Length of the program as first discovered.
    pub original_len: usize,
    /// The 1-minimal op sequence (see [`crate::shrink::shrink_ops`]).
    pub ops: Vec<FuzzOp>,
    /// The failure the minimized program still exhibits.
    pub error: CheckError,
    /// Replay seed (see [`crate::emit::parse_replay`]).
    pub seed: String,
    /// Runnable `.gca` script reproducing the run on the failing engine.
    pub script: String,
}

// ---------------------------------------------------------------------
// Shadow heap simulation
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SObj {
    /// 0 = `N`, 1 = `Owner`, 2 = `Ownee`.
    cls: u8,
    /// Data payload words (selects the size class).
    data: u16,
    /// Field targets; `None` = null.
    fields: Vec<Option<usize>>,
    alive: bool,
    /// `DEAD` flag (assert-dead / region bracket).
    dead: bool,
    /// `UNSHARED` flag.
    unshared: bool,
    /// `REPORTED` bit (report-once is the default config).
    reported: bool,
    /// `OLD` bit under generational semantics (every collection promotes
    /// all survivors).
    old: bool,
}

#[derive(Debug, Clone, Default)]
struct Shadow {
    objs: Vec<SObj>,
    /// Rooted ids in root order (ops index this modulo its length).
    rooted: Vec<usize>,
    /// Ownership pairs, pinned as globals; `Leak`/`Break` ops address the
    /// most recent pair.
    owners: Vec<usize>,
    ownees: Vec<usize>,
    /// Current `assert-instances` limit on class `N` (overwrite
    /// semantics).
    n_limit: Option<u32>,
}

impl Shadow {
    fn alloc(&mut self, cls: u8, data: u16, nfields: usize) -> usize {
        self.objs.push(SObj {
            cls,
            data,
            fields: vec![None; nfields],
            alive: true,
            dead: false,
            unshared: false,
            reported: false,
            old: false,
        });
        self.objs.len() - 1
    }

    /// Reachability from the root sequence (rooted then ownership
    /// globals), over alive objects.
    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.objs.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &id in self
            .rooted
            .iter()
            .chain(self.owners.iter())
            .chain(self.ownees.iter())
        {
            if self.objs[id].alive && !seen[id] {
                seen[id] = true;
                queue.push(id);
            }
        }
        while let Some(id) = queue.pop() {
            for &f in self.objs[id].fields.iter().flatten() {
                if self.objs[f].alive && !seen[f] {
                    seen[f] = true;
                    queue.push(f);
                }
            }
        }
        seen
    }

    /// Reference count as the tracer sees it: one per root/global slot
    /// plus one per field of a reachable object (self-edges count).
    fn trace_indegree(&self, reach: &[bool]) -> Vec<u32> {
        let mut deg = vec![0u32; self.objs.len()];
        for &id in self
            .rooted
            .iter()
            .chain(self.owners.iter())
            .chain(self.ownees.iter())
        {
            if self.objs[id].alive {
                deg[id] += 1;
            }
        }
        for (id, o) in self.objs.iter().enumerate() {
            if !reach[id] {
                continue;
            }
            for &f in o.fields.iter().flatten() {
                deg[f] += 1;
            }
        }
        deg
    }

    /// Simulates a major collection: sweep unreachable, update the
    /// report-once bits the checking phases would set, promote survivors.
    fn major_gc(&mut self) {
        let reach = self.reachable();
        let deg = self.trace_indegree(&reach);
        for (i, &e) in self.ownees.iter().enumerate() {
            if reach[e] && !self.objs[e].reported {
                let owner = self.owners[i];
                let owned = reach[owner] && self.objs[owner].fields[0] == Some(e);
                if !owned {
                    self.objs[e].reported = true;
                }
            }
        }
        for id in 0..self.objs.len() {
            if !self.objs[id].alive {
                continue;
            }
            if !reach[id] {
                self.objs[id].alive = false;
                continue;
            }
            if self.objs[id].dead {
                self.objs[id].reported = true;
            }
            if self.objs[id].unshared && deg[id] >= 2 {
                self.objs[id].reported = true;
            }
            self.objs[id].old = true;
        }
    }

    /// Simulates a minor collection under generational semantics: the
    /// young subgraph reachable from young roots/globals and old→young
    /// fields survives and is promoted; no checks run.
    fn minor_gc(&mut self) {
        let young = |o: &SObj| o.alive && !o.old;
        let mut seen = vec![false; self.objs.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &id in self
            .rooted
            .iter()
            .chain(self.owners.iter())
            .chain(self.ownees.iter())
        {
            if young(&self.objs[id]) && !seen[id] {
                seen[id] = true;
                queue.push(id);
            }
        }
        for o in &self.objs {
            if !o.alive || !o.old {
                continue;
            }
            for &f in o.fields.iter().flatten() {
                if young(&self.objs[f]) && !seen[f] {
                    seen[f] = true;
                    queue.push(f);
                }
            }
        }
        while let Some(id) = queue.pop() {
            for &f in self.objs[id].fields.iter().flatten() {
                if young(&self.objs[f]) && !seen[f] {
                    seen[f] = true;
                    queue.push(f);
                }
            }
        }
        for (obj, survived) in self.objs.iter_mut().zip(&seen) {
            if obj.alive && !obj.old {
                if *survived {
                    obj.old = true;
                } else {
                    obj.alive = false;
                }
            }
        }
    }

    /// Mirrors [`crate::program::run_program`]'s semantics for one op.
    fn apply(&mut self, op: &FuzzOp) {
        match op {
            FuzzOp::Alloc { data, root } => {
                let id = self.alloc(0, *data as u16, 3);
                if *root {
                    self.rooted.push(id);
                }
            }
            FuzzOp::Link { from, field, to } if !self.rooted.is_empty() => {
                let x = self.rooted[from % self.rooted.len()];
                let y = self.rooted[to % self.rooted.len()];
                self.objs[x].fields[field % 3] = Some(y);
            }
            FuzzOp::Unlink { from, field } if !self.rooted.is_empty() => {
                let x = self.rooted[from % self.rooted.len()];
                self.objs[x].fields[field % 3] = None;
            }
            FuzzOp::Swap { a, b, field } if !self.rooted.is_empty() => {
                let x = self.rooted[a % self.rooted.len()];
                let y = self.rooted[b % self.rooted.len()];
                let f = field % 3;
                let fx = self.objs[x].fields[f];
                let fy = self.objs[y].fields[f];
                self.objs[x].fields[f] = fy;
                self.objs[y].fields[f] = fx;
            }
            FuzzOp::UnrootTo { keep } if self.rooted.len() > *keep => {
                self.rooted.truncate(*keep);
            }
            FuzzOp::Collect => self.major_gc(),
            FuzzOp::MinorGc => self.minor_gc(),
            FuzzOp::AssertDead { target } if !self.rooted.is_empty() => {
                let t = self.rooted[target % self.rooted.len()];
                self.objs[t].dead = true;
            }
            FuzzOp::AssertUnshared { target } if !self.rooted.is_empty() => {
                let t = self.rooted[target % self.rooted.len()];
                self.objs[t].unshared = true;
            }
            FuzzOp::AssertInstances { limit } => self.n_limit = Some(*limit),
            FuzzOp::Region { len, leak } => {
                let mut first = None;
                for _ in 0..(len % 4) + 1 {
                    let id = self.alloc(0, 0, 3);
                    self.objs[id].dead = true;
                    first.get_or_insert(id);
                }
                if *leak {
                    self.rooted.push(first.unwrap());
                }
            }
            FuzzOp::OwnPair => {
                let o = self.alloc(1, 0, 1);
                let e = self.alloc(2, 0, 1);
                self.objs[o].fields[0] = Some(e);
                self.owners.push(o);
                self.ownees.push(e);
            }
            FuzzOp::LeakOwnee { from } if !self.rooted.is_empty() && !self.ownees.is_empty() => {
                let x = self.rooted[from % self.rooted.len()];
                self.objs[x].fields[from % 3] = Some(*self.ownees.last().unwrap());
            }
            FuzzOp::BreakOwner if !self.owners.is_empty() => {
                let o = *self.owners.last().unwrap();
                self.objs[o].fields[0] = None;
            }
            _ => {}
        }
    }

    /// Canonical bytes of the *reachable* state: BFS relabeling from the
    /// root sequence (heap-graph isomorphism reduction). Unreachable
    /// alive objects are deliberately excluded — they die at the next
    /// collection identically on every engine and no future op or check
    /// can observe them differentially.
    fn canon(&self) -> Vec<u8> {
        let mut label = vec![usize::MAX; self.objs.len()];
        let mut order: Vec<usize> = Vec::new();
        let mut queue_at = 0usize;
        let visit = |id: usize, label: &mut Vec<usize>, order: &mut Vec<usize>| {
            if self.objs[id].alive && label[id] == usize::MAX {
                label[id] = order.len();
                order.push(id);
            }
        };
        for &id in self
            .rooted
            .iter()
            .chain(self.owners.iter())
            .chain(self.ownees.iter())
        {
            visit(id, &mut label, &mut order);
        }
        while queue_at < order.len() {
            let id = order[queue_at];
            queue_at += 1;
            let targets: Vec<usize> = self.objs[id].fields.iter().flatten().copied().collect();
            for f in targets {
                visit(f, &mut label, &mut order);
            }
        }

        let mut out: Vec<u8> = Vec::with_capacity(order.len() * 8 + 16);
        let enc_id = |out: &mut Vec<u8>, id: Option<usize>| match id {
            None => out.push(0xFF),
            Some(i) => out.push(u8::try_from(i).expect("scope bounds object count")),
        };
        out.push(u8::try_from(self.rooted.len()).expect("scope bounds root count"));
        out.push(u8::try_from(self.owners.len()).expect("scope bounds pair count"));
        for o in order.iter().map(|&id| &self.objs[id]) {
            out.push(o.cls);
            out.extend_from_slice(&o.data.to_le_bytes());
            out.push(
                u8::from(o.dead)
                    | u8::from(o.unshared) << 1
                    | u8::from(o.reported) << 2
                    | u8::from(o.old) << 3,
            );
            out.push(u8::try_from(o.fields.len()).expect("small field count"));
            for &f in &o.fields {
                enc_id(&mut out, f.map(|id| label[id]));
            }
        }
        match self.n_limit {
            None => out.push(0xFF),
            Some(l) => out.push(u8::try_from(l).expect("small instance limit")),
        }
        out
    }
}

// ---------------------------------------------------------------------
// Budgets and candidate generation
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Budgets {
    objects: usize,
    large: usize,
    mutations: usize,
    root_ops: usize,
    gcs: usize,
    asserts: usize,
}

impl Budgets {
    fn of(scope: &Scope) -> Budgets {
        Budgets {
            objects: scope.objects,
            large: scope.large,
            mutations: scope.mutations,
            root_ops: scope.root_ops,
            gcs: scope.gcs,
            asserts: scope.asserts,
        }
    }

    /// The budgets after `op`, or `None` when it cannot be afforded.
    fn charge(&self, op: &FuzzOp) -> Option<Budgets> {
        let mut b = *self;
        let take = |slot: &mut usize, n: usize| {
            if *slot >= n {
                *slot -= n;
                true
            } else {
                false
            }
        };
        let ok = match op {
            FuzzOp::Alloc { data, .. } if *data > SMALL_DATA[1] => take(&mut b.large, 1),
            FuzzOp::Alloc { .. } => take(&mut b.objects, 1),
            FuzzOp::Link { .. }
            | FuzzOp::Unlink { .. }
            | FuzzOp::Swap { .. }
            | FuzzOp::LeakOwnee { .. }
            | FuzzOp::BreakOwner => take(&mut b.mutations, 1),
            FuzzOp::UnrootTo { .. } => take(&mut b.root_ops, 1),
            FuzzOp::Collect | FuzzOp::MinorGc => take(&mut b.gcs, 1),
            FuzzOp::AssertDead { .. }
            | FuzzOp::AssertUnshared { .. }
            | FuzzOp::AssertInstances { .. } => take(&mut b.asserts, 1),
            FuzzOp::Region { len, .. } => {
                take(&mut b.asserts, 1) && take(&mut b.objects, (len % 4) + 1)
            }
            FuzzOp::OwnPair => take(&mut b.asserts, 1) && take(&mut b.objects, 2),
        };
        ok.then_some(b)
    }

    fn as_bytes(&self) -> [u8; 6] {
        [
            self.objects as u8,
            self.large as u8,
            self.mutations as u8,
            self.root_ops as u8,
            self.gcs as u8,
            self.asserts as u8,
        ]
    }
}

/// Every op that is affordable *and* changes the shadow state (a
/// precondition-unmet or state-identical op no-ops identically on every
/// engine, so its successor state was already visited with more budget).
fn candidates(shadow: &Shadow, budgets: &Budgets) -> Vec<FuzzOp> {
    let mut out: Vec<FuzzOp> = Vec::new();
    let r = shadow.rooted.len();

    if budgets.objects >= 1 {
        for data in SMALL_DATA {
            for root in [false, true] {
                out.push(FuzzOp::Alloc { data, root });
            }
        }
    }
    if budgets.large >= 1 {
        for root in [false, true] {
            out.push(FuzzOp::Alloc {
                data: LARGE_DATA,
                root,
            });
        }
    }

    if budgets.mutations >= 1 && r > 0 {
        for from in 0..r {
            let x = shadow.rooted[from];
            for field in 0..3usize {
                for to in 0..r {
                    let y = shadow.rooted[to];
                    if shadow.objs[x].fields[field] != Some(y) {
                        out.push(FuzzOp::Link { from, field, to });
                    }
                }
                if shadow.objs[x].fields[field].is_some() {
                    out.push(FuzzOp::Unlink { from, field });
                }
            }
        }
        for a in 0..r {
            for b in (a + 1)..r {
                let (x, y) = (shadow.rooted[a], shadow.rooted[b]);
                for field in 0..3usize {
                    if shadow.objs[x].fields[field] != shadow.objs[y].fields[field] {
                        out.push(FuzzOp::Swap { a, b, field });
                    }
                }
            }
        }
        if let Some(&e) = shadow.ownees.last() {
            for from in 0..r {
                let x = shadow.rooted[from];
                if shadow.objs[x].fields[from % 3] != Some(e) {
                    out.push(FuzzOp::LeakOwnee { from });
                }
            }
        }
        if let Some(&o) = shadow.owners.last() {
            if shadow.objs[o].fields[0].is_some() {
                out.push(FuzzOp::BreakOwner);
            }
        }
    }

    if budgets.root_ops >= 1 {
        for keep in 0..r {
            out.push(FuzzOp::UnrootTo { keep });
        }
    }

    if budgets.gcs >= 1 {
        // A major is inert only on a state with nothing alive-unreachable,
        // nothing unpromoted, and no flag for the checking phases to
        // visit (flags also drive the check *counters*, which are part of
        // the compared outcome).
        let reach = shadow.reachable();
        let any_alive = shadow.objs.iter().any(|o| o.alive);
        let changes = shadow
            .objs
            .iter()
            .enumerate()
            .any(|(i, o)| o.alive && (!reach[i] || !o.old));
        let flagged = shadow
            .objs
            .iter()
            .enumerate()
            .any(|(i, o)| reach[i] && (o.dead || o.unshared || o.cls == 2));
        let counted = shadow.n_limit.is_some() && any_alive;
        if changes || flagged || counted {
            out.push(FuzzOp::Collect);
        }
        // A minor is inert on every engine without a live nursery.
        if shadow.objs.iter().any(|o| o.alive && !o.old) {
            out.push(FuzzOp::MinorGc);
        }
    }

    if budgets.asserts >= 1 {
        for target in 0..r {
            let t = shadow.rooted[target];
            if !shadow.objs[t].dead {
                out.push(FuzzOp::AssertDead { target });
            }
            if !shadow.objs[t].unshared {
                out.push(FuzzOp::AssertUnshared { target });
            }
        }
        for limit in LIMITS {
            if shadow.n_limit != Some(limit) {
                out.push(FuzzOp::AssertInstances { limit });
            }
        }
        if budgets.objects >= 1 {
            for leak in [false, true] {
                out.push(FuzzOp::Region { len: 0, leak });
            }
        }
        if budgets.objects >= 2 {
            out.push(FuzzOp::OwnPair);
        }
    }

    out
}

// ---------------------------------------------------------------------
// The exhaustive walk
// ---------------------------------------------------------------------

struct Walk<'a> {
    matrix: &'a [EngineSpec],
    memo: HashSet<Vec<u8>>,
    programs_checked: u64,
    pruned: u64,
    max_depth: usize,
    failure: Option<(Vec<FuzzOp>, CheckError)>,
}

impl Walk<'_> {
    fn dfs(&mut self, shadow: &Shadow, budgets: Budgets, ops: &mut Vec<FuzzOp>) {
        for op in candidates(shadow, &budgets) {
            if self.failure.is_some() {
                return;
            }
            let Some(next_budgets) = budgets.charge(&op) else {
                continue;
            };
            ops.push(op.clone());
            self.programs_checked += 1;
            self.max_depth = self.max_depth.max(ops.len());
            if let Err(e) = check_program_with(self.matrix, ops) {
                self.failure = Some((ops.clone(), e));
                ops.pop();
                return;
            }
            let mut next = shadow.clone();
            next.apply(&op);
            let mut key = next.canon();
            key.extend_from_slice(&next_budgets.as_bytes());
            if self.memo.insert(key) {
                self.dfs(&next, next_budgets, ops);
            } else {
                self.pruned += 1;
            }
            ops.pop();
        }
    }
}

/// Minimizes a failing program against `matrix` and packages the
/// artifacts: the 1-minimal op sequence, the replay seed, and a runnable
/// `.gca` script configured for the engine implicated by the failure.
pub fn minimize_counterexample(matrix: &[EngineSpec], ops: &[FuzzOp]) -> Counterexample {
    let minimal = shrink_ops(ops, |candidate| {
        check_program_with(matrix, candidate).is_err()
    });
    let error = check_program_with(matrix, &minimal)
        .expect_err("shrinker invariant: the minimal program still fails");
    let implicated = match &error {
        CheckError::Mismatch { right, .. } => *right,
        CheckError::EngineFailure { engine, .. } => *engine,
    };
    let spec = matrix
        .iter()
        .find(|s| s.name == implicated)
        .unwrap_or(&matrix[0]);
    let header = vec![
        format!("failure: {error}"),
        format!("engine config: {}", spec.name),
        format!("minimized from {} ops to {}", ops.len(), minimal.len()),
    ];
    let script = crate::emit::emit_gca(&minimal, &spec.config, &header);
    let seed = crate::emit::replay_seed(&minimal);
    Counterexample {
        original_len: ops.len(),
        ops: minimal,
        error,
        seed,
        script,
    }
}

/// Exhaustively checks every program within `scope` against `matrix`.
/// Stops at the first failure and returns it minimized.
pub fn explore_with(matrix: &[EngineSpec], scope: &Scope) -> Report {
    let mut walk = Walk {
        matrix,
        memo: HashSet::new(),
        programs_checked: 0,
        pruned: 0,
        max_depth: 0,
        failure: None,
    };
    let shadow = Shadow::default();
    let mut ops: Vec<FuzzOp> = Vec::new();
    walk.dfs(&shadow, Budgets::of(scope), &mut ops);
    let counterexample = walk
        .failure
        .map(|(ops, _)| minimize_counterexample(matrix, &ops));
    Report {
        scope: *scope,
        programs_checked: walk.programs_checked,
        distinct_states: walk.memo.len() as u64,
        pruned: walk.pruned,
        max_depth: walk.max_depth,
        counterexample,
    }
}

/// [`explore_with`] against the full [`engine_matrix`].
pub fn explore(scope: &Scope) -> Report {
    explore_with(&engine_matrix(), scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shadow_of(ops: &[FuzzOp]) -> Shadow {
        let mut s = Shadow::default();
        for op in ops {
            s.apply(op);
        }
        s
    }

    #[test]
    fn canon_ignores_unreachable_garbage() {
        let a = shadow_of(&[FuzzOp::Alloc {
            data: 0,
            root: true,
        }]);
        let b = shadow_of(&[
            FuzzOp::Alloc {
                data: 0,
                root: false,
            },
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
        ]);
        assert_eq!(a.canon(), b.canon());
    }

    #[test]
    fn canon_distinguishes_flags_and_edges() {
        let base = &[
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
        ];
        let plain = shadow_of(base);
        let mut linked_ops = base.to_vec();
        linked_ops.push(FuzzOp::Link {
            from: 0,
            field: 2,
            to: 1,
        });
        let linked = shadow_of(&linked_ops);
        let mut dead_ops = base.to_vec();
        dead_ops.push(FuzzOp::AssertDead { target: 1 });
        let dead = shadow_of(&dead_ops);
        assert_ne!(plain.canon(), linked.canon());
        assert_ne!(plain.canon(), dead.canon());
        assert_ne!(linked.canon(), dead.canon());
    }

    #[test]
    fn shadow_major_matches_vm_liveness() {
        use crate::program::run_program;
        use gc_assertions::VmConfig;
        let ops = vec![
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
            FuzzOp::Link {
                from: 0,
                field: 0,
                to: 1,
            },
            FuzzOp::UnrootTo { keep: 1 },
            FuzzOp::Collect,
        ];
        let mut shadow = Shadow::default();
        for op in &ops {
            shadow.apply(op);
        }
        let out = run_program(VmConfig::builder().build(), &ops);
        let shadow_live: Vec<bool> = shadow.objs.iter().map(|o| o.alive).collect();
        assert_eq!(shadow_live, out.live);
    }

    #[test]
    fn minor_promotes_survivors_and_kills_unreachable_young() {
        let mut s = shadow_of(&[
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
            FuzzOp::Alloc {
                data: 0,
                root: false,
            },
        ]);
        s.minor_gc();
        assert!(s.objs[0].alive && s.objs[0].old);
        assert!(!s.objs[1].alive);
    }

    #[test]
    fn tiny_scope_verifies_clean() {
        let report = explore(&Scope {
            objects: 1,
            large: 0,
            mutations: 1,
            root_ops: 1,
            gcs: 1,
            asserts: 1,
        });
        assert!(
            report.counterexample.is_none(),
            "unexpected mismatch: {:?}",
            report.counterexample
        );
        assert!(report.programs_checked > 0);
        assert!(report.distinct_states > 0);
    }
}
