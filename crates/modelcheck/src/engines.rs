//! The engine matrix and the differential check a single program runs
//! through.
//!
//! The comparison policy matches the fuzz suites' (and the paper's §2.2)
//! conventions:
//!
//! * **full-outcome group** — sequential mark-sweep, 2-worker parallel
//!   mark, and the semispace copying backend must agree on the *entire*
//!   [`Outcome`]: liveness, normalized violation log, the six assertion
//!   check counters, and the census tables;
//! * **minor-strategy pairing** — the generational engine with
//!   card-marking barriers and with the exact remembered set must agree
//!   on the entire outcome with each other (PR 6's claim: the card
//!   harvest is a superset whose extra scans change nothing observable);
//! * **liveness bridge** — generational vs the full-heap engines is
//!   compared on final liveness only, because minor cycles deliberately
//!   check no assertions (the paper's §2.2 trade-off), so violation
//!   *timing* — and with report-once, *whether* a violation is ever
//!   recorded — legitimately differs.

use std::panic::{catch_unwind, AssertUnwindSafe};

use gc_assertions::{CollectorKind, MinorStrategy, VmConfig};

use crate::program::{run_program, FuzzOp, Outcome};

/// Heap budget for model-check runs: generous enough that no *implicit*
/// (allocation-pressure) collection ever fires, so the GC points of a
/// program are exactly its enumerated `Collect`/`MinorGc` ops and the
/// shadow-state simulation in [`crate::enumerate`] stays exact.
pub const MODEL_HEAP_WORDS: usize = 1 << 16;

/// One engine configuration of the matrix.
#[derive(Debug, Clone)]
pub struct EngineSpec {
    /// Short stable name (`ms`, `par2`, `copying`, `gen-cards`, `gen-rs`).
    pub name: &'static str,
    /// The VM configuration that selects this engine.
    pub config: VmConfig,
}

/// The base configuration shared by every engine: big non-triggering
/// heap, census on (so the census tables are part of the comparison).
fn base() -> VmConfig {
    VmConfig::builder()
        .heap_budget(MODEL_HEAP_WORDS)
        .grow_on_oom(true)
        .census(true)
        .build()
}

/// The full engine matrix:
/// `{ms, par2, copying} ∪ {generational × {Cards, RememberedSet}}`.
pub fn engine_matrix() -> Vec<EngineSpec> {
    vec![
        EngineSpec {
            name: "ms",
            config: base(),
        },
        EngineSpec {
            name: "par2",
            config: base().gc_threads(2),
        },
        EngineSpec {
            name: "copying",
            config: base().collector(CollectorKind::Copying),
        },
        EngineSpec {
            name: "gen-cards",
            config: base().generational(2).minor_strategy(MinorStrategy::Cards),
        },
        EngineSpec {
            name: "gen-rs",
            config: base()
                .generational(2)
                .minor_strategy(MinorStrategy::RememberedSet),
        },
    ]
}

/// Why a program failed the differential check.
#[derive(Debug, Clone)]
pub enum CheckError {
    /// Two engines produced different observables.
    Mismatch {
        /// First engine name.
        left: &'static str,
        /// Second engine name.
        right: &'static str,
        /// Which observable differed, with both values.
        what: String,
    },
    /// One engine panicked — a VM error, a heap-verification failure, or
    /// a tripped `debug_assert!` invariant module.
    EngineFailure {
        /// The engine that failed.
        engine: &'static str,
        /// The panic payload.
        message: String,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Mismatch { left, right, what } => {
                write!(f, "engines {left} and {right} disagree: {what}")
            }
            CheckError::EngineFailure { engine, message } => {
                write!(f, "engine {engine} failed: {message}")
            }
        }
    }
}

fn run_caught(spec: &EngineSpec, ops: &[FuzzOp]) -> Result<Outcome, CheckError> {
    let config = spec.config.clone();
    catch_unwind(AssertUnwindSafe(|| run_program(config, ops))).map_err(|payload| {
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        CheckError::EngineFailure {
            engine: spec.name,
            message,
        }
    })
}

fn diff(left: &EngineSpec, lo: &Outcome, right: &EngineSpec, ro: &Outcome) -> Option<CheckError> {
    let mismatch = |what: String| {
        Some(CheckError::Mismatch {
            left: left.name,
            right: right.name,
            what,
        })
    };
    if lo.live != ro.live {
        return mismatch(format!("liveness {:?} vs {:?}", lo.live, ro.live));
    }
    if lo.violations != ro.violations {
        return mismatch(format!(
            "violations {:?} vs {:?}",
            lo.violations, ro.violations
        ));
    }
    if lo.check_totals != ro.check_totals {
        return mismatch(format!(
            "check counters {:?} vs {:?}",
            lo.check_totals, ro.check_totals
        ));
    }
    if lo.census_classes != ro.census_classes {
        return mismatch(format!(
            "census classes {:?} vs {:?}",
            lo.census_classes, ro.census_classes
        ));
    }
    if lo.census_sites != ro.census_sites {
        return mismatch(format!(
            "census sites {:?} vs {:?}",
            lo.census_sites, ro.census_sites
        ));
    }
    None
}

/// Runs `ops` through the whole engine matrix and applies the comparison
/// policy. `Ok(())` means every pairing agreed and no engine tripped an
/// invariant.
///
/// # Errors
///
/// The first [`CheckError`] found, in a deterministic engine order.
pub fn check_program(ops: &[FuzzOp]) -> Result<(), CheckError> {
    check_program_with(&engine_matrix(), ops)
}

/// [`check_program`] against an explicit matrix (the first entry is the
/// reference engine; entries named `gen-*` join the liveness-only
/// bridge + full minor-strategy pairing, everything else the
/// full-outcome group).
///
/// # Errors
///
/// The first [`CheckError`] found.
pub fn check_program_with(matrix: &[EngineSpec], ops: &[FuzzOp]) -> Result<(), CheckError> {
    let mut outcomes: Vec<(usize, Outcome)> = Vec::with_capacity(matrix.len());
    for (i, spec) in matrix.iter().enumerate() {
        outcomes.push((i, run_caught(spec, ops)?));
    }
    let is_gen = |spec: &EngineSpec| spec.name.starts_with("gen");
    let full: Vec<&(usize, Outcome)> = outcomes
        .iter()
        .filter(|(i, _)| !is_gen(&matrix[*i]))
        .collect();
    let gens: Vec<&(usize, Outcome)> = outcomes
        .iter()
        .filter(|(i, _)| is_gen(&matrix[*i]))
        .collect();

    // Full-outcome group: everyone against the reference (first) engine.
    if let Some(&&(ri, ref reference)) = full.first() {
        for &&(i, ref o) in &full[1..] {
            if let Some(e) = diff(&matrix[ri], reference, &matrix[i], o) {
                return Err(e);
            }
        }
        // Liveness bridge: every generational engine against the
        // reference on the final live set only.
        for &&(i, ref o) in &gens {
            if o.live != reference.live {
                return Err(CheckError::Mismatch {
                    left: matrix[ri].name,
                    right: matrix[i].name,
                    what: format!("liveness {:?} vs {:?}", reference.live, o.live),
                });
            }
        }
    }
    // Minor-strategy pairing: the generational engines against each
    // other on the full outcome (identical majors *and* minors).
    if let Some(&&(gi, ref gref)) = gens.first() {
        for &&(i, ref o) in &gens[1..] {
            if let Some(e) = diff(&matrix[gi], gref, &matrix[i], o) {
                return Err(e);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_engine_kinds() {
        let names: Vec<&str> = engine_matrix().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["ms", "par2", "copying", "gen-cards", "gen-rs"]);
    }

    #[test]
    fn simple_program_checks_clean() {
        let ops = vec![
            FuzzOp::Alloc {
                data: 0,
                root: true,
            },
            FuzzOp::AssertDead { target: 0 },
            FuzzOp::Collect,
        ];
        check_program(&ops).expect("engines must agree on a trivial program");
    }
}
