//! Staleness-based leak detection (SWAT-style).

use std::collections::HashMap;

use gca_heap::{Heap, ObjRef};

/// A leak *candidate* reported by the staleness heuristic. Unlike a GC
/// assertion violation, a candidate is a guess: the object might simply be
/// long-lived and rarely accessed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleCandidate {
    /// The suspect object.
    pub object: ObjRef,
    /// Its class name at scan time.
    pub class_name: String,
    /// Ticks since the object was last accessed.
    pub idle_ticks: u64,
}

/// A staleness-based leak detector in the style of Chilimbi & Hauswirth's
/// low-overhead memory-leak detection: an object that has not been
/// accessed for more than `threshold` logical ticks is reported as a
/// probable leak.
///
/// The mutator must call [`StalenessDetector::touch`] on each access (a
/// real implementation instruments loads/stores or samples them; our
/// workloads call it from their access helpers) and
/// [`StalenessDetector::advance`] to move logical time — typically once
/// per "transaction" of the workload.
///
/// # Example
///
/// ```
/// use gca_detectors::StalenessDetector;
/// use gca_heap::Heap;
///
/// # fn main() -> Result<(), gca_heap::HeapError> {
/// let mut heap = Heap::new();
/// let c = heap.register_class("T", &[]);
/// let hot = heap.alloc(c, 0, 0)?;
/// let cold = heap.alloc(c, 0, 0)?;
///
/// let mut det = StalenessDetector::new(3);
/// for _ in 0..10 {
///     det.touch(hot);
///     det.advance();
/// }
/// let stale = det.scan(&heap);
/// // `cold` was never touched: reported. `hot` is fresh: not reported.
/// assert_eq!(stale.len(), 1);
/// assert_eq!(stale[0].object, cold);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StalenessDetector {
    threshold: u64,
    now: u64,
    last_access: HashMap<ObjRef, u64>,
}

impl StalenessDetector {
    /// Creates a detector that reports objects idle for more than
    /// `threshold` ticks.
    pub fn new(threshold: u64) -> StalenessDetector {
        StalenessDetector {
            threshold,
            now: 0,
            last_access: HashMap::new(),
        }
    }

    /// Records an access to `obj` at the current tick.
    pub fn touch(&mut self, obj: ObjRef) {
        self.last_access.insert(obj, self.now);
    }

    /// Advances logical time by one tick.
    pub fn advance(&mut self) {
        self.now += 1;
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Scans the live heap and returns objects idle beyond the threshold.
    /// An object never touched counts as idle since tick 0 — it has been
    /// "stale" its whole life, exactly the kind of judgement call that
    /// makes heuristics imprecise.
    pub fn scan(&mut self, heap: &Heap) -> Vec<StaleCandidate> {
        // Drop entries for objects that have been reclaimed.
        self.last_access.retain(|&r, _| heap.is_valid(r));
        let mut out = Vec::new();
        for (r, obj) in heap.iter() {
            let last = self.last_access.get(&r).copied().unwrap_or(0);
            let idle = self.now.saturating_sub(last);
            if idle > self.threshold {
                out.push(StaleCandidate {
                    object: r,
                    class_name: heap.registry().name(obj.class()).to_owned(),
                    idle_ticks: idle,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_with(n: usize) -> (Heap, Vec<ObjRef>) {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &[]);
        let objs = (0..n).map(|_| heap.alloc(c, 0, 0).unwrap()).collect();
        (heap, objs)
    }

    #[test]
    fn fresh_objects_not_reported() {
        let (heap, objs) = heap_with(3);
        let mut det = StalenessDetector::new(5);
        for &o in &objs {
            det.touch(o);
        }
        for _ in 0..5 {
            det.advance();
        }
        assert!(
            det.scan(&heap).is_empty(),
            "idle == threshold is not > threshold"
        );
    }

    #[test]
    fn idle_objects_reported_with_idle_time() {
        let (heap, objs) = heap_with(2);
        let mut det = StalenessDetector::new(2);
        det.touch(objs[0]);
        det.touch(objs[1]);
        for _ in 0..4 {
            det.advance();
        }
        det.touch(objs[0]); // keep the first hot
        let stale = det.scan(&heap);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].object, objs[1]);
        assert_eq!(stale[0].idle_ticks, 4);
        assert_eq!(stale[0].class_name, "T");
    }

    #[test]
    fn false_positive_on_rarely_accessed_live_object() {
        // The documented weakness: a config object read only at startup is
        // flagged even though it is needed.
        let (heap, objs) = heap_with(1);
        let mut det = StalenessDetector::new(10);
        det.touch(objs[0]); // startup read
        for _ in 0..100 {
            det.advance();
        }
        let stale = det.scan(&heap);
        assert_eq!(stale.len(), 1, "heuristic flags the live config object");
    }

    #[test]
    fn reclaimed_objects_are_forgotten() {
        let (mut heap, objs) = heap_with(2);
        let mut det = StalenessDetector::new(0);
        det.touch(objs[0]);
        det.advance();
        det.advance();
        heap.free(objs[0]).unwrap();
        let stale = det.scan(&heap);
        // Only the still-live never-touched object is reported.
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].object, objs[1]);
    }
}
