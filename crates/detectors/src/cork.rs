//! Cork-style heap-growth differencing.

use std::collections::HashMap;

use gca_heap::{ClassId, Heap};

/// A class the growth heuristic suspects of leaking. Type-level only: as
/// the paper notes about Cork, the report names *types*, not the object
/// instances or the references responsible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrowthCandidate {
    /// The suspect class.
    pub class: ClassId,
    /// Its name.
    pub class_name: String,
    /// Live volume (words) at the first observation of the streak.
    pub from_words: usize,
    /// Live volume (words) at the latest observation.
    pub to_words: usize,
    /// Number of consecutive observations with growth.
    pub streak: usize,
}

/// A heap-differencing leak detector in the style of Jump & McKinley's
/// Cork: after each collection it snapshots live volume per class and
/// reports classes whose volume has grown in `window` consecutive
/// snapshots.
///
/// Compare with `assert_owned_by`/`assert_dead`: Cork needs many
/// collections of sustained growth before it fires, cannot point at an
/// instance, and flags any legitimately growing structure (false
/// positive); the GC assertion fires at the first collection after the
/// leak with a full path.
///
/// # Example
///
/// ```
/// use gca_detectors::CorkDetector;
/// use gca_heap::Heap;
///
/// # fn main() -> Result<(), gca_heap::HeapError> {
/// let mut heap = Heap::new();
/// let c = heap.register_class("Order", &[]);
/// let mut cork = CorkDetector::new(3);
/// for round in 0..4 {
///     for _ in 0..10 {
///         heap.alloc(c, 0, 4)?; // grows every round and never freed
///     }
///     let _ = cork.observe(&heap);
///     if round == 3 {
///         assert_eq!(cork.observe(&heap).len(), 0); // flat between allocs
///     }
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CorkDetector {
    window: usize,
    prev: HashMap<ClassId, usize>,
    streaks: HashMap<ClassId, (usize, usize)>, // (streak length, volume at streak start)
}

impl CorkDetector {
    /// Creates a detector that reports after `window` consecutive growing
    /// observations (Cork's slack against phase behaviour).
    pub fn new(window: usize) -> CorkDetector {
        CorkDetector {
            window: window.max(1),
            prev: HashMap::new(),
            streaks: HashMap::new(),
        }
    }

    /// Takes a snapshot of per-class live volume (call after each
    /// collection) and returns the classes whose volume has now grown for
    /// at least `window` consecutive snapshots.
    pub fn observe(&mut self, heap: &Heap) -> Vec<GrowthCandidate> {
        let mut volumes: HashMap<ClassId, usize> = HashMap::new();
        for (_, obj) in heap.iter() {
            *volumes.entry(obj.class()).or_default() += obj.size_words();
        }

        let mut out = Vec::new();
        for (&class, &words) in &volumes {
            let prev = self.prev.get(&class).copied().unwrap_or(0);
            if words > prev {
                let entry = self.streaks.entry(class).or_insert((0, prev));
                entry.0 += 1;
                if entry.0 >= self.window {
                    out.push(GrowthCandidate {
                        class,
                        class_name: heap.registry().name(class).to_owned(),
                        from_words: entry.1,
                        to_words: words,
                        streak: entry.0,
                    });
                }
            } else {
                self.streaks.remove(&class);
            }
        }
        // Classes that disappeared entirely reset their streaks.
        self.streaks.retain(|c, _| volumes.contains_key(c));
        self.prev = volumes;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_is_quiet() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &[]);
        for _ in 0..10 {
            heap.alloc(c, 0, 1).unwrap();
        }
        let mut cork = CorkDetector::new(2);
        assert!(cork.observe(&heap).len() <= 1); // first observation may grow from 0
        assert!(cork.observe(&heap).is_empty());
        assert!(cork.observe(&heap).is_empty());
    }

    #[test]
    fn monotonic_growth_fires_after_window() {
        let mut heap = Heap::new();
        let c = heap.register_class("Order", &[]);
        let mut cork = CorkDetector::new(3);
        let mut fired_at = None;
        for round in 0..6 {
            for _ in 0..5 {
                heap.alloc(c, 0, 2).unwrap();
            }
            let hits = cork.observe(&heap);
            if !hits.is_empty() && fired_at.is_none() {
                fired_at = Some(round);
                assert_eq!(hits[0].class_name, "Order");
                assert!(hits[0].to_words > hits[0].from_words);
                assert!(hits[0].streak >= 3);
            }
        }
        assert_eq!(fired_at, Some(2), "needs `window` observations to fire");
    }

    #[test]
    fn growth_streak_resets_on_shrink() {
        let mut heap = Heap::new();
        let c = heap.register_class("T", &[]);
        let mut cork = CorkDetector::new(2);
        let a = heap.alloc(c, 0, 8).unwrap();
        cork.observe(&heap); // streak 1
        heap.free(a).unwrap();
        assert!(cork.observe(&heap).is_empty()); // shrink resets
        heap.alloc(c, 0, 8).unwrap();
        assert!(cork.observe(&heap).is_empty(), "streak restarted at 1");
    }

    #[test]
    fn false_positive_on_legitimate_growth() {
        // A cache that is *supposed* to grow is still flagged — the
        // heuristic cannot know the programmer's intent.
        let mut heap = Heap::new();
        let c = heap.register_class("LegitCache", &[]);
        let mut cork = CorkDetector::new(2);
        let mut flagged = false;
        for _ in 0..4 {
            for _ in 0..3 {
                heap.alloc(c, 0, 4).unwrap();
            }
            flagged |= !cork.observe(&heap).is_empty();
        }
        assert!(flagged, "intended growth is indistinguishable from a leak");
    }

    #[test]
    fn two_classes_tracked_independently() {
        let mut heap = Heap::new();
        let grow = heap.register_class("Grow", &[]);
        let flat = heap.register_class("Flat", &[]);
        for _ in 0..5 {
            heap.alloc(flat, 0, 1).unwrap();
        }
        let mut cork = CorkDetector::new(2);
        cork.observe(&heap);
        for _ in 0..3 {
            heap.alloc(grow, 0, 1).unwrap();
            let hits = cork.observe(&heap);
            for h in &hits {
                assert_eq!(h.class_name, "Grow");
            }
        }
    }
}
