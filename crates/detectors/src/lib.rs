//! # gca-detectors — baseline heap-error detectors
//!
//! The GC-assertions paper positions its technique against three families
//! of prior work (§1, §4): *staleness-based* leak detectors, *heap
//! differencing / growth* detectors, and *eager run-time invariant
//! checking*. This crate implements a representative of each family over
//! the same VM substrate, so the reproduction can compare them head-to-head
//! on precision (false positives) and overhead:
//!
//! * [`StalenessDetector`] — objects not accessed for a long time are
//!   *probably* leaks (Chilimbi & Hauswirth's SWAT; Bond & McKinley's
//!   Bell). Heuristic: produces false positives for rarely accessed but
//!   still needed objects, and needs a staleness threshold tuned per
//!   application.
//! * [`CorkDetector`] — classes whose live volume grows monotonically
//!   across collections are *probably* responsible for heap growth (Jump
//!   & McKinley's Cork). Type-level: names a class, not the instance or
//!   the reference that keeps it alive.
//! * [`EagerOwnershipChecker`] — a JML-style invariant checker that
//!   re-verifies an ownership invariant **after every heap mutation**.
//!   Complete (catches transient violations GC assertions miss) but costs
//!   a heap traversal per write — the 10×–100× slowdowns the paper cites.
//!
//! GC assertions, by contrast, are precise (no false positives: a
//! violation is a mismatch with a programmer-stated fact), instance-level
//! (full heap path), and nearly free (piggybacked on tracing) — at the
//! price of missing transient violations. The comparison benchmarks and
//! `tests/detectors.rs` demonstrate each of these trade-offs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cork;
mod dominators;
mod eager;
mod snapshot;
mod staleness;

pub use cork::{CorkDetector, GrowthCandidate};
pub use dominators::{top_retainers, Dominators, Retainer};
pub use eager::{EagerOwnershipChecker, InvariantViolation};
pub use snapshot::{HeapSnapshot, SnapshotNode};
pub use staleness::{StaleCandidate, StalenessDetector};
