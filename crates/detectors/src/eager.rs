//! Eager (JML-style) run-time invariant checking.

use std::collections::{HashSet, VecDeque};

use gca_heap::{Heap, ObjRef};

/// An invariant violation found by the eager checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The ownee no longer reachable from its owner.
    pub ownee: ObjRef,
    /// Its owner.
    pub owner: ObjRef,
    /// Mutation count at which the violation was detected.
    pub at_mutation: u64,
}

/// A JML/Spec#-style eager checker for the ownership invariant: *every
/// registered ownee is reachable from its owner*. The invariant is
/// re-verified **after every mutation** by [`EagerOwnershipChecker::after_mutation`],
/// which performs a bounded traversal from each owner.
///
/// This is the "complete but expensive" end of the design space (§4.1):
/// it catches transient violations the GC assertions miss, but every heap
/// write costs a graph traversal — the benchmark in
/// `benches/ablations.rs` measures the resulting slowdown against the
/// GC-assertion approach on the same workload.
///
/// # Example
///
/// ```
/// use gca_detectors::EagerOwnershipChecker;
/// use gca_heap::{Heap, ObjRef};
///
/// # fn main() -> Result<(), gca_heap::HeapError> {
/// let mut heap = Heap::new();
/// let c = heap.register_class("C", &["f"]);
/// let owner = heap.alloc(c, 1, 0)?;
/// let ownee = heap.alloc(c, 1, 0)?;
/// heap.set_ref_field(owner, 0, ownee)?;
///
/// let mut eager = EagerOwnershipChecker::new();
/// eager.add_pair(owner, ownee);
/// assert!(eager.after_mutation(&heap).is_empty());
///
/// heap.set_ref_field(owner, 0, ObjRef::NULL)?;
/// let violations = eager.after_mutation(&heap);
/// assert_eq!(violations.len(), 1); // caught immediately, not at next GC
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct EagerOwnershipChecker {
    pairs: Vec<(ObjRef, ObjRef)>,
    mutations: u64,
    checks: u64,
    objects_traversed: u64,
}

impl EagerOwnershipChecker {
    /// Creates a checker with no registered pairs.
    pub fn new() -> EagerOwnershipChecker {
        EagerOwnershipChecker::default()
    }

    /// Registers an owner/ownee pair to keep invariant-checked.
    pub fn add_pair(&mut self, owner: ObjRef, ownee: ObjRef) {
        self.pairs.push((owner, ownee));
    }

    /// Unregisters an ownee.
    pub fn remove_ownee(&mut self, ownee: ObjRef) {
        self.pairs.retain(|&(_, e)| e != ownee);
    }

    /// Number of registered pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of mutations processed.
    pub fn mutations(&self) -> u64 {
        self.mutations
    }

    /// Total objects traversed across all checks — the work metric the
    /// overhead comparison reports.
    pub fn objects_traversed(&self) -> u64 {
        self.objects_traversed
    }

    /// Re-verifies the invariant after one mutation, returning all pairs
    /// whose ownee is live but no longer reachable from its (live) owner.
    /// Pairs whose ownee has been reclaimed are retired.
    pub fn after_mutation(&mut self, heap: &Heap) -> Vec<InvariantViolation> {
        self.mutations += 1;
        self.pairs.retain(|&(_, e)| heap.is_valid(e));
        let mut out = Vec::new();
        // Group pairs by owner so each owner is traversed once per check.
        let mut owners: Vec<ObjRef> = self.pairs.iter().map(|&(o, _)| o).collect();
        owners.sort();
        owners.dedup();
        for owner in owners {
            if !heap.is_valid(owner) {
                continue;
            }
            let reached = self.reachable_from(heap, owner);
            for &(o, e) in &self.pairs {
                if o == owner && !reached.contains(&e) {
                    out.push(InvariantViolation {
                        ownee: e,
                        owner,
                        at_mutation: self.mutations,
                    });
                }
            }
        }
        self.checks += 1;
        out
    }

    fn reachable_from(&mut self, heap: &Heap, start: ObjRef) -> HashSet<ObjRef> {
        let mut seen = HashSet::new();
        let mut q = VecDeque::new();
        q.push_back(start);
        while let Some(r) = q.pop_front() {
            if !seen.insert(r) {
                continue;
            }
            self.objects_traversed += 1;
            if let Ok(obj) = heap.get(r) {
                for &c in obj.refs() {
                    if c.is_some() && !seen.contains(&c) {
                        q.push_back(c);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Heap, ObjRef, ObjRef, ObjRef) {
        let mut heap = Heap::new();
        let c = heap.register_class("C", &["a", "b"]);
        let owner = heap.alloc(c, 2, 0).unwrap();
        let mid = heap.alloc(c, 2, 0).unwrap();
        let ownee = heap.alloc(c, 2, 0).unwrap();
        heap.set_ref_field(owner, 0, mid).unwrap();
        heap.set_ref_field(mid, 0, ownee).unwrap();
        (heap, owner, mid, ownee)
    }

    #[test]
    fn intact_invariant_is_quiet() {
        let (heap, owner, _mid, ownee) = setup();
        let mut eager = EagerOwnershipChecker::new();
        eager.add_pair(owner, ownee);
        assert!(eager.after_mutation(&heap).is_empty());
        assert!(eager.objects_traversed() >= 3);
    }

    #[test]
    fn transient_violation_caught_immediately() {
        // The capability GC assertions lack: a break-then-fix sequence is
        // caught at the intermediate mutation.
        let (mut heap, owner, mid, ownee) = setup();
        let mut eager = EagerOwnershipChecker::new();
        eager.add_pair(owner, ownee);

        heap.set_ref_field(mid, 0, ObjRef::NULL).unwrap(); // break
        let v = eager.after_mutation(&heap);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].ownee, ownee);
        assert_eq!(v[0].owner, owner);

        heap.set_ref_field(mid, 0, ownee).unwrap(); // fix
        assert!(eager.after_mutation(&heap).is_empty());
    }

    #[test]
    fn dead_ownees_are_retired() {
        let (mut heap, owner, _mid, ownee) = setup();
        let mut eager = EagerOwnershipChecker::new();
        eager.add_pair(owner, ownee);
        heap.set_ref_field(_mid, 0, ObjRef::NULL).unwrap();
        heap.free(ownee).unwrap();
        assert!(eager.after_mutation(&heap).is_empty());
        assert_eq!(eager.pair_count(), 0);
    }

    #[test]
    fn cost_grows_with_mutations() {
        // Every mutation costs a traversal of the owner's region — the
        // quadratic blow-up the paper's related work cites.
        let (heap, owner, _mid, ownee) = setup();
        let mut eager = EagerOwnershipChecker::new();
        eager.add_pair(owner, ownee);
        for _ in 0..100 {
            eager.after_mutation(&heap);
        }
        assert_eq!(eager.mutations(), 100);
        assert!(eager.objects_traversed() >= 300, "3 objects x 100 checks");
    }

    #[test]
    fn remove_ownee_stops_checking() {
        let (mut heap, owner, mid, ownee) = setup();
        let mut eager = EagerOwnershipChecker::new();
        eager.add_pair(owner, ownee);
        eager.remove_ownee(ownee);
        heap.set_ref_field(mid, 0, ObjRef::NULL).unwrap();
        assert!(eager.after_mutation(&heap).is_empty());
    }
}
