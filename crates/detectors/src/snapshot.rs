//! Heap snapshots for offline analysis.
//!
//! LeakBot-style tools (Mitchell & Sevitsky, cited as [32] in the paper)
//! diagnose leaks from heap *snapshots*: a frozen copy of the object
//! graph that an analyzer can mine for suspicious ownership structures.
//! This module captures such snapshots from the live heap; the
//! [`crate::Dominators`] analysis consumes them.

use std::collections::HashMap;

use gca_heap::{Heap, ObjRef};

/// One object in a snapshot: identity, class, size, and outgoing edges
/// (as node indices within the snapshot).
#[derive(Debug, Clone)]
pub struct SnapshotNode {
    /// The object's handle at capture time.
    pub object: ObjRef,
    /// Class name at capture time.
    pub class_name: String,
    /// Shallow size in words.
    pub size_words: usize,
    /// Outgoing reference edges, as indices into
    /// [`HeapSnapshot::nodes`].
    pub edges: Vec<usize>,
}

/// A frozen copy of the *reachable* object graph.
///
/// # Example
///
/// ```
/// use gca_detectors::HeapSnapshot;
/// use gca_heap::Heap;
///
/// # fn main() -> Result<(), gca_heap::HeapError> {
/// let mut heap = Heap::new();
/// let c = heap.register_class("T", &["f"]);
/// let root = heap.alloc(c, 1, 0)?;
/// let child = heap.alloc(c, 1, 2)?;
/// heap.set_ref_field(root, 0, child)?;
/// let _garbage = heap.alloc(c, 1, 0)?;
///
/// let snap = HeapSnapshot::capture(&heap, &[root]);
/// assert_eq!(snap.node_count(), 2); // garbage is not captured
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HeapSnapshot {
    nodes: Vec<SnapshotNode>,
    /// Indices of root-referenced nodes (deduplicated).
    roots: Vec<usize>,
    index: HashMap<ObjRef, usize>,
}

impl HeapSnapshot {
    /// Captures the object graph reachable from `roots`.
    pub fn capture(heap: &Heap, roots: &[ObjRef]) -> HeapSnapshot {
        let mut snap = HeapSnapshot {
            nodes: Vec::new(),
            roots: Vec::new(),
            index: HashMap::new(),
        };
        // BFS, assigning node ids in visit order.
        let mut queue: Vec<ObjRef> = Vec::new();
        for &r in roots {
            if r.is_some() && heap.is_valid(r) && !snap.index.contains_key(&r) {
                let id = snap.push_node(heap, r);
                snap.roots.push(id);
                queue.push(r);
            } else if let Some(&id) = snap.index.get(&r) {
                if !snap.roots.contains(&id) {
                    snap.roots.push(id);
                }
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let obj = queue[head];
            head += 1;
            let from = snap.index[&obj];
            let refs: Vec<ObjRef> = heap.get(obj).map(|o| o.refs().to_vec()).unwrap_or_default();
            for c in refs {
                if c.is_null() || !heap.is_valid(c) {
                    continue;
                }
                let to = match snap.index.get(&c) {
                    Some(&id) => id,
                    None => {
                        let id = snap.push_node(heap, c);
                        queue.push(c);
                        id
                    }
                };
                snap.nodes[from].edges.push(to);
            }
        }
        snap
    }

    fn push_node(&mut self, heap: &Heap, obj: ObjRef) -> usize {
        let o = heap.get(obj).expect("capture only visits live objects");
        let id = self.nodes.len();
        self.nodes.push(SnapshotNode {
            object: obj,
            class_name: heap.registry().name(o.class()).to_owned(),
            size_words: o.size_words(),
            edges: Vec::new(),
        });
        self.index.insert(obj, id);
        id
    }

    /// Number of captured (reachable) objects.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The captured nodes, indexable by the ids used in edges.
    pub fn nodes(&self) -> &[SnapshotNode] {
        &self.nodes
    }

    /// Indices of the root-referenced nodes.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// The node id of `obj`, if it was reachable at capture time.
    pub fn node_of(&self, obj: ObjRef) -> Option<usize> {
        self.index.get(&obj).copied()
    }

    /// Total shallow size of the captured graph, in words.
    pub fn total_words(&self) -> usize {
        self.nodes.iter().map(|n| n.size_words).sum()
    }

    /// Renders the snapshot as a Graphviz DOT digraph: one node per
    /// object (labelled `Class #id (size)`), root nodes double-circled,
    /// one edge per reference. Paste into `dot -Tsvg` to visualize the
    /// heap a violation report describes.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph heap {\n  rankdir=LR;\n  node [shape=box];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = if self.roots.contains(&i) {
                " peripheries=2"
            } else {
                ""
            };
            out.push_str(&format!(
                "  n{} [label=\"{} #{} ({}w)\"{}];\n",
                i,
                n.class_name.replace('"', "'"),
                i,
                n.size_words,
                shape
            ));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            for &e in &n.edges {
                out.push_str(&format!("  n{i} -> n{e};\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Shallow size aggregated by class, sorted descending.
    pub fn class_histogram(&self) -> Vec<(String, usize, usize)> {
        let mut by_class: HashMap<&str, (usize, usize)> = HashMap::new();
        for n in &self.nodes {
            let e = by_class.entry(&n.class_name).or_default();
            e.0 += 1;
            e.1 += n.size_words;
        }
        let mut out: Vec<(String, usize, usize)> = by_class
            .into_iter()
            .map(|(k, (count, words))| (k.to_owned(), count, words))
            .collect();
        out.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> (Heap, gca_heap::ClassId) {
        let mut h = Heap::new();
        let c = h.register_class("T", &["a", "b"]);
        (h, c)
    }

    #[test]
    fn captures_reachable_subgraph_only() {
        let (mut heap, c) = heap();
        let root = heap.alloc(c, 2, 0).unwrap();
        let child = heap.alloc(c, 2, 3).unwrap();
        let garbage = heap.alloc(c, 2, 0).unwrap();
        heap.set_ref_field(root, 0, child).unwrap();
        heap.set_ref_field(garbage, 0, child).unwrap();

        let snap = HeapSnapshot::capture(&heap, &[root]);
        assert_eq!(snap.node_count(), 2);
        assert!(snap.node_of(root).is_some());
        assert!(snap.node_of(child).is_some());
        assert!(snap.node_of(garbage).is_none());
        assert_eq!(snap.roots(), &[0]);
        assert_eq!(snap.total_words(), 4 + 7);
    }

    #[test]
    fn edges_preserved_including_duplicates_and_cycles() {
        let (mut heap, c) = heap();
        let a = heap.alloc(c, 2, 0).unwrap();
        let b = heap.alloc(c, 2, 0).unwrap();
        heap.set_ref_field(a, 0, b).unwrap();
        heap.set_ref_field(a, 1, b).unwrap(); // duplicate edge
        heap.set_ref_field(b, 0, a).unwrap(); // back edge
        let snap = HeapSnapshot::capture(&heap, &[a]);
        let na = snap.node_of(a).unwrap();
        let nb = snap.node_of(b).unwrap();
        assert_eq!(snap.nodes()[na].edges, vec![nb, nb]);
        assert_eq!(snap.nodes()[nb].edges, vec![na]);
    }

    #[test]
    fn duplicate_roots_deduplicated() {
        let (mut heap, c) = heap();
        let a = heap.alloc(c, 2, 0).unwrap();
        let snap = HeapSnapshot::capture(&heap, &[a, a, a]);
        assert_eq!(snap.roots().len(), 1);
        assert_eq!(snap.node_count(), 1);
    }

    #[test]
    fn histogram_aggregates_by_class() {
        let mut heap = Heap::new();
        let big = heap.register_class("Big", &[]);
        let small = heap.register_class("Small", &[]);
        let holder = heap.register_class("Holder", &["a", "b", "c"]);
        let h = heap.alloc(holder, 3, 0).unwrap();
        for i in 0..2 {
            let o = heap.alloc(big, 0, 50).unwrap();
            heap.set_ref_field(h, i, o).unwrap();
        }
        let s = heap.alloc(small, 0, 1).unwrap();
        heap.set_ref_field(h, 2, s).unwrap();

        let snap = HeapSnapshot::capture(&heap, &[h]);
        let hist = snap.class_histogram();
        assert_eq!(hist[0].0, "Big");
        assert_eq!(hist[0].1, 2);
        assert_eq!(hist[0].2, 104);
    }

    #[test]
    fn dot_export_has_nodes_edges_and_root_marking() {
        let (mut heap, c) = heap();
        let root = heap.alloc(c, 2, 0).unwrap();
        let child = heap.alloc(c, 2, 0).unwrap();
        heap.set_ref_field(root, 0, child).unwrap();
        let snap = HeapSnapshot::capture(&heap, &[root]);
        let dot = snap.to_dot();
        assert!(dot.starts_with("digraph heap {"));
        assert!(dot.contains("n0 [label=\"T #0 (4w)\" peripheries=2]"));
        assert!(dot.contains("n1 [label=\"T #1 (4w)\"]"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_and_stale_roots_tolerated() {
        let (mut heap, c) = heap();
        let dead = heap.alloc(c, 2, 0).unwrap();
        heap.free(dead).unwrap();
        let snap = HeapSnapshot::capture(&heap, &[ObjRef::NULL, dead]);
        assert_eq!(snap.node_count(), 0);
        assert!(snap.roots().is_empty());
    }
}
